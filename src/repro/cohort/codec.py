"""Versioned binary columnar codec for cohort shard frames.

Shard workers used to ship pickled ``CohortAccumulator`` objects between
processes and the CLI keyed everything as verbose JSON — fine at 10^4
members, dominant at 10^6.  This module defines the *shard frame*: a
self-delimiting, ``SHARD_CODEC_VERSION``-stamped binary envelope that
carries one shard's entire outcome through a tight channel, the same
discipline the paper's DAC line of work applies to short correlated
blocks.

Frame layout (all integers little-endian)::

    offset 0   magic  b"RSHD"
           4   u8     codec version (SHARD_CODEC_VERSION)
           5   u8     compression (0 none, 1 zlib, 2 zstd)
           6   u16    reserved (zero)
           8   u64    frame length in bytes, header included
          16   u64    footer offset from frame start
          24   u32    CRC-32 of everything after the header
          28   sections …        (each independently compressed)
          footer offset: footer  (compressed like the sections)

The **footer** is the shard's summary: member range, integer counters,
policy/source mixes, per-metric ``count/min/max/sum``, and the section
table (name → offset/stored/raw bytes).  ``read_summary`` parses header
plus footer only — *index-free skipping* — so ``repro cohort summarize``
answers overview queries without ever touching member columns.

Sections:

``aggregates``
    The faithful :meth:`LatencyAccumulator.to_state` of every member
    metric plus the packet-latency distribution: raw ``float64`` columns
    while an accumulator is still exact, histogram edges/counts or
    quantile-sketch levels after the spill.  Decoding and merging these
    is bit-identical to merging the in-memory accumulators.
``validations``
    Columnar analytic-vs-DES validation records (delta+zigzag varint
    index column, dictionary-coded strings, raw ``float64`` columns).
``members`` (present only when the accumulator kept members)
    Columnar raw :class:`MemberMetrics` rows: delta+zigzag varint
    integer columns, dictionary-coded string columns, raw ``float64``
    metric columns.

Integer columns use unsigned LEB128 varints with zigzag delta coding;
float columns are raw IEEE-754 binary64, so every value — zeros,
denormals, infinities — round-trips bit-exactly.  zlib (stdlib) is the
default outer compression; zstd is optional behind the ``zstd`` extra
and degrades to a clear error when the package is absent.
"""

from __future__ import annotations

import io
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping, Sequence

from ..errors import CodecError
from ..netsim.stats import LatencyAccumulator
from .aggregate import (
    MEMBER_METRIC_FIELDS,
    CohortAccumulator,
    MemberMetrics,
    ValidationRecord,
)

#: Bump when the frame layout changes incompatibly.
SHARD_CODEC_VERSION = 1

#: Frame magic: *R*epro *SH*ar*D*.
MAGIC = b"RSHD"

_HEADER = struct.Struct("<4sBBHQQI")
HEADER_BYTES = _HEADER.size

#: Wire ids of the supported outer compressions.
_COMPRESSION_IDS = {"none": 0, "zlib": 1, "zstd": 2}
_COMPRESSION_NAMES = {value: key for key, value in _COMPRESSION_IDS.items()}

DEFAULT_COMPRESSION = "zlib"

#: ``MemberMetrics`` float columns, in wire order.
_MEMBER_FLOAT_FIELDS = (
    "duration_seconds",
    "delivered_fraction",
    "mean_latency_seconds",
    "p99_latency_seconds",
    "bus_utilization",
    "leaf_power_watts",
    "hub_power_watts",
    "leaf_energy_joules",
    "hub_energy_joules",
    "alive_fraction",
    "first_death_seconds",
)

#: ``ValidationRecord`` float columns, in wire order.
_VALIDATION_FLOAT_FIELDS = (
    "analytic_leaf_power_watts",
    "des_leaf_power_watts",
    "analytic_delivered_fraction",
    "des_delivered_fraction",
    "analytic_mean_latency_seconds",
    "des_mean_latency_seconds",
    "analytic_alive_fraction",
    "des_alive_fraction",
)

_ACCUMULATOR_MODES = {"exact": 0, "histogram": 1, "sketch": 2}
_ACCUMULATOR_MODE_NAMES = {value: key
                           for key, value in _ACCUMULATOR_MODES.items()}


def _zstd_module():
    try:
        import zstandard
    except ImportError:
        raise CodecError(
            "zstd compression requires the optional 'zstandard' package "
            "(pip install repro[zstd]); use compression='zlib' otherwise"
        ) from None
    return zstandard


def _compress(payload: bytes, compression: str) -> bytes:
    if compression == "none":
        return payload
    if compression == "zlib":
        return zlib.compress(payload, 6)
    if compression == "zstd":
        return _zstd_module().ZstdCompressor().compress(payload)
    raise CodecError(
        f"unknown compression {compression!r} "
        f"(known: {', '.join(_COMPRESSION_IDS)})")


def _decompress(stored: bytes, compression: str, raw_length: int) -> bytes:
    if compression == "none":
        payload = bytes(stored)
    elif compression == "zlib":
        try:
            payload = zlib.decompress(stored)
        except zlib.error as error:
            raise CodecError(f"corrupt zlib section: {error}") from error
    elif compression == "zstd":
        payload = _zstd_module().ZstdDecompressor().decompress(
            bytes(stored), max_output_size=max(raw_length, 1))
    else:  # pragma: no cover — ids are validated at parse time
        raise CodecError(f"unknown compression {compression!r}")
    if len(payload) != raw_length:
        raise CodecError(
            f"section decompressed to {len(payload)} bytes, "
            f"expected {raw_length}")
    return payload


# -- primitive writers/readers ---------------------------------------------


def _zigzag(value: int) -> int:
    return (value << 1) if value >= 0 else ((-value << 1) - 1)


def _unzigzag(value: int) -> int:
    return (value >> 1) if not value & 1 else -((value + 1) >> 1)


class _Writer:
    """Append-only binary writer for one section payload."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = io.BytesIO()

    def varint(self, value: int) -> None:
        if value < 0:
            raise CodecError(f"varint value must be non-negative: {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            out.append(byte | (0x80 if value else 0))
            if not value:
                break
        self._buffer.write(bytes(out))

    def signed(self, value: int) -> None:
        self.varint(_zigzag(value))

    def f64(self, value: float) -> None:
        self._buffer.write(struct.pack("<d", value))

    def f64_column(self, values: Sequence[float]) -> None:
        self.varint(len(values))
        self._buffer.write(struct.pack(f"<{len(values)}d", *values))

    def delta_column(self, values: Sequence[int]) -> None:
        """Zigzag-delta varint integer column."""
        self.varint(len(values))
        previous = 0
        for value in values:
            self.signed(value - previous)
            previous = value

    def string(self, value: str) -> None:
        encoded = value.encode("utf-8")
        self.varint(len(encoded))
        self._buffer.write(encoded)

    def string_column(self, values: Sequence[str]) -> None:
        """Dictionary-coded string column."""
        table: dict[str, int] = {}
        for value in values:
            table.setdefault(value, len(table))
        self.varint(len(table))
        for value in table:  # insertion order == id order
            self.string(value)
        self.varint(len(values))
        for value in values:
            self.varint(table[value])

    def string_int_map(self, mapping: Mapping[str, int]) -> None:
        self.varint(len(mapping))
        for key in sorted(mapping):
            self.string(key)
            self.varint(mapping[key])

    def getvalue(self) -> bytes:
        return self._buffer.getvalue()


class _Reader:
    """Sequential binary reader matching :class:`_Writer`."""

    __slots__ = ("_view", "_offset")

    def __init__(self, payload: bytes) -> None:
        self._view = memoryview(payload)
        self._offset = 0

    def _take(self, length: int) -> memoryview:
        end = self._offset + length
        if end > len(self._view):
            raise CodecError("truncated shard frame section")
        chunk = self._view[self._offset:end]
        self._offset = end
        return chunk

    def varint(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self._take(1)[0]
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > 70:
                raise CodecError("varint overflow in shard frame")

    def signed(self) -> int:
        return _unzigzag(self.varint())

    def f64(self) -> float:
        return struct.unpack("<d", self._take(8))[0]

    def f64_column(self) -> list[float]:
        length = self.varint()
        return list(struct.unpack(f"<{length}d", self._take(8 * length)))

    def delta_column(self) -> list[int]:
        length = self.varint()
        values = []
        previous = 0
        for _ in range(length):
            previous += self.signed()
            values.append(previous)
        return values

    def string(self) -> str:
        length = self.varint()
        return bytes(self._take(length)).decode("utf-8")

    def string_column(self) -> list[str]:
        table = [self.string() for _ in range(self.varint())]
        length = self.varint()
        out = []
        for _ in range(length):
            index = self.varint()
            if index >= len(table):
                raise CodecError("string column index outside dictionary")
            out.append(table[index])
        return out

    def string_int_map(self) -> dict[str, int]:
        return {self.string(): self.varint() for _ in range(self.varint())}

    @property
    def exhausted(self) -> bool:
        return self._offset == len(self._view)


# -- accumulator state <-> bytes -------------------------------------------


def _write_accumulator(writer: _Writer,
                       accumulator: LatencyAccumulator) -> None:
    state = accumulator.to_state()
    mode = str(state["mode"])
    writer.varint(_ACCUMULATOR_MODES[mode])
    writer.string(str(state["backend"]))
    writer.varint(int(state["exact_capacity"]))
    writer.varint(int(state["bins"]))
    writer.varint(int(state["count"]))
    writer.f64(float(state["min"]))
    writer.f64(float(state["max"]))
    if mode == "exact":
        writer.f64_column(state["samples"])
        return
    writer.f64(float(state["total"]))
    if mode == "histogram":
        writer.f64_column(state["edges"])
        counts = state["counts"]
        writer.varint(len(counts))
        for count in counts:
            writer.varint(int(count))
        return
    sketch = state["sketch"]
    writer.varint(int(sketch["k"]))
    writer.varint(int(sketch["count"]))
    writer.f64(float(sketch["min"]))
    writer.f64(float(sketch["max"]))
    levels = sketch["levels"]
    flips = sketch["flips"]
    writer.varint(len(levels))
    for level_values, flip in zip(levels, flips):
        writer.varint(1 if flip else 0)
        writer.f64_column(level_values)


def _read_accumulator(reader: _Reader) -> LatencyAccumulator:
    mode_id = reader.varint()
    if mode_id not in _ACCUMULATOR_MODE_NAMES:
        raise CodecError(f"unknown accumulator mode id {mode_id}")
    mode = _ACCUMULATOR_MODE_NAMES[mode_id]
    state: dict[str, object] = {
        "mode": mode,
        "backend": reader.string(),
        "exact_capacity": reader.varint(),
        "bins": reader.varint(),
        "count": reader.varint(),
        "min": reader.f64(),
        "max": reader.f64(),
    }
    if mode == "exact":
        state["samples"] = reader.f64_column()
        return LatencyAccumulator.from_state(state)
    state["total"] = reader.f64()
    if mode == "histogram":
        state["edges"] = reader.f64_column()
        state["counts"] = [reader.varint() for _ in range(reader.varint())]
        return LatencyAccumulator.from_state(state)
    sketch: dict[str, object] = {
        "k": reader.varint(),
        "count": reader.varint(),
        "min": reader.f64(),
        "max": reader.f64(),
    }
    levels: list[list[float]] = []
    flips: list[bool] = []
    for _ in range(reader.varint()):
        flips.append(bool(reader.varint()))
        levels.append(reader.f64_column())
    sketch["levels"] = levels
    sketch["flips"] = flips
    state["sketch"] = sketch
    return LatencyAccumulator.from_state(state)


# -- frame containers ------------------------------------------------------


@dataclass(frozen=True)
class ShardFrame:
    """One shard's decoded outcome: aggregates, never raw results."""

    shard_index: int
    start: int
    stop: int
    accumulator: CohortAccumulator
    validations: tuple[ValidationRecord, ...] = ()
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class MetricSummary:
    """Footer digest of one metric accumulator: no columns needed."""

    count: int
    min: float
    max: float
    sum: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


@dataclass(frozen=True)
class ShardSummary:
    """Everything the footer alone can answer about one frame."""

    shard_index: int
    start: int
    stop: int
    population: int
    node_count: int
    delivered_packets: int
    dead_members: int
    first_death_seconds: float
    by_policy: dict[str, int]
    by_source: dict[str, int]
    elapsed_seconds: float
    compression: str
    has_members: bool
    metrics: dict[str, MetricSummary] = field(default_factory=dict)
    packets: MetricSummary = MetricSummary(0, 0.0, 0.0, 0.0)
    #: Whole-frame size on the wire (header + sections + footer).
    encoded_bytes: int = 0
    #: Sum of the sections' uncompressed payloads.
    raw_bytes: int = 0

    def row(self) -> dict[str, object]:
        """One summarize-table row (computed without decoding columns)."""
        from ..runner.artifacts import sanitize
        return {
            "shard": self.shard_index,
            "members": f"[{self.start}, {self.stop})",
            "population": self.population,
            "delivered": self.delivered_packets,
            "dead": self.dead_members,
            "mean_leaf_power_uw": sanitize(
                self.metrics["leaf_power_watts"].mean * 1e6
                if "leaf_power_watts" in self.metrics else 0.0),
            "encoded_bytes": self.encoded_bytes,
            "raw_bytes": self.raw_bytes,
        }


# -- encoding --------------------------------------------------------------


def _accumulator_sum(accumulator: LatencyAccumulator) -> float:
    """Running sum of an accumulator's samples (exact or streamed)."""
    if accumulator.count == 0:
        return 0.0
    return accumulator.mean * accumulator.count


def _metric_summary(accumulator: LatencyAccumulator) -> MetricSummary:
    if accumulator.count == 0:
        return MetricSummary(0, 0.0, 0.0, 0.0)
    return MetricSummary(accumulator.count, accumulator.min_seconds,
                         accumulator.max_seconds,
                         _accumulator_sum(accumulator))


def _write_summary(writer: _Writer, summary: MetricSummary) -> None:
    writer.varint(summary.count)
    writer.f64(summary.min)
    writer.f64(summary.max)
    writer.f64(summary.sum)


def _read_summary_fields(reader: _Reader) -> MetricSummary:
    return MetricSummary(reader.varint(), reader.f64(), reader.f64(),
                         reader.f64())


def _encode_aggregates(accumulator: CohortAccumulator) -> bytes:
    writer = _Writer()
    writer.varint(len(accumulator.metrics))
    for name, metric in accumulator.metrics.items():
        writer.string(name)
        _write_accumulator(writer, metric)
    _write_accumulator(writer, accumulator.packet_latency)
    return writer.getvalue()


def _encode_validations(
        validations: Sequence[ValidationRecord]) -> bytes:
    writer = _Writer()
    writer.delta_column([record.index for record in validations])
    writer.string_column([record.scenario for record in validations])
    writer.string_column([record.arbitration for record in validations])
    for name in _VALIDATION_FLOAT_FIELDS:
        writer.f64_column([getattr(record, name) for record in validations])
    return writer.getvalue()


def _encode_members(members: Sequence[MemberMetrics]) -> bytes:
    writer = _Writer()
    writer.delta_column([member.index for member in members])
    writer.delta_column([member.node_count for member in members])
    writer.delta_column([member.delivered_packets for member in members])
    writer.string_column([member.scenario for member in members])
    writer.string_column([member.source for member in members])
    writer.string_column([member.arbitration for member in members])
    for name in _MEMBER_FLOAT_FIELDS:
        writer.f64_column([getattr(member, name) for member in members])
    return writer.getvalue()


def encode_shard(frame: ShardFrame, *,
                 compression: str = DEFAULT_COMPRESSION) -> bytes:
    """Encode one shard outcome into a self-delimiting binary frame."""
    if compression not in _COMPRESSION_IDS:
        raise CodecError(
            f"unknown compression {compression!r} "
            f"(known: {', '.join(_COMPRESSION_IDS)})")
    if compression == "zstd":
        _zstd_module()  # fail fast before doing any work
    accumulator = frame.accumulator

    sections: list[tuple[str, bytes]] = [
        ("aggregates", _encode_aggregates(accumulator)),
        ("validations", _encode_validations(frame.validations)),
    ]
    if accumulator.keep_members:
        sections.append(("members", _encode_members(accumulator.members)))

    stored: list[tuple[str, bytes, int]] = [
        (name, _compress(raw, compression), len(raw))
        for name, raw in sections
    ]

    footer = _Writer()
    footer.varint(frame.shard_index)
    footer.varint(frame.start)
    footer.varint(frame.stop)
    footer.f64(frame.elapsed_seconds)
    footer.varint(accumulator.population)
    footer.varint(accumulator.node_count)
    footer.varint(accumulator.delivered_packets)
    footer.varint(accumulator.dead_members)
    footer.f64(accumulator.first_death_seconds)
    footer.string_int_map(accumulator.by_policy)
    footer.string_int_map(accumulator.by_source)
    footer.varint(1 if accumulator.keep_members else 0)
    footer.varint(len(accumulator.metrics))
    for name, metric in accumulator.metrics.items():
        footer.string(name)
        _write_summary(footer, _metric_summary(metric))
    _write_summary(footer, _metric_summary(accumulator.packet_latency))
    footer.varint(len(stored))
    offset = 0
    for name, blob, raw_length in stored:
        footer.string(name)
        footer.varint(offset)
        footer.varint(len(blob))
        footer.varint(raw_length)
        offset += len(blob)
    footer_blob = _compress(footer.getvalue(), compression)

    sections_blob = b"".join(blob for _, blob, _ in stored)
    footer_offset = HEADER_BYTES + len(sections_blob)
    frame_length = footer_offset + len(footer_blob)
    body = sections_blob + footer_blob
    header = _HEADER.pack(MAGIC, SHARD_CODEC_VERSION,
                          _COMPRESSION_IDS[compression], 0, frame_length,
                          footer_offset, zlib.crc32(body))
    return header + body


# -- decoding --------------------------------------------------------------


@dataclass(frozen=True)
class _ParsedFrame:
    compression: str
    frame_length: int
    footer: _Reader
    view: memoryview


def _parse_header(data: bytes | memoryview,
                  *, verify_crc: bool) -> _ParsedFrame:
    view = memoryview(data)
    if len(view) < HEADER_BYTES:
        raise CodecError(
            f"shard frame shorter than its {HEADER_BYTES}-byte header")
    magic, version, compression_id, _, frame_length, footer_offset, crc = \
        _HEADER.unpack(view[:HEADER_BYTES])
    if magic != MAGIC:
        raise CodecError("not a cohort shard frame (bad magic)")
    if version != SHARD_CODEC_VERSION:
        raise CodecError(
            f"shard frame has codec version {version}, "
            f"expected {SHARD_CODEC_VERSION}")
    if compression_id not in _COMPRESSION_NAMES:
        raise CodecError(f"unknown compression id {compression_id}")
    if frame_length > len(view):
        raise CodecError(
            f"truncated shard frame: header declares {frame_length} bytes, "
            f"got {len(view)}")
    if not HEADER_BYTES <= footer_offset <= frame_length:
        raise CodecError("shard frame footer offset outside the frame")
    compression = _COMPRESSION_NAMES[compression_id]
    body = view[HEADER_BYTES:frame_length]
    if verify_crc and zlib.crc32(body) != crc:
        raise CodecError("shard frame CRC mismatch (corrupt frame)")
    footer_payload = _decompress_open(
        view[footer_offset:frame_length], compression)
    return _ParsedFrame(compression=compression, frame_length=frame_length,
                        footer=_Reader(footer_payload), view=view)


def _decompress_open(stored: memoryview, compression: str) -> bytes:
    """Decompress a blob whose raw length is not known in advance."""
    if compression == "none":
        return bytes(stored)
    if compression == "zlib":
        try:
            return zlib.decompress(stored)
        except zlib.error as error:
            raise CodecError(f"corrupt zlib footer: {error}") from error
    return _zstd_module().ZstdDecompressor().decompress(
        bytes(stored), max_output_size=16 * 1024 * 1024)


def _read_footer_fixed(reader: _Reader) -> dict[str, object]:
    fields: dict[str, object] = {
        "shard_index": reader.varint(),
        "start": reader.varint(),
        "stop": reader.varint(),
        "elapsed_seconds": reader.f64(),
        "population": reader.varint(),
        "node_count": reader.varint(),
        "delivered_packets": reader.varint(),
        "dead_members": reader.varint(),
        "first_death_seconds": reader.f64(),
        "by_policy": reader.string_int_map(),
        "by_source": reader.string_int_map(),
        "keep_members": bool(reader.varint()),
    }
    metrics = {}
    for _ in range(reader.varint()):
        name = reader.string()
        metrics[name] = _read_summary_fields(reader)
    fields["metrics"] = metrics
    fields["packets"] = _read_summary_fields(reader)
    sections = {}
    for _ in range(reader.varint()):
        name = reader.string()
        sections[name] = (reader.varint(), reader.varint(), reader.varint())
    fields["sections"] = sections
    return fields


def _section_payload(parsed: _ParsedFrame, footer: Mapping[str, object],
                     name: str) -> bytes:
    sections = footer["sections"]
    if name not in sections:
        raise CodecError(f"shard frame has no {name!r} section")
    offset, stored_length, raw_length = sections[name]
    start = HEADER_BYTES + offset
    stop = start + stored_length
    if stop > parsed.frame_length:
        raise CodecError(f"section {name!r} extends beyond the frame")
    return _decompress(parsed.view[start:stop], parsed.compression,
                       raw_length)


def _decode_validations(payload: bytes) -> tuple[ValidationRecord, ...]:
    reader = _Reader(payload)
    indices = reader.delta_column()
    scenarios = reader.string_column()
    arbitrations = reader.string_column()
    columns = [reader.f64_column() for _ in _VALIDATION_FLOAT_FIELDS]
    lengths = {len(indices), len(scenarios), len(arbitrations),
               *(len(column) for column in columns)}
    if len(lengths) > 1:
        raise CodecError("validation column length mismatch")
    return tuple(
        ValidationRecord(
            index=indices[row],
            scenario=scenarios[row],
            arbitration=arbitrations[row],
            **{name: columns[position][row]
               for position, name in enumerate(_VALIDATION_FLOAT_FIELDS)},
        )
        for row in range(len(indices)))


def _decode_members(payload: bytes) -> list[MemberMetrics]:
    reader = _Reader(payload)
    indices = reader.delta_column()
    node_counts = reader.delta_column()
    delivered = reader.delta_column()
    scenarios = reader.string_column()
    sources = reader.string_column()
    arbitrations = reader.string_column()
    columns = [reader.f64_column() for _ in _MEMBER_FLOAT_FIELDS]
    lengths = {len(indices), len(node_counts), len(delivered),
               len(scenarios), len(sources), len(arbitrations),
               *(len(column) for column in columns)}
    if len(lengths) > 1:
        raise CodecError("member column length mismatch")
    return [
        MemberMetrics(
            index=indices[row],
            scenario=scenarios[row],
            source=sources[row],
            arbitration=arbitrations[row],
            node_count=node_counts[row],
            delivered_packets=delivered[row],
            **{name: columns[position][row]
               for position, name in enumerate(_MEMBER_FLOAT_FIELDS)},
        )
        for row in range(len(indices))]


def decode_shard(data: bytes | memoryview) -> ShardFrame:
    """Decode one frame back into a fully live :class:`ShardFrame`.

    The reconstructed accumulator is bit-identical to the one that was
    encoded: counters come from the footer, metric and packet
    accumulators from their serialised states, members (when kept) from
    the columnar section.
    """
    parsed = _parse_header(data, verify_crc=True)
    footer = _read_footer_fixed(parsed.footer)

    reader = _Reader(_section_payload(parsed, footer, "aggregates"))
    metric_count = reader.varint()
    metrics: dict[str, LatencyAccumulator] = {}
    for _ in range(metric_count):
        name = reader.string()
        metrics[name] = _read_accumulator(reader)
    packet_latency = _read_accumulator(reader)
    if set(metrics) != set(MEMBER_METRIC_FIELDS):
        raise CodecError(
            "shard frame metric set does not match MEMBER_METRIC_FIELDS "
            f"(frame: {sorted(metrics)})")

    accumulator = CohortAccumulator(keep_members=bool(footer["keep_members"]))
    accumulator.population = int(footer["population"])
    accumulator.node_count = int(footer["node_count"])
    accumulator.delivered_packets = int(footer["delivered_packets"])
    accumulator.dead_members = int(footer["dead_members"])
    accumulator.first_death_seconds = float(footer["first_death_seconds"])
    accumulator.by_policy = dict(footer["by_policy"])
    accumulator.by_source = dict(footer["by_source"])
    accumulator.metrics = {name: metrics[name]
                           for name in MEMBER_METRIC_FIELDS}
    accumulator.packet_latency = packet_latency
    if accumulator.keep_members:
        accumulator.members = _decode_members(
            _section_payload(parsed, footer, "members"))

    validations = _decode_validations(
        _section_payload(parsed, footer, "validations"))
    return ShardFrame(
        shard_index=int(footer["shard_index"]),
        start=int(footer["start"]),
        stop=int(footer["stop"]),
        accumulator=accumulator,
        validations=validations,
        elapsed_seconds=float(footer["elapsed_seconds"]),
    )


def read_summary(data: bytes | memoryview) -> ShardSummary:
    """Parse header + footer only — member columns are never touched.

    This is what makes ``repro cohort summarize`` stream a
    million-member artifact in milliseconds: every overview quantity
    (member range, counters, per-metric min/max/sum) lives in the
    footer, so the codec skips the columns without an external index.
    """
    parsed = _parse_header(data, verify_crc=False)
    footer = _read_footer_fixed(parsed.footer)
    sections = footer["sections"]
    return ShardSummary(
        shard_index=int(footer["shard_index"]),
        start=int(footer["start"]),
        stop=int(footer["stop"]),
        population=int(footer["population"]),
        node_count=int(footer["node_count"]),
        delivered_packets=int(footer["delivered_packets"]),
        dead_members=int(footer["dead_members"]),
        first_death_seconds=float(footer["first_death_seconds"]),
        by_policy=dict(footer["by_policy"]),
        by_source=dict(footer["by_source"]),
        elapsed_seconds=float(footer["elapsed_seconds"]),
        compression=parsed.compression,
        has_members="members" in sections,
        metrics=dict(footer["metrics"]),
        packets=footer["packets"],
        encoded_bytes=parsed.frame_length,
        raw_bytes=sum(raw for _, _, raw in sections.values()),
    )


# -- frame streams ---------------------------------------------------------


def frame_length(data: bytes | memoryview) -> int:
    """Declared length of the frame starting at ``data[0]``."""
    view = memoryview(data)
    if len(view) < HEADER_BYTES:
        raise CodecError(
            f"shard frame shorter than its {HEADER_BYTES}-byte header")
    magic, version, _, _, length, _, _ = _HEADER.unpack(view[:HEADER_BYTES])
    if magic != MAGIC:
        raise CodecError("not a cohort shard frame (bad magic)")
    if version != SHARD_CODEC_VERSION:
        raise CodecError(
            f"shard frame has codec version {version}, "
            f"expected {SHARD_CODEC_VERSION}")
    return length


def split_frames(data: bytes | memoryview) -> Iterator[memoryview]:
    """Iterate the frames of a concatenated stream without copying."""
    view = memoryview(data)
    offset = 0
    while offset < len(view):
        length = frame_length(view[offset:])
        if offset + length > len(view):
            raise CodecError("truncated frame at end of stream")
        yield view[offset:offset + length]
        offset += length


def write_frames(path: Path | str, frames: Sequence[bytes]) -> Path:
    """Write a concatenated frame stream atomically (tmp + rename)."""
    import os
    path = Path(path)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(tmp, "wb") as sink:
            for frame in frames:
                sink.write(frame)
        tmp.replace(path)
    except OSError as error:
        raise CodecError(
            f"cannot write shard frames to {path}: {error}") from error
    return path


def read_frames(path: Path | str) -> list[bytes]:
    """Load a frame stream from disk as one frame per list entry."""
    try:
        blob = Path(path).read_bytes()
    except OSError as error:
        raise CodecError(
            f"cannot read shard frames from {path}: {error}") from error
    return [bytes(frame) for frame in split_frames(blob)]
