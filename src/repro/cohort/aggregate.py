"""Streaming cohort aggregation: flat memory at any population.

A shard worker never returns its members' ``SimulationResult`` objects —
it folds each member into a :class:`CohortAccumulator` and ships only an
encoded frame of the accumulator back (see :mod:`repro.cohort.codec`).
Accumulators merge associatively *in member order*: every per-member
metric is held by a :class:`~repro.netsim.stats.LatencyAccumulator`,
which is an exact concatenation while the population fits its exact
window (so shard-merged summaries are bit-identical to a serial run) and
a bounded mergeable quantile sketch beyond it (so memory stays flat and
p50/p99 keep their documented rank error however large the cohort
grows).  ``keep_members=True`` additionally retains the raw
:class:`MemberMetrics` rows for debugging — opt-in, mirroring
``EnergyLedger.keep_entries``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ScenarioError
from ..netsim.simulator import SimulationResult
from ..netsim.stats import DEFAULT_EXACT_CAPACITY, LatencyAccumulator
from ..runner.artifacts import sanitize
from ..scenarios.spec import ScenarioSpec

#: Per-member metrics summarised across the cohort, in report order.
MEMBER_METRIC_FIELDS = (
    "mean_latency_seconds",
    "p99_latency_seconds",
    "delivered_fraction",
    "bus_utilization",
    "leaf_power_watts",
    "hub_power_watts",
    "leaf_energy_joules",
    "alive_fraction",
)

#: Percentiles reported for each member metric.
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)

#: Post-spill backend of the cohort's metric accumulators.  Sketches
#: keep cross-member p50/p99 within their documented rank error through
#: a million-member merge without retaining one value per member.
DEFAULT_METRIC_BACKEND = "sketch"


@dataclass(frozen=True)
class MemberMetrics:
    """One member's outcome, reduced to the scalars the cohort keeps."""

    index: int
    scenario: str
    source: str  # "des" or "analytic"
    arbitration: str
    node_count: int
    duration_seconds: float
    delivered_packets: int
    delivered_fraction: float
    mean_latency_seconds: float
    p99_latency_seconds: float
    bus_utilization: float
    leaf_power_watts: float
    hub_power_watts: float
    leaf_energy_joules: float
    hub_energy_joules: float
    #: Fraction of the member's nodes still alive at the horizon.
    alive_fraction: float = 1.0
    #: Earliest brownout within the run (``inf`` when none occurred).
    first_death_seconds: float = math.inf

    @classmethod
    def from_simulation(cls, index: int, spec: ScenarioSpec,
                        result: SimulationResult) -> "MemberMetrics":
        """Reduce one discrete-event run to its cohort scalars."""
        leaf_power = result.total_leaf_power_watts
        return cls(
            index=index,
            scenario=spec.name,
            source="des",
            arbitration=spec.arbitration,
            node_count=spec.leaf_count,
            duration_seconds=result.duration_seconds,
            delivered_packets=result.delivered_packets,
            delivered_fraction=result.delivered_fraction,
            mean_latency_seconds=result.mean_latency_seconds,
            p99_latency_seconds=result.p99_latency_seconds,
            bus_utilization=result.bus_utilization,
            leaf_power_watts=leaf_power,
            hub_power_watts=result.hub_average_power_watts,
            leaf_energy_joules=leaf_power * result.duration_seconds,
            hub_energy_joules=result.hub_energy_joules,
            alive_fraction=result.alive_fraction,
            first_death_seconds=result.first_death_seconds,
        )


@dataclass(frozen=True)
class ValidationRecord:
    """Analytic-vs-DES deviation of one sampled member."""

    index: int
    scenario: str
    arbitration: str
    analytic_leaf_power_watts: float
    des_leaf_power_watts: float
    analytic_delivered_fraction: float
    des_delivered_fraction: float
    analytic_mean_latency_seconds: float
    des_mean_latency_seconds: float
    analytic_alive_fraction: float = 1.0
    des_alive_fraction: float = 1.0

    @property
    def alive_fraction_abs_error(self) -> float:
        return abs(self.analytic_alive_fraction - self.des_alive_fraction)

    @property
    def leaf_power_rel_error(self) -> float:
        if self.des_leaf_power_watts == 0.0:
            return 0.0
        return abs(self.analytic_leaf_power_watts
                   - self.des_leaf_power_watts) / self.des_leaf_power_watts

    @property
    def delivered_fraction_abs_error(self) -> float:
        return abs(self.analytic_delivered_fraction
                   - self.des_delivered_fraction)

    @property
    def mean_latency_ratio(self) -> float:
        """Analytic/DES mean latency (1.0 when neither saw a packet)."""
        if self.des_mean_latency_seconds == 0.0:
            return 1.0 if self.analytic_mean_latency_seconds == 0.0 else float("inf")
        return (self.analytic_mean_latency_seconds
                / self.des_mean_latency_seconds)

    @property
    def mean_latency_factor(self) -> float:
        """Deviation factor (>= 1) in either direction: an analytic
        estimate 10x *below* the DES is as wrong as one 10x above."""
        ratio = self.mean_latency_ratio
        if ratio == 0.0:
            return float("inf")
        return max(ratio, 1.0 / ratio)

    def row(self) -> dict[str, object]:
        return {
            "member": self.index,
            "mac": self.arbitration,
            "leaf_power_err": round(self.leaf_power_rel_error, 4),
            "delivered_err": round(self.delivered_fraction_abs_error, 4),
            "latency_ratio": round(self.mean_latency_ratio, 3),
        }


class CohortAccumulator:
    """Mergeable, bounded-memory summary of a (partial) cohort.

    Counters are integers (exactly associative); every float metric lives
    in a :class:`LatencyAccumulator` so merging shard accumulators in
    member order reproduces the serial statistics bit-for-bit while the
    population fits the exact window, and degrades to the backend's
    documented approximation beyond it (a mergeable quantile sketch by
    default).

    Parameters
    ----------
    exact_capacity:
        Exact-window size of every metric accumulator.
    backend:
        Post-spill percentile backend (``"sketch"`` default;
        ``"histogram"`` preserves the pre-codec behaviour).
    keep_members:
        Retain the raw :class:`MemberMetrics` rows in :attr:`members`
        (and ship them inside encoded shard frames) for debugging.
        Off by default — the whole point of streaming aggregation is
        that nothing per-member survives the merge.
    """

    def __init__(self, exact_capacity: int = DEFAULT_EXACT_CAPACITY,
                 backend: str = DEFAULT_METRIC_BACKEND,
                 keep_members: bool = False) -> None:
        self.population = 0
        self.node_count = 0
        self.delivered_packets = 0
        #: Members that saw at least one node brown out within the run.
        self.dead_members = 0
        #: Earliest brownout across the cohort (``inf`` when none).
        self.first_death_seconds = math.inf
        self.by_policy: dict[str, int] = {}
        self.by_source: dict[str, int] = {}
        self.backend = backend
        self.keep_members = keep_members
        #: Raw member rows, retained only when ``keep_members`` is set.
        self.members: list[MemberMetrics] = []
        self.metrics: dict[str, LatencyAccumulator] = {
            name: LatencyAccumulator(exact_capacity=exact_capacity,
                                     backend=backend)
            for name in MEMBER_METRIC_FIELDS
        }
        #: Packet-level latency distribution, merged from the per-run
        #: accumulators of members that executed on the DES (the analytic
        #: path has no packets to contribute).
        self.packet_latency = LatencyAccumulator(backend=backend)

    # -- recording ---------------------------------------------------------

    def add(self, metrics: MemberMetrics) -> None:
        """Fold one member into the aggregate."""
        if self.keep_members:
            self.members.append(metrics)
        self.population += 1
        self.node_count += metrics.node_count
        self.delivered_packets += metrics.delivered_packets
        if metrics.first_death_seconds < math.inf:
            self.dead_members += 1
            self.first_death_seconds = min(self.first_death_seconds,
                                           metrics.first_death_seconds)
        self.by_policy[metrics.arbitration] = (
            self.by_policy.get(metrics.arbitration, 0) + 1)
        self.by_source[metrics.source] = (
            self.by_source.get(metrics.source, 0) + 1)
        for name in MEMBER_METRIC_FIELDS:
            self.metrics[name].add(getattr(metrics, name))

    def merge(self, other: "CohortAccumulator") -> None:
        """Fold another (later-member-range) accumulator into this one."""
        if self.keep_members:
            # Only what the other side actually retained can travel; a
            # keep_members=False shard contributes aggregates only.
            self.members.extend(other.members)
        self.population += other.population
        self.node_count += other.node_count
        self.delivered_packets += other.delivered_packets
        self.dead_members += other.dead_members
        self.first_death_seconds = min(self.first_death_seconds,
                                       other.first_death_seconds)
        for key, value in other.by_policy.items():
            self.by_policy[key] = self.by_policy.get(key, 0) + value
        for key, value in other.by_source.items():
            self.by_source[key] = self.by_source.get(key, 0) + value
        for name in MEMBER_METRIC_FIELDS:
            self.metrics[name].merge(other.metrics[name])
        self.packet_latency.merge(other.packet_latency)

    def merge_encoded(self, frame: bytes) -> "object":
        """Decode one binary shard frame and fold it in.

        The streaming-merge entry point: the cohort engine hands each
        worker's encoded bytes straight here, so no pickled accumulator
        ever crosses the process boundary.  Returns the decoded
        :class:`~repro.cohort.codec.ShardFrame` so callers can collect
        the shard's validations and timing without a second decode.
        """
        from .codec import decode_shard  # local: codec imports this module
        decoded = decode_shard(frame)
        self.merge(decoded.accumulator)
        return decoded

    # -- queries -----------------------------------------------------------

    def summary_rows(self) -> list[dict[str, object]]:
        """One report row per member metric: mean and cross-member percentiles.

        Values pass through the artifact layer's ``sanitize`` — the same
        JSON-tolerant spelling ``SimulationResult.to_dict`` relies on —
        so a degenerate cohort (zero delivered packets, every member
        dead) yields ``"inf"``/``"nan"`` strings instead of leaking bare
        non-finite floats into JSON artifacts.
        """
        if self.population == 0:
            raise ScenarioError("cohort accumulator is empty")
        rows: list[dict[str, object]] = []
        for name in MEMBER_METRIC_FIELDS:
            accumulator = self.metrics[name]
            row: dict[str, object] = {
                "metric": name,
                "mean": sanitize(accumulator.mean),
                "min": sanitize(accumulator.min_seconds),
            }
            for percentile in SUMMARY_PERCENTILES:
                row[f"p{percentile:.0f}"] = sanitize(
                    accumulator.percentile(percentile))
            row["max"] = sanitize(accumulator.max_seconds)
            rows.append(row)
        return rows

    def overview(self) -> dict[str, object]:
        """Headline aggregate numbers for a one-line report.

        Float values are sanitized like :meth:`summary_rows`: a cohort
        with zero delivered packets must still produce a valid JSON
        artifact.
        """
        if self.population == 0:
            raise ScenarioError("cohort accumulator is empty")
        overview: dict[str, object] = {
            "population": self.population,
            "nodes": self.node_count,
            "delivered_packets": self.delivered_packets,
            "policies": ",".join(f"{key}:{value}" for key, value
                                 in sorted(self.by_policy.items())),
            "sources": ",".join(f"{key}:{value}" for key, value
                                in sorted(self.by_source.items())),
            "mean_leaf_power_uw": sanitize(
                self.metrics["leaf_power_watts"].mean * 1e6),
            "mean_member_p99_ms": sanitize(
                self.metrics["p99_latency_seconds"].mean * 1e3),
            "dead_members": self.dead_members,
        }
        if math.isfinite(self.first_death_seconds):
            # Only present when a brownout occurred: keeps the overview
            # compact (the all-survived case needs no column).
            overview["first_death_s"] = self.first_death_seconds
        if self.packet_latency.count:
            overview["packet_p99_ms"] = sanitize(
                self.packet_latency.percentile(99.0) * 1e3)
        return overview
