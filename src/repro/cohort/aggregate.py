"""Streaming cohort aggregation: flat memory at any population.

A shard worker never returns its members' ``SimulationResult`` objects —
it folds each member into a :class:`CohortAccumulator` and ships only the
accumulator back.  Accumulators merge associatively *in member order*:
every per-member metric is held by a
:class:`~repro.netsim.stats.LatencyAccumulator`, which is an exact
concatenation while the population fits its exact window (so shard-merged
summaries are bit-identical to a serial run) and a bounded log-histogram
beyond it (so memory stays flat however large the cohort grows).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ScenarioError
from ..netsim.simulator import SimulationResult
from ..netsim.stats import DEFAULT_EXACT_CAPACITY, LatencyAccumulator
from ..scenarios.spec import ScenarioSpec

#: Per-member metrics summarised across the cohort, in report order.
MEMBER_METRIC_FIELDS = (
    "mean_latency_seconds",
    "p99_latency_seconds",
    "delivered_fraction",
    "bus_utilization",
    "leaf_power_watts",
    "hub_power_watts",
    "leaf_energy_joules",
    "alive_fraction",
)

#: Percentiles reported for each member metric.
SUMMARY_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass(frozen=True)
class MemberMetrics:
    """One member's outcome, reduced to the scalars the cohort keeps."""

    index: int
    scenario: str
    source: str  # "des" or "analytic"
    arbitration: str
    node_count: int
    duration_seconds: float
    delivered_packets: int
    delivered_fraction: float
    mean_latency_seconds: float
    p99_latency_seconds: float
    bus_utilization: float
    leaf_power_watts: float
    hub_power_watts: float
    leaf_energy_joules: float
    hub_energy_joules: float
    #: Fraction of the member's nodes still alive at the horizon.
    alive_fraction: float = 1.0
    #: Earliest brownout within the run (``inf`` when none occurred).
    first_death_seconds: float = math.inf

    @classmethod
    def from_simulation(cls, index: int, spec: ScenarioSpec,
                        result: SimulationResult) -> "MemberMetrics":
        """Reduce one discrete-event run to its cohort scalars."""
        leaf_power = result.total_leaf_power_watts
        return cls(
            index=index,
            scenario=spec.name,
            source="des",
            arbitration=spec.arbitration,
            node_count=spec.leaf_count,
            duration_seconds=result.duration_seconds,
            delivered_packets=result.delivered_packets,
            delivered_fraction=result.delivered_fraction,
            mean_latency_seconds=result.mean_latency_seconds,
            p99_latency_seconds=result.p99_latency_seconds,
            bus_utilization=result.bus_utilization,
            leaf_power_watts=leaf_power,
            hub_power_watts=result.hub_average_power_watts,
            leaf_energy_joules=leaf_power * result.duration_seconds,
            hub_energy_joules=result.hub_energy_joules,
            alive_fraction=result.alive_fraction,
            first_death_seconds=result.first_death_seconds,
        )


class CohortAccumulator:
    """Mergeable, bounded-memory summary of a (partial) cohort.

    Counters are integers (exactly associative); every float metric lives
    in a :class:`LatencyAccumulator` so merging shard accumulators in
    member order reproduces the serial statistics bit-for-bit while the
    population fits the exact window, and degrades to a documented
    histogram approximation beyond it.
    """

    def __init__(self, exact_capacity: int = DEFAULT_EXACT_CAPACITY) -> None:
        self.population = 0
        self.node_count = 0
        self.delivered_packets = 0
        #: Members that saw at least one node brown out within the run.
        self.dead_members = 0
        #: Earliest brownout across the cohort (``inf`` when none).
        self.first_death_seconds = math.inf
        self.by_policy: dict[str, int] = {}
        self.by_source: dict[str, int] = {}
        self.metrics: dict[str, LatencyAccumulator] = {
            name: LatencyAccumulator(exact_capacity=exact_capacity)
            for name in MEMBER_METRIC_FIELDS
        }
        #: Packet-level latency distribution, merged from the per-run
        #: accumulators of members that executed on the DES (the analytic
        #: path has no packets to contribute).
        self.packet_latency = LatencyAccumulator()

    # -- recording ---------------------------------------------------------

    def add(self, metrics: MemberMetrics) -> None:
        """Fold one member into the aggregate."""
        self.population += 1
        self.node_count += metrics.node_count
        self.delivered_packets += metrics.delivered_packets
        if metrics.first_death_seconds < math.inf:
            self.dead_members += 1
            self.first_death_seconds = min(self.first_death_seconds,
                                           metrics.first_death_seconds)
        self.by_policy[metrics.arbitration] = (
            self.by_policy.get(metrics.arbitration, 0) + 1)
        self.by_source[metrics.source] = (
            self.by_source.get(metrics.source, 0) + 1)
        for name in MEMBER_METRIC_FIELDS:
            self.metrics[name].add(getattr(metrics, name))

    def merge(self, other: "CohortAccumulator") -> None:
        """Fold another (later-member-range) accumulator into this one."""
        self.population += other.population
        self.node_count += other.node_count
        self.delivered_packets += other.delivered_packets
        self.dead_members += other.dead_members
        self.first_death_seconds = min(self.first_death_seconds,
                                       other.first_death_seconds)
        for key, value in other.by_policy.items():
            self.by_policy[key] = self.by_policy.get(key, 0) + value
        for key, value in other.by_source.items():
            self.by_source[key] = self.by_source.get(key, 0) + value
        for name in MEMBER_METRIC_FIELDS:
            self.metrics[name].merge(other.metrics[name])
        self.packet_latency.merge(other.packet_latency)

    # -- queries -----------------------------------------------------------

    def summary_rows(self) -> list[dict[str, object]]:
        """One report row per member metric: mean and cross-member percentiles."""
        if self.population == 0:
            raise ScenarioError("cohort accumulator is empty")
        rows: list[dict[str, object]] = []
        for name in MEMBER_METRIC_FIELDS:
            accumulator = self.metrics[name]
            row: dict[str, object] = {
                "metric": name,
                "mean": accumulator.mean,
                "min": accumulator.min_seconds,
            }
            for percentile in SUMMARY_PERCENTILES:
                row[f"p{percentile:.0f}"] = accumulator.percentile(percentile)
            row["max"] = accumulator.max_seconds
            rows.append(row)
        return rows

    def overview(self) -> dict[str, object]:
        """Headline aggregate numbers for a one-line report."""
        if self.population == 0:
            raise ScenarioError("cohort accumulator is empty")
        overview: dict[str, object] = {
            "population": self.population,
            "nodes": self.node_count,
            "delivered_packets": self.delivered_packets,
            "policies": ",".join(f"{key}:{value}" for key, value
                                 in sorted(self.by_policy.items())),
            "sources": ",".join(f"{key}:{value}" for key, value
                                in sorted(self.by_source.items())),
            "mean_leaf_power_uw": self.metrics["leaf_power_watts"].mean * 1e6,
            "mean_member_p99_ms":
                self.metrics["p99_latency_seconds"].mean * 1e3,
            "dead_members": self.dead_members,
        }
        if math.isfinite(self.first_death_seconds):
            # Only present when a brownout occurred: keeps the overview
            # JSON-serialisable (no Infinity) in artifacts.
            overview["first_death_s"] = self.first_death_seconds
        if self.packet_latency.count:
            overview["packet_p99_ms"] = (
                self.packet_latency.percentile(99.0) * 1e3)
        return overview
