"""Vectorised steady-state approximation of member scenarios.

Running 10 000 members through the discrete-event simulator takes hours;
the cohort engine therefore offers this analytic fast path: the same
:class:`~repro.scenarios.spec.ScenarioSpec` a DES run would compile is
reduced to flat numpy arrays (one row per concrete leaf node across the
whole batch) and evaluated with closed-form steady-state queueing and the
exact ledger arithmetic of the simulator.

The fidelity contract, validated continuously by the engine's sampled
cross-checks and by the gallery tolerance tests:

* **Energy and power are tight** — the ledger math (sensing/ISA power,
  energy-per-bit transmit/receive cost, sleep power in the idle residue)
  is identical to the simulator's accounting; the only divergence is
  packet quantisation at the horizon (documented at ≤ 10 %, typically
  ≪ 1 %).
* **Delivered fraction is tight in the stable regime** (``ρ < 0.9``):
  the approximation is ``min(1, 1/ρ)`` with the MAC's capacity overhead
  (TDMA guards, polling overhead) folded into ``ρ``.
* **Latency is an estimate** — an M/D/1-flavoured queueing delay plus a
  policy-specific mean access delay (half a TDMA superframe, half a
  polling ring).  Inside the validity envelope it tracks the DES within
  a small constant factor; outside (``ρ ≥ 0.9``) it only signals
  saturation, it does not predict the backlog trajectory.
* **Lifetime is first-order** — battery rows project time-to-death as
  usable energy over net drain (average load plus self-discharge minus
  harvest, the Fig. 3 arithmetic per node), then clip that node's
  traffic and consumption at its death.  Constant-load members track
  the DES brownout within the packet-quantisation error; low-battery
  duty-cycle adaptation is deliberately unmodelled (a throttled node
  outlives the estimate).
* **Lossy links are closed-form** — a scenario with a
  :class:`~repro.scenarios.spec.ReliabilitySpec` multiplies each node's
  offered traffic by the truncated-geometric expected attempt count
  ``E[attempts] = (1 - PER^(L+1)) / (1 - PER)`` (capped by the ARQ
  retry limit ``L``) for airtime and transmit energy, and by the ARQ
  delivery probability ``1 - PER^(L+1)`` for goodput; ack frames charge
  the medium, the leaf receiver and the hub transmitter per delivered
  packet.  Posture schedules enter through the spec's time-averaged
  reliability profile.  Lossless members multiply by exactly 1.0 / add
  exactly 0.0 everywhere, so their results are bit-identical to the
  pre-reliability fast path.
* **Source coding is closed-form** — a node with a
  :class:`~repro.coding.CodingSpec` keeps its generation cadence but
  its on-air payload, per-packet service time, slot sizing and packet
  erasure rate all use the coded packet size, and the encoder's power
  draw joins the node's static load — the same compile-time reduction
  the DES applies, so the two sides agree by construction.  Uncoded
  members take the plain-attribute paths with no extra float
  operation, keeping their results bit-identical to the pre-coding
  fast path.

Per-member reductions use ``np.bincount``/``np.maximum.at`` over rows
that are contiguous per member, so a member's arithmetic involves only
its own rows in a fixed order — the result for member *i* is bit-identical
whether the batch holds the whole cohort or just one shard.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..comm.mac import PollingMAC
from ..errors import ScenarioError
from ..netsim.arbitration import (
    DEFAULT_POLL_OVERHEAD_BITS as POLL_OVERHEAD_BITS,
    DEFAULT_POLL_TURNAROUND_SECONDS as POLL_TURNAROUND_SECONDS,
    DEFAULT_TDMA_GUARD_SECONDS as TDMA_GUARD_SECONDS,
    DEFAULT_TDMA_SUPERFRAME_SECONDS as TDMA_SUPERFRAME_SECONDS,
)
from ..scenarios.spec import (
    ScenarioSpec,
    battery_for,
    environment_for,
    harvester_for,
    technology_for,
)
from .aggregate import MemberMetrics

#: Utilisation above which the latency estimate is saturation signalling
#: only (the documented validity envelope of the fast path).
VALIDITY_UTILIZATION = 0.9


@dataclass(frozen=True)
class TechProfile:
    """The four link numbers the steady-state model needs."""

    rate_bps: float
    tx_energy_per_bit: float
    rx_energy_per_bit: float
    sleep_power_watts: float


@functools.lru_cache(maxsize=None)
def tech_profile(key: str) -> TechProfile:
    technology = technology_for(key)
    return TechProfile(
        rate_bps=technology.data_rate_bps(),
        tx_energy_per_bit=technology.tx_energy_per_bit(),
        rx_energy_per_bit=technology.rx_energy_per_bit(),
        sleep_power_watts=technology.sleep_power(),
    )


@functools.lru_cache(maxsize=None)
def _battery_profile(key: str, scale: float) -> tuple[float, float]:
    """(usable energy, self-discharge power) of a scaled battery."""
    spec = battery_for(key, scale)
    return spec.usable_energy_joules, spec.leakage_power_watts


@functools.lru_cache(maxsize=None)
def _harvest_power(key: str, environment: str) -> float:
    return harvester_for(key).power_watts(environment_for(environment))


def active_fractions(spec: ScenarioSpec) -> dict[str, float]:
    """Fraction of the run each concrete node generates traffic.

    Integrates :meth:`ScenarioSpec.node_awake_intervals` — the single
    sleep/wake replay implementation (same prefix matching and same tie
    order the simulator applies), shared with the reliability profile's
    awake-time weighting so the two can never drift apart.
    """
    return {
        concrete: sum(end - start for start, end
                      in spec.node_awake_intervals(concrete))
        for node in spec.nodes
        for concrete in node.expanded_names()
    }


def evaluate_members(specs: Sequence[ScenarioSpec],
                     indices: Sequence[int] | None = None,
                     interference: Sequence[tuple[float, float] | None]
                     | None = None) -> list[MemberMetrics]:
    """Steady-state metrics for a batch of member scenarios.

    *indices* labels the returned metrics (member indices within the
    cohort); it defaults to the batch positions.

    *interference* is the multi-body correction: one
    ``(rf_interference_dbm, eqs_interference_volts)`` pair per member —
    the aggregate co-channel power and coupled voltage the member's
    body receives from the rest of its room — or ``None`` for a member
    alone in its room.  A member's reliability profile is then derived
    through :meth:`~repro.scenarios.spec.ScenarioSpec.
    reliability_profile_adjusted`, which feeds interference-raised
    erasure rates into the same vectorised attempt/delivery columns
    below; every other float is untouched.  ``interference=None`` (the
    default, and any all-``None`` sequence) is exactly the standalone
    evaluation — bit-identical, the cohort side of the one-body
    neutrality contract.
    """
    indices = list(indices) if indices is not None else list(range(len(specs)))
    if len(indices) != len(specs):
        raise ScenarioError("indices must match the batch length")
    if interference is not None and len(interference) != len(specs):
        raise ScenarioError("interference must match the batch length")
    if not specs:
        return []

    # Flat node table: one row per concrete leaf, contiguous per member.
    member_of: list[int] = []
    packet_rate: list[float] = []     # active-weighted packets/second
    bits: list[float] = []
    service: list[float] = []         # seconds to serialise one packet
    tx_epb: list[float] = []
    rx_epb: list[float] = []
    sleep_power: list[float] = []
    link_rate: list[float] = []
    static_power: list[float] = []    # sensing + ISA, always on
    slot_seconds: list[float] = []    # TDMA slot width (schedule math)
    slot_offset: list[float] = []     # slot start within the superframe
    phase_locked: list[bool] = []     # periodic period ≡ 0 (mod superframe)
    batch_size: list[float] = []      # same-period periodic peers (bursts)
    is_periodic: list[bool] = []
    period_seconds: list[float] = []
    initial_energy: list[float] = []  # usable battery joules (inf = mains)
    leak_w: list[float] = []          # battery self-discharge power
    harvest_w: list[float] = []       # harvested power in the environment
    delivery_prob: list[float] = []   # ARQ delivery probability (1 = lossless)
    attempts: list[float] = []        # expected attempts/packet (1 = lossless)

    count = len(specs)
    duration = np.empty(count)
    node_count = np.empty(count)
    policy_tdma = np.zeros(count, dtype=bool)
    policy_polling = np.zeros(count, dtype=bool)
    poll_cost = np.zeros(count)
    hub_sleep = np.empty(count)
    hub_tx_epb = np.empty(count)
    ack_time = np.zeros(count)        # medium time per ack (ARQ only)
    ack_bits = np.zeros(count)        # ack length (ARQ only)

    for position, spec in enumerate(specs):
        duration[position] = spec.duration_seconds
        node_count[position] = spec.leaf_count
        policy_tdma[position] = spec.arbitration == "tdma"
        policy_polling[position] = spec.arbitration == "polling"
        hub = tech_profile(spec.hub_technology)
        hub_sleep[position] = hub.sleep_power_watts
        hub_tx_epb[position] = hub.tx_energy_per_bit
        if spec.arbitration == "polling":
            mac = PollingMAC(link_rate_bps=hub.rate_bps,
                             poll_overhead_bits=POLL_OVERHEAD_BITS,
                             turnaround_seconds=POLL_TURNAROUND_SECONDS)
            poll_cost[position] = mac.cycle_time_seconds(1, 0.0)
        reliability_profile = None
        if spec.reliability is not None:
            ambient = (interference[position]
                       if interference is not None else None)
            if ambient is None:
                reliability_profile = spec.reliability_profile()
            else:
                rf_dbm, eqs_volts = ambient
                reliability_profile = spec.reliability_profile_adjusted(
                    rf_interference_dbm=rf_dbm,
                    eqs_interference_volts=eqs_volts)
            arq = spec.reliability.arq_policy()
            if arq is not None:
                # Every attempt occupies the medium for the hub's ack
                # frame plus the turnaround (Medium.service_time_seconds).
                ack_time[position] = (arq.ack_bits / hub.rate_bps
                                      + arq.ack_turnaround_seconds)
                ack_bits[position] = arq.ack_bits
        fractions = active_fractions(spec)
        # Periodic sources all emit their first packet one period after
        # t=0, so equal-period nodes arrive *simultaneously*, every time:
        # a burst that must serialise.  Count each period's peers.
        period_peers: dict[float, int] = {}
        for node in spec.nodes:
            if node.traffic == "periodic":
                period = node.bits_per_packet / node.resolved_rate_bps()
                period_peers[period] = period_peers.get(period, 0) + node.count
        # Within-member slot cursor, accumulated here (not with a global
        # cumsum) so a member's offsets are bit-identical in any batch.
        slot_cursor = 0.0
        for node in spec.nodes:
            profile = tech_profile(node.technology)
            rate = node.resolved_rate_bps()
            period = node.bits_per_packet / rate
            # A periodic source whose period is an exact multiple of the
            # superframe arrives at a constant slot phase: its access
            # delay is its slot offset, not a uniform draw over the frame.
            cycles = period / TDMA_SUPERFRAME_SECONDS
            locked = (node.traffic == "periodic"
                      and abs(cycles - round(cycles)) < 1e-9)
            # A coded node keeps its generation cadence but puts shorter
            # packets on the air: on-air payload, per-packet service,
            # slot sizing (registration-time rate) and the coded PER the
            # reliability profile already folded in all use the coded
            # numbers.  Every accessor returns the plain attribute when
            # ``coding is None``, so uncoded members stay bit-identical.
            air_bits = node.coded_bits_per_packet()
            air_rate = node.air_rate_bps()
            coding_power = node.coding_power_watts()
            for concrete in node.expanded_names():
                member_of.append(position)
                active = fractions[concrete]
                packet_rate.append(active * rate / node.bits_per_packet)
                bits.append(air_bits)
                if reliability_profile is None:
                    delivered_share, mean_attempts = 1.0, 1.0
                else:
                    delivered_share, mean_attempts = \
                        reliability_profile[concrete]
                delivery_prob.append(delivered_share)
                attempts.append(mean_attempts)
                # Effective airtime per offered packet: every attempt
                # re-serialises the frame, pays the MAC overhead and —
                # under ARQ — the ack exchange.  ``x * 1.0 + 0.0`` is an
                # exact identity, so lossless rows keep the historical
                # service value bit-for-bit.
                service.append(mean_attempts
                               * (air_bits / profile.rate_bps
                                  + spec.per_packet_overhead_seconds
                                  + ack_time[position]))
                tx_epb.append(profile.tx_energy_per_bit)
                rx_epb.append(profile.rx_energy_per_bit)
                sleep_power.append(profile.sleep_power_watts)
                link_rate.append(profile.rate_bps)
                power = node.sensing_power_watts + node.isa_power_watts
                if coding_power > 0.0:
                    # Added only when a coder runs: uncoded members see
                    # the historical sum with no extra float operation.
                    power += coding_power
                static_power.append(power)
                # Slot widths mirror TDMASchedule.build: payload time at
                # the medium rate plus the guard, sized from the full
                # (registration-time) offered rate.
                width = (air_rate * TDMA_SUPERFRAME_SECONDS / hub.rate_bps
                         + TDMA_GUARD_SECONDS)
                slot_seconds.append(width)
                slot_offset.append(slot_cursor)
                slot_cursor += width
                phase_locked.append(locked)
                batch_size.append(float(period_peers.get(period, 1))
                                  if node.traffic == "periodic" else 1.0)
                is_periodic.append(node.traffic == "periodic")
                period_seconds.append(period)
                if node.battery is not None:
                    usable, leakage = _battery_profile(node.battery,
                                                       node.battery_scale)
                    initial_energy.append(usable
                                          * node.initial_charge_fraction)
                    leak_w.append(leakage)
                else:
                    initial_energy.append(np.inf)
                    leak_w.append(0.0)
                harvest_w.append(
                    _harvest_power(node.harvester, spec.environment)
                    if node.harvester is not None else 0.0)

    member_of = np.asarray(member_of)
    packet_rate = np.asarray(packet_rate)
    bits = np.asarray(bits)
    service = np.asarray(service)
    tx_epb = np.asarray(tx_epb)
    rx_epb = np.asarray(rx_epb)
    sleep_power = np.asarray(sleep_power)
    link_rate = np.asarray(link_rate)
    static_power = np.asarray(static_power)
    slot_seconds = np.asarray(slot_seconds)
    slot_offset = np.asarray(slot_offset)
    phase_locked = np.asarray(phase_locked)
    batch_size = np.asarray(batch_size)
    is_periodic = np.asarray(is_periodic)
    period_seconds = np.asarray(period_seconds)
    initial_energy = np.asarray(initial_energy)
    leak_w = np.asarray(leak_w)
    harvest_w = np.asarray(harvest_w)
    delivery_prob = np.asarray(delivery_prob)
    attempts = np.asarray(attempts)

    def per_member(weights: np.ndarray) -> np.ndarray:
        return np.bincount(member_of, weights=weights, minlength=count)

    total_packet_rate = per_member(packet_rate)
    rho_service = per_member(packet_rate * service)
    # Capacity overheads of the MAC fold into the effective utilisation:
    # TDMA pays a guard slot per node and superframe, polling pays one
    # poll per *transmission attempt* (a retransmission re-enters the
    # ring) once it is mostly backlogged.  ``packet_rate * attempts`` is
    # bit-identical to ``packet_rate`` for lossless members.
    attempt_rate = per_member(packet_rate * attempts)
    rho = rho_service.copy()
    rho[policy_tdma] += (node_count[policy_tdma] * TDMA_GUARD_SECONDS
                         / TDMA_SUPERFRAME_SECONDS)
    rho[policy_polling] += (attempt_rate[policy_polling]
                            * poll_cost[policy_polling])

    with np.errstate(divide="ignore", invalid="ignore"):
        saturation_fraction = np.where(rho > 1.0, 1.0 / rho, 1.0)
        mean_service = np.where(total_packet_rate > 0.0,
                                rho_service / total_packet_rate, 0.0)
        # M/D/1-flavoured queueing wait in the stable regime; in overload
        # the wait is backlog growth, approximated by a quarter of the
        # run (the mean age of an eventually-served packet).
        stable = rho < 1.0
        wait = np.where(
            stable,
            np.clip(rho / (2.0 * np.maximum(1.0 - rho, 1e-12)), 0.0, None)
            * mean_service,
            0.25 * duration * (1.0 - saturation_fraction),
        )
        wait = np.minimum(wait, duration)

    max_service = np.zeros(count)
    np.maximum.at(max_service, member_of,
                  np.where(packet_rate > 0.0, service, 0.0))

    # A phase-locked node always waits exactly until its slot; a drifting
    # one samples the frame uniformly.
    node_access = np.where(phase_locked, slot_offset,
                           TDMA_SUPERFRAME_SECONDS / 2.0)
    node_access_tail = np.where(phase_locked, slot_offset,
                                TDMA_SUPERFRAME_SECONDS)

    access_mean = np.zeros(count)
    with np.errstate(invalid="ignore"):
        tdma_access = np.where(
            total_packet_rate > 0.0,
            per_member(packet_rate * node_access) / total_packet_rate, 0.0)
    access_mean[policy_tdma] = tdma_access[policy_tdma]
    access_mean[policy_polling] = (poll_cost[policy_polling]
                                   * (node_count[policy_polling] / 2.0 + 1.0))
    access_tail = np.zeros(count)
    tdma_tail = np.zeros(count)
    np.maximum.at(tdma_tail, member_of,
                  np.where(packet_rate > 0.0, node_access_tail, 0.0))
    access_tail[policy_tdma] = tdma_tail[policy_tdma]
    access_tail[policy_polling] = (poll_cost[policy_polling]
                                   * node_count[policy_polling])

    # Synchronized-burst drain: equal-period periodic peers arrive as one
    # batch and serialise at a policy-specific spacing — back-to-back
    # service for FIFO, service plus a poll for polling, and for TDMA the
    # frame time divided by how many transmissions fit the member's slot
    # span (windows cover only part of each superframe, so a drained
    # burst trickles out at frame granularity).
    slot_span = per_member(slot_seconds)
    drain = service.copy()
    polling_rows = policy_polling[member_of]
    drain[polling_rows] += poll_cost[member_of][polling_rows]
    tdma_rows = policy_tdma[member_of]
    with np.errstate(divide="ignore", invalid="ignore"):
        frame_drain = TDMA_SUPERFRAME_SECONDS / np.maximum(
            1.0, slot_span[member_of] / service)
    drain[tdma_rows] = np.maximum(drain, frame_drain)[tdma_rows]
    batch_wait = (batch_size - 1.0) / 2.0 * drain
    with np.errstate(invalid="ignore"):
        member_batch_wait = np.where(
            total_packet_rate > 0.0,
            per_member(packet_rate * batch_wait) / total_packet_rate, 0.0)
    batch_tail = np.zeros(count)
    np.maximum.at(batch_tail, member_of,
                  np.where(packet_rate > 0.0,
                           (batch_size - 1.0) * drain, 0.0))

    mean_latency = mean_service + wait + access_mean + member_batch_wait
    p99_latency = np.maximum(
        max_service + 3.0 * wait + access_tail + batch_tail, mean_latency)
    had_packets = total_packet_rate * duration > 0.0
    mean_latency = np.where(had_packets, mean_latency, 0.0)
    p99_latency = np.where(had_packets, p99_latency, 0.0)

    # Horizon accounting: the DES counts every generated packet as
    # offered, so packets still in flight at the end of the run push the
    # delivered fraction below one.  Two effects matter: packets born
    # within one mean latency of the horizon, and — because the sampler
    # clamps packet sizes to an integer fraction of the duration — the
    # final packet of a stream whose period divides the duration exactly
    # (generated *at* the horizon, it can never deliver).
    offered_row = packet_rate * duration[member_of]
    with np.errstate(divide="ignore", invalid="ignore"):
        cycles_run = duration[member_of] / period_seconds
    on_boundary = (is_periodic & (offered_row >= 1.0)
                   & (np.abs(cycles_run - np.rint(cycles_run))
                      < 1e-6 * np.maximum(cycles_run, 1.0)))
    undelivered_row = np.minimum(
        offered_row,
        on_boundary.astype(float) + packet_rate * mean_latency[member_of])
    offered = per_member(offered_row)
    with np.errstate(invalid="ignore"):
        horizon_fraction = np.where(
            offered > 0.0, 1.0 - per_member(undelivered_row) / offered, 1.0)
    # Admission: what the medium accepts and eventually serialises
    # (saturation and horizon effects).  The lossy link then drops the
    # ARQ-unrecoverable share of *admitted* packets; erased attempts
    # still consumed airtime and energy, so the admission fraction — not
    # the delivered fraction — drives the serialisation terms below.
    admission_fraction = np.minimum(saturation_fraction, horizon_fraction)
    with np.errstate(invalid="ignore"):
        member_delivery = np.where(
            total_packet_rate > 0.0,
            per_member(packet_rate * delivery_prob) / total_packet_rate, 1.0)
    delivered_fraction = admission_fraction * member_delivery

    # Depletion model: each battery row's average pre-death power
    # projects its time to death (usable energy over net drain, the
    # closed-form Fig. 3 arithmetic applied per node); a node past its
    # death stops generating *and* consuming, so traffic and energy
    # below use the alive duration instead of the horizon.  Deliberately
    # unmodelled: low-battery duty-cycle adaptation (a throttled node
    # outlives this estimate) and state-of-charge trajectories.  A
    # battery-less batch (the default cohort) skips the extra vector
    # passes entirely.
    full_duration = duration[member_of]
    member_death = np.full(count, np.inf)
    if np.isfinite(initial_energy).any():
        bits_tx_full = (packet_rate * bits * full_duration
                        * saturation_fraction[member_of] * attempts)
        tx_seconds_full = bits_tx_full / link_rate
        ack_energy_full = (packet_rate * full_duration
                           * saturation_fraction[member_of]
                           * delivery_prob * ack_bits[member_of] * rx_epb)
        energy_full = (static_power * full_duration
                       + bits_tx_full * tx_epb
                       + ack_energy_full
                       + sleep_power * np.maximum(full_duration
                                                  - tx_seconds_full, 0.0))
        with np.errstate(divide="ignore", invalid="ignore"):
            power_full = np.where(full_duration > 0.0,
                                  energy_full / full_duration, 0.0)
            net_drain = power_full + leak_w - harvest_w
            death = np.where(net_drain > 0.0, initial_energy / net_drain,
                             np.inf)
        alive_duration = np.minimum(death, full_duration)
        rows_per_member = per_member(np.ones_like(packet_rate))
        with np.errstate(invalid="ignore"):
            alive_fraction = np.where(
                rows_per_member > 0.0,
                per_member((death > full_duration).astype(float))
                / rows_per_member, 1.0)
        np.minimum.at(member_death, member_of, death)
        member_death = np.where(member_death <= duration, member_death,
                                np.inf)
        delivered_packets = np.rint(
            per_member(packet_rate * alive_duration * delivery_prob)
            * admission_fraction).astype(np.int64)
        busy = (per_member(packet_rate * service * alive_duration)
                * admission_fraction)
    else:
        alive_duration = full_duration
        alive_fraction = np.ones(count)
        delivered_packets = np.rint(
            total_packet_rate * duration * delivered_fraction
        ).astype(np.int64)
        busy = rho_service * duration * admission_fraction

    # Ledger arithmetic, identical to the simulator's accounting: the
    # transmitted bits follow the accepted traffic — every ARQ attempt
    # re-serialises the frame, so erased attempts burn transmit energy
    # and hub receive energy too — and the sleep residue is whatever the
    # link is not serialising, both clipped to each node's alive
    # duration.  Acks charge the leaf receiver and the hub transmitter
    # once per delivered packet.
    bits_tx = (packet_rate * bits * alive_duration
               * admission_fraction[member_of] * attempts)
    tx_seconds = bits_tx / link_rate
    delivered_row = (packet_rate * alive_duration
                     * admission_fraction[member_of] * delivery_prob)
    ack_rx_energy = delivered_row * ack_bits[member_of] * rx_epb
    node_energy = (static_power * alive_duration
                   + bits_tx * tx_epb
                   + ack_rx_energy
                   + sleep_power * np.maximum(alive_duration
                                              - tx_seconds, 0.0))
    leaf_energy = per_member(node_energy)
    leaf_power = leaf_energy / duration
    utilization = np.minimum(np.where(duration > 0, busy / duration, 0.0),
                             1.0)
    hub_rx_energy = per_member(bits_tx * rx_epb)
    hub_ack_energy = per_member(delivered_row) * ack_bits * hub_tx_epb
    hub_energy = hub_rx_energy + hub_ack_energy + hub_sleep * np.maximum(
        duration - np.minimum(busy, duration), 0.0)
    hub_power = hub_energy / duration

    results: list[MemberMetrics] = []
    for position, spec in enumerate(specs):
        results.append(MemberMetrics(
            index=indices[position],
            scenario=spec.name,
            source="analytic",
            arbitration=spec.arbitration,
            node_count=spec.leaf_count,
            duration_seconds=float(duration[position]),
            delivered_packets=int(delivered_packets[position]),
            delivered_fraction=float(delivered_fraction[position]),
            mean_latency_seconds=float(mean_latency[position]),
            p99_latency_seconds=float(p99_latency[position]),
            bus_utilization=float(utilization[position]),
            leaf_power_watts=float(leaf_power[position]),
            hub_power_watts=float(hub_power[position]),
            leaf_energy_joules=float(leaf_energy[position]),
            hub_energy_joules=float(hub_energy[position]),
            alive_fraction=float(alive_fraction[position]),
            first_death_seconds=float(member_death[position]),
        ))
    return results


def evaluate_member(spec: ScenarioSpec, index: int = 0) -> MemberMetrics:
    """Steady-state metrics for a single scenario (tests, validation)."""
    return evaluate_members([spec], [index])[0]
