"""Inference-only neural-network layers backed by numpy.

Conventions
-----------
* Activations are ``float64`` numpy arrays with a leading batch axis.
* Image tensors are NHWC: ``(batch, height, width, channels)``.
* ``output_shape`` and ``macs`` take/return *per-sample* shapes (no batch
  axis) so the profiler's numbers are per inference.
* Every layer knows its parameter count and its multiply-accumulate count,
  which is what the leaf/hub energy models consume.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from ..errors import ShapeError


Shape = tuple[int, ...]


def _as_shape(shape: Shape) -> Shape:
    return tuple(int(dim) for dim in shape)


class Layer(abc.ABC):
    """Base class for all layers."""

    def __init__(self, name: str | None = None) -> None:
        self.name = name or type(self).__name__

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the layer on a batched input."""

    @abc.abstractmethod
    def output_shape(self, input_shape: Shape) -> Shape:
        """Per-sample output shape for a per-sample input shape."""

    def num_params(self) -> int:
        """Number of trainable parameters."""
        return 0

    def macs(self, input_shape: Shape) -> int:
        """Multiply-accumulate operations per inference."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------------
# Dense
# ---------------------------------------------------------------------------

class Dense(Layer):
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        if in_features <= 0 or out_features <= 0:
            raise ShapeError("Dense dimensions must be positive")
        rng = rng or np.random.default_rng(0)
        scale = math.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)

    @property
    def in_features(self) -> int:
        return self.weight.shape[0]

    @property
    def out_features(self) -> int:
        return self.weight.shape[1]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected input of shape (batch, {self.in_features}), "
                f"got {x.shape}"
            )
        return x @ self.weight + self.bias

    def output_shape(self, input_shape: Shape) -> Shape:
        input_shape = _as_shape(input_shape)
        if len(input_shape) != 1 or input_shape[0] != self.in_features:
            raise ShapeError(
                f"{self.name}: expected per-sample shape ({self.in_features},), "
                f"got {input_shape}"
            )
        return (self.out_features,)

    def num_params(self) -> int:
        return self.weight.size + self.bias.size

    def macs(self, input_shape: Shape) -> int:
        self.output_shape(input_shape)
        return self.in_features * self.out_features


# ---------------------------------------------------------------------------
# Convolutions
# ---------------------------------------------------------------------------

def _conv_output_size(size: int, kernel: int, stride: int, padding: str) -> int:
    if padding == "same":
        return int(math.ceil(size / stride))
    if padding == "valid":
        return int(math.floor((size - kernel) / stride)) + 1
    raise ShapeError(f"padding must be 'same' or 'valid', got {padding!r}")


def _pad_amounts(size: int, kernel: int, stride: int, padding: str) -> tuple[int, int]:
    if padding == "valid":
        return 0, 0
    out_size = _conv_output_size(size, kernel, stride, padding)
    total = max((out_size - 1) * stride + kernel - size, 0)
    before = total // 2
    return before, total - before


def _im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride_h: int,
            stride_w: int, padding: str) -> tuple[np.ndarray, int, int]:
    """Gather sliding windows: returns (patches, out_h, out_w).

    ``patches`` has shape ``(batch, out_h, out_w, kernel_h*kernel_w*channels)``.
    """
    batch, height, width, channels = x.shape
    pad_top, pad_bottom = _pad_amounts(height, kernel_h, stride_h, padding)
    pad_left, pad_right = _pad_amounts(width, kernel_w, stride_w, padding)
    if pad_top or pad_bottom or pad_left or pad_right:
        x = np.pad(x, ((0, 0), (pad_top, pad_bottom), (pad_left, pad_right), (0, 0)))
    out_h = _conv_output_size(height, kernel_h, stride_h, padding)
    out_w = _conv_output_size(width, kernel_w, stride_w, padding)
    patches = np.empty((batch, out_h, out_w, kernel_h * kernel_w * channels),
                       dtype=x.dtype)
    column = 0
    for di in range(kernel_h):
        for dj in range(kernel_w):
            block = x[
                :,
                di:di + stride_h * out_h:stride_h,
                dj:dj + stride_w * out_w:stride_w,
                :,
            ]
            patches[:, :, :, column * channels:(column + 1) * channels] = block
            column += 1
    return patches, out_h, out_w


class Conv2D(Layer):
    """2-D convolution over NHWC tensors."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: str = "same",
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ShapeError("Conv2D dimensions must be positive")
        if padding not in ("same", "valid"):
            raise ShapeError(f"padding must be 'same' or 'valid', got {padding!r}")
        rng = rng or np.random.default_rng(0)
        fan_in = kernel_size * kernel_size * in_channels
        scale = math.sqrt(2.0 / fan_in)
        self.weight = rng.normal(
            0.0, scale, size=(kernel_size, kernel_size, in_channels, out_channels)
        )
        self.bias = np.zeros(out_channels)
        self.stride = stride
        self.padding = padding

    @property
    def kernel_size(self) -> int:
        return self.weight.shape[0]

    @property
    def in_channels(self) -> int:
        return self.weight.shape[2]

    @property
    def out_channels(self) -> int:
        return self.weight.shape[3]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected NHWC input with {self.in_channels} channels, "
                f"got shape {x.shape}"
            )
        patches, out_h, out_w = _im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.stride,
            self.padding,
        )
        kernel_matrix = self.weight.reshape(-1, self.out_channels)
        output = patches @ kernel_matrix + self.bias
        return output.reshape(x.shape[0], out_h, out_w, self.out_channels)

    def output_shape(self, input_shape: Shape) -> Shape:
        input_shape = _as_shape(input_shape)
        if len(input_shape) != 3 or input_shape[2] != self.in_channels:
            raise ShapeError(
                f"{self.name}: expected per-sample shape (H, W, {self.in_channels}), "
                f"got {input_shape}"
            )
        height, width, _ = input_shape
        out_h = _conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = _conv_output_size(width, self.kernel_size, self.stride, self.padding)
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(f"{self.name}: input {input_shape} too small for kernel")
        return (out_h, out_w, self.out_channels)

    def num_params(self) -> int:
        return self.weight.size + self.bias.size

    def macs(self, input_shape: Shape) -> int:
        out_h, out_w, out_c = self.output_shape(input_shape)
        return (
            out_h * out_w * out_c
            * self.kernel_size * self.kernel_size * self.in_channels
        )


class DepthwiseConv2D(Layer):
    """Depthwise 2-D convolution (one filter per input channel)."""

    def __init__(self, channels: int, kernel_size: int, stride: int = 1,
                 padding: str = "same",
                 rng: np.random.Generator | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        if min(channels, kernel_size, stride) <= 0:
            raise ShapeError("DepthwiseConv2D dimensions must be positive")
        if padding not in ("same", "valid"):
            raise ShapeError(f"padding must be 'same' or 'valid', got {padding!r}")
        rng = rng or np.random.default_rng(0)
        fan_in = kernel_size * kernel_size
        scale = math.sqrt(2.0 / fan_in)
        self.weight = rng.normal(0.0, scale, size=(kernel_size, kernel_size, channels))
        self.bias = np.zeros(channels)
        self.stride = stride
        self.padding = padding

    @property
    def kernel_size(self) -> int:
        return self.weight.shape[0]

    @property
    def channels(self) -> int:
        return self.weight.shape[2]

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4 or x.shape[3] != self.channels:
            raise ShapeError(
                f"{self.name}: expected NHWC input with {self.channels} channels, "
                f"got shape {x.shape}"
            )
        patches, out_h, out_w = _im2col(
            x, self.kernel_size, self.kernel_size, self.stride, self.stride,
            self.padding,
        )
        batch = x.shape[0]
        patches = patches.reshape(
            batch, out_h, out_w, self.kernel_size * self.kernel_size, self.channels
        )
        kernel = self.weight.reshape(self.kernel_size * self.kernel_size, self.channels)
        output = np.einsum("bhwkc,kc->bhwc", patches, kernel) + self.bias
        return output

    def output_shape(self, input_shape: Shape) -> Shape:
        input_shape = _as_shape(input_shape)
        if len(input_shape) != 3 or input_shape[2] != self.channels:
            raise ShapeError(
                f"{self.name}: expected per-sample shape (H, W, {self.channels}), "
                f"got {input_shape}"
            )
        height, width, _ = input_shape
        out_h = _conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = _conv_output_size(width, self.kernel_size, self.stride, self.padding)
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(f"{self.name}: input {input_shape} too small for kernel")
        return (out_h, out_w, self.channels)

    def num_params(self) -> int:
        return self.weight.size + self.bias.size

    def macs(self, input_shape: Shape) -> int:
        out_h, out_w, channels = self.output_shape(input_shape)
        return out_h * out_w * channels * self.kernel_size * self.kernel_size


# ---------------------------------------------------------------------------
# Pooling and reshaping
# ---------------------------------------------------------------------------

class _Pool2D(Layer):
    """Shared plumbing for max/average pooling.

    ``pool_size`` and ``stride`` accept either an int (square window) or an
    ``(height, width)`` tuple, so 1-D-style models (ECG beats represented
    as Hx1 images) can pool along the long axis only.
    """

    def __init__(self, pool_size: int | tuple[int, int] = 2,
                 stride: int | tuple[int, int] | None = None,
                 name: str | None = None) -> None:
        super().__init__(name)
        self.pool_h, self.pool_w = self._pair(pool_size, "pool size")
        if stride is None:
            self.stride_h, self.stride_w = self.pool_h, self.pool_w
        else:
            self.stride_h, self.stride_w = self._pair(stride, "stride")

    @staticmethod
    def _pair(value: int | tuple[int, int], what: str) -> tuple[int, int]:
        if isinstance(value, tuple):
            if len(value) != 2:
                raise ShapeError(f"{what} tuple must have two entries")
            first, second = int(value[0]), int(value[1])
        else:
            first = second = int(value)
        if first <= 0 or second <= 0:
            raise ShapeError(f"{what} must be positive")
        return first, second

    def _reduce(self, windows: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NHWC input, got shape {x.shape}")
        patches, out_h, out_w = _im2col(
            x, self.pool_h, self.pool_w, self.stride_h, self.stride_w, "valid"
        )
        batch, _, _, _ = x.shape
        channels = x.shape[3]
        windows = patches.reshape(
            batch, out_h, out_w, self.pool_h * self.pool_w, channels
        )
        return self._reduce(windows)

    def output_shape(self, input_shape: Shape) -> Shape:
        input_shape = _as_shape(input_shape)
        if len(input_shape) != 3:
            raise ShapeError(f"{self.name}: expected (H, W, C), got {input_shape}")
        height, width, channels = input_shape
        if height < self.pool_h or width < self.pool_w:
            raise ShapeError(f"{self.name}: input {input_shape} too small for pool")
        out_h = _conv_output_size(height, self.pool_h, self.stride_h, "valid")
        out_w = _conv_output_size(width, self.pool_w, self.stride_w, "valid")
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(f"{self.name}: input {input_shape} too small for pool")
        return (out_h, out_w, channels)


class MaxPool2D(_Pool2D):
    """Max pooling."""

    def _reduce(self, windows: np.ndarray) -> np.ndarray:
        return windows.max(axis=3)


class AvgPool2D(_Pool2D):
    """Average pooling."""

    def _reduce(self, windows: np.ndarray) -> np.ndarray:
        return windows.mean(axis=3)


class GlobalAveragePool(Layer):
    """Mean over the spatial dimensions of an NHWC tensor."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim != 4:
            raise ShapeError(f"{self.name}: expected NHWC input, got shape {x.shape}")
        return x.mean(axis=(1, 2))

    def output_shape(self, input_shape: Shape) -> Shape:
        input_shape = _as_shape(input_shape)
        if len(input_shape) != 3:
            raise ShapeError(f"{self.name}: expected (H, W, C), got {input_shape}")
        return (input_shape[2],)


class Flatten(Layer):
    """Flatten all per-sample dimensions into one vector."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim < 2:
            raise ShapeError(f"{self.name}: expected a batched input, got shape {x.shape}")
        return x.reshape(x.shape[0], -1)

    def output_shape(self, input_shape: Shape) -> Shape:
        input_shape = _as_shape(input_shape)
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)


# ---------------------------------------------------------------------------
# Activations and normalisation
# ---------------------------------------------------------------------------

class _Elementwise(Layer):
    """Shared plumbing for shape-preserving elementwise layers."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return _as_shape(input_shape)


class ReLU(_Elementwise):
    """Rectified linear activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.maximum(np.asarray(x, dtype=float), 0.0)


class Sigmoid(_Elementwise):
    """Logistic activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return 1.0 / (1.0 + np.exp(-x))


class Tanh(_Elementwise):
    """Hyperbolic tangent activation."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(np.asarray(x, dtype=float))


class Softmax(_Elementwise):
    """Softmax over the last axis (numerically stabilised)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        shifted = x - x.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)


class BatchNorm(_Elementwise):
    """Inference-time batch normalisation over the channel (last) axis."""

    def __init__(self, channels: int, epsilon: float = 1e-5,
                 name: str | None = None) -> None:
        super().__init__(name)
        if channels <= 0:
            raise ShapeError("channel count must be positive")
        if epsilon <= 0:
            raise ShapeError("epsilon must be positive")
        self.gamma = np.ones(channels)
        self.beta = np.zeros(channels)
        self.moving_mean = np.zeros(channels)
        self.moving_var = np.ones(channels)
        self.epsilon = epsilon

    @property
    def channels(self) -> int:
        return self.gamma.size

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.channels:
            raise ShapeError(
                f"{self.name}: expected last axis of {self.channels}, got {x.shape}"
            )
        scale = self.gamma / np.sqrt(self.moving_var + self.epsilon)
        return (x - self.moving_mean) * scale + self.beta

    def output_shape(self, input_shape: Shape) -> Shape:
        input_shape = _as_shape(input_shape)
        if input_shape[-1] != self.channels:
            raise ShapeError(
                f"{self.name}: expected last axis of {self.channels}, got {input_shape}"
            )
        return input_shape

    def num_params(self) -> int:
        return self.gamma.size + self.beta.size
