"""Static profiling of models: MACs, parameters and activation sizes.

The profile is the interface between the NN engine and the systems side
of the library: the partitioner in :mod:`repro.core.partition` only needs
to know, for every layer, how much compute it costs and how many bits
would have to cross the leaf-to-hub link if the model were cut after it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphError
from .model import Sequential


@dataclass(frozen=True)
class LayerProfile:
    """Per-layer cost summary."""

    index: int
    name: str
    output_shape: tuple[int, ...]
    macs: int
    params: int
    output_elements: int
    output_bits: float

    @property
    def output_bytes(self) -> float:
        """Size of the activation leaving this layer in bytes."""
        return self.output_bits / 8.0


@dataclass(frozen=True)
class ModelProfile:
    """Whole-model cost summary with per-layer detail."""

    model_name: str
    input_shape: tuple[int, ...]
    input_bits: float
    layers: tuple[LayerProfile, ...]
    activation_bits_per_element: int

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulates per inference."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_params(self) -> int:
        """Total trainable parameters."""
        return sum(layer.params for layer in self.layers)

    @property
    def output_bits(self) -> float:
        """Size of the final output activation in bits."""
        if not self.layers:
            return self.input_bits
        return self.layers[-1].output_bits

    def macs_before(self, split_index: int) -> int:
        """MACs executed by layers [0, split_index)."""
        self._check_split(split_index)
        return sum(layer.macs for layer in self.layers[:split_index])

    def macs_after(self, split_index: int) -> int:
        """MACs executed by layers [split_index, end)."""
        self._check_split(split_index)
        return sum(layer.macs for layer in self.layers[split_index:])

    def transfer_bits_at(self, split_index: int) -> float:
        """Bits crossing the link if the model is cut before layer *split_index*.

        ``split_index == 0`` means "ship the raw input"; ``split_index ==
        len(layers)`` means "ship only the final output" (full local
        inference).
        """
        self._check_split(split_index)
        if split_index == 0:
            return self.input_bits
        return self.layers[split_index - 1].output_bits

    def split_points(self) -> list[int]:
        """All valid split indices (0 .. number of layers)."""
        return list(range(len(self.layers) + 1))

    def _check_split(self, split_index: int) -> None:
        if not 0 <= split_index <= len(self.layers):
            raise GraphError(
                f"split index {split_index} out of range for "
                f"{len(self.layers)} layers"
            )


def profile_model(model: Sequential,
                  activation_bits_per_element: int = 8) -> ModelProfile:
    """Build a :class:`ModelProfile` for *model*.

    ``activation_bits_per_element`` sets how activations would be
    serialised on the link (8-bit quantised by default, matching the
    int8 deployment path of :mod:`repro.nn.quantize`).
    """
    if activation_bits_per_element <= 0:
        raise GraphError("activation bits per element must be positive")
    shapes = model.layer_shapes()
    input_elements = int(np.prod(model.input_shape))
    layers = []
    for index, layer in enumerate(model.layers):
        out_shape = shapes[index + 1]
        elements = int(np.prod(out_shape))
        layers.append(LayerProfile(
            index=index,
            name=layer.name,
            output_shape=tuple(out_shape),
            macs=int(layer.macs(shapes[index])),
            params=int(layer.num_params()),
            output_elements=elements,
            output_bits=float(elements * activation_bits_per_element),
        ))
    return ModelProfile(
        model_name=model.name,
        input_shape=model.input_shape,
        input_bits=float(input_elements * activation_bits_per_element),
        layers=tuple(layers),
        activation_bits_per_element=activation_bits_per_element,
    )
