"""From-scratch numpy DNN inference engine.

The reproduction hint for this paper is to "simulate partitioned inference
... on laptop".  PyTorch is not available offline, so this package
provides a small but real inference engine: layers with exact tensor
shapes and forward passes, a profiler that counts multiply-accumulates,
parameters and activation sizes per layer, int8 quantisation for
in-sensor deployment, and a model zoo covering the workloads the paper's
wearable-AI classes imply (keyword spotting for audio pins, ECG arrhythmia
detection for biopotential patches, a MobileNet-style vision model for
camera glasses, an IMU human-activity-recognition MLP).

Layer-by-layer profiles are the input to the DNN partitioner in
:mod:`repro.core.partition`, which decides how much of each model runs on
the leaf node versus the on-body hub.
"""

from .layers import (
    Layer,
    Dense,
    Conv2D,
    DepthwiseConv2D,
    MaxPool2D,
    AvgPool2D,
    GlobalAveragePool,
    Flatten,
    ReLU,
    Sigmoid,
    Tanh,
    Softmax,
    BatchNorm,
)
from .model import Sequential
from .profile import LayerProfile, ModelProfile, profile_model
from .quantize import QuantizedTensor, quantize_tensor, dequantize_tensor, quantize_model_weights
from .zoo import (
    keyword_spotting_cnn,
    ecg_arrhythmia_cnn,
    mobilenet_tiny,
    imu_har_mlp,
    MODEL_ZOO,
    build_model,
)
from .train import (
    SGDTrainer,
    TrainingHistory,
    accuracy,
    cross_entropy_loss,
    make_imu_har_dataset,
    train_imu_har_classifier,
)

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "DepthwiseConv2D",
    "MaxPool2D",
    "AvgPool2D",
    "GlobalAveragePool",
    "Flatten",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "BatchNorm",
    "Sequential",
    "LayerProfile",
    "ModelProfile",
    "profile_model",
    "QuantizedTensor",
    "quantize_tensor",
    "dequantize_tensor",
    "quantize_model_weights",
    "keyword_spotting_cnn",
    "ecg_arrhythmia_cnn",
    "mobilenet_tiny",
    "imu_har_mlp",
    "MODEL_ZOO",
    "build_model",
    "SGDTrainer",
    "TrainingHistory",
    "accuracy",
    "cross_entropy_loss",
    "make_imu_har_dataset",
    "train_imu_har_classifier",
]
