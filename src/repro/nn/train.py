"""Minibatch SGD training for small dense classifiers.

The paper's workloads arrive as *trained* models on the hub; for the
reproduction the energy/latency analysis only needs architectures and
tensor shapes (random weights suffice).  Training support exists so the
examples can demonstrate a complete loop — synthetic sensor data in,
learned classifier out, partitioned deployment — and so accuracy can be
reported alongside energy when int8 quantisation or feature-extraction
choices are ablated.

The trainer covers the layer types used by the dense model-zoo members
(``Dense``, ``ReLU``, ``Tanh``, ``Sigmoid``, ``Flatten``, ``BatchNorm``
and a terminal ``Softmax``) with categorical cross-entropy loss and
SGD + momentum.  Convolutional models are intentionally out of scope —
training them in pure numpy would be slow and adds nothing to the
reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError, GraphError
from .layers import BatchNorm, Dense, Flatten, ReLU, Sigmoid, Softmax, Tanh
from .model import Sequential

_SUPPORTED_HIDDEN = (Dense, ReLU, Tanh, Sigmoid, Flatten, BatchNorm)


@dataclass
class TrainingHistory:
    """Loss and accuracy per epoch."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch."""
        if not self.losses:
            raise ConfigurationError("no epochs recorded")
        return self.losses[-1]

    @property
    def final_accuracy(self) -> float:
        """Training accuracy of the last epoch."""
        if not self.accuracies:
            raise ConfigurationError("no epochs recorded")
        return self.accuracies[-1]


class SGDTrainer:
    """Minibatch SGD + momentum trainer for dense classifiers.

    Parameters
    ----------
    model:
        A :class:`Sequential` whose hidden layers are all in the supported
        set and whose final layer is :class:`Softmax`.
    learning_rate / momentum / weight_decay:
        Standard SGD hyperparameters.
    """

    def __init__(self, model: Sequential, learning_rate: float = 0.05,
                 momentum: float = 0.9, weight_decay: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ConfigurationError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ConfigurationError("weight decay must be non-negative")
        self._validate_model(model)
        self.model = model
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, dict[str, np.ndarray]] = {}

    @staticmethod
    def _validate_model(model: Sequential) -> None:
        if not model.layers:
            raise GraphError("cannot train an empty model")
        if not isinstance(model.layers[-1], Softmax):
            raise GraphError("the trainer requires a terminal Softmax layer")
        for layer in model.layers[:-1]:
            if not isinstance(layer, _SUPPORTED_HIDDEN):
                raise GraphError(
                    f"layer {layer.name!r} ({type(layer).__name__}) is not "
                    "supported by the dense trainer"
                )

    # -- forward / backward ------------------------------------------------------
    def _forward_with_cache(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        cache = [x]
        activation = x
        for layer in self.model.layers:
            activation = layer.forward(activation)
            cache.append(activation)
        return activation, cache

    def _backward(self, cache: list[np.ndarray], labels: np.ndarray,
                  ) -> dict[int, dict[str, np.ndarray]]:
        batch = labels.shape[0]
        probabilities = cache[-1]
        one_hot = np.zeros_like(probabilities)
        one_hot[np.arange(batch), labels] = 1.0
        # Combined Softmax + cross-entropy gradient w.r.t. the logits.
        gradient = (probabilities - one_hot) / batch

        gradients: dict[int, dict[str, np.ndarray]] = {}
        # Skip the Softmax layer itself (its gradient is folded in above).
        for index in range(len(self.model.layers) - 2, -1, -1):
            layer = self.model.layers[index]
            layer_input = cache[index]
            layer_output = cache[index + 1]
            if isinstance(layer, Dense):
                gradients[index] = {
                    "weight": layer_input.T @ gradient
                    + self.weight_decay * layer.weight,
                    "bias": gradient.sum(axis=0),
                }
                gradient = gradient @ layer.weight.T
            elif isinstance(layer, ReLU):
                gradient = gradient * (layer_input > 0.0)
            elif isinstance(layer, Tanh):
                gradient = gradient * (1.0 - layer_output ** 2)
            elif isinstance(layer, Sigmoid):
                gradient = gradient * layer_output * (1.0 - layer_output)
            elif isinstance(layer, Flatten):
                gradient = gradient.reshape(layer_input.shape)
            elif isinstance(layer, BatchNorm):
                scale = layer.gamma / np.sqrt(layer.moving_var + layer.epsilon)
                normalised = (layer_input - layer.moving_mean) * (
                    1.0 / np.sqrt(layer.moving_var + layer.epsilon)
                )
                axes = tuple(range(gradient.ndim - 1))
                gradients[index] = {
                    "gamma": (gradient * normalised).sum(axis=axes),
                    "beta": gradient.sum(axis=axes),
                }
                gradient = gradient * scale
            else:  # pragma: no cover - _validate_model prevents this
                raise GraphError(f"unsupported layer in backward pass: {layer!r}")
        return gradients

    def _apply(self, gradients: dict[int, dict[str, np.ndarray]]) -> None:
        for index, grads in gradients.items():
            layer = self.model.layers[index]
            state = self._velocity.setdefault(index, {})
            for name, grad in grads.items():
                parameter = getattr(layer, name if name not in ("weight", "bias")
                                    else name)
                velocity = state.get(name)
                if velocity is None:
                    velocity = np.zeros_like(parameter)
                velocity = self.momentum * velocity - self.learning_rate * grad
                state[name] = velocity
                setattr(layer, name, parameter + velocity)

    # -- public API --------------------------------------------------------------
    def train_step(self, x: np.ndarray, labels: np.ndarray) -> float:
        """One SGD step on a minibatch; returns the batch loss."""
        x = np.asarray(x, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if x.shape[0] != labels.shape[0]:
            raise ConfigurationError("inputs and labels must have the same length")
        probabilities, cache = self._forward_with_cache(x)
        loss = cross_entropy_loss(probabilities, labels)
        self._apply(self._backward(cache, labels))
        return loss

    def fit(self, x: np.ndarray, labels: np.ndarray, epochs: int = 20,
            batch_size: int = 32,
            rng: np.random.Generator | int | None = 0) -> TrainingHistory:
        """Train for *epochs* passes over the dataset."""
        x = np.asarray(x, dtype=float)
        labels = np.asarray(labels, dtype=int)
        if epochs <= 0:
            raise ConfigurationError("epochs must be positive")
        if batch_size <= 0:
            raise ConfigurationError("batch size must be positive")
        if x.shape[0] != labels.shape[0] or x.shape[0] == 0:
            raise ConfigurationError("dataset must be non-empty and consistent")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)

        history = TrainingHistory()
        n_samples = x.shape[0]
        for _ in range(epochs):
            order = rng.permutation(n_samples)
            epoch_loss = 0.0
            for start in range(0, n_samples, batch_size):
                batch_index = order[start:start + batch_size]
                epoch_loss += self.train_step(x[batch_index], labels[batch_index]) \
                    * len(batch_index)
            history.losses.append(epoch_loss / n_samples)
            history.accuracies.append(accuracy(self.model, x, labels))
        return history


def cross_entropy_loss(probabilities: np.ndarray, labels: np.ndarray) -> float:
    """Mean categorical cross-entropy of softmax outputs."""
    probabilities = np.asarray(probabilities, dtype=float)
    labels = np.asarray(labels, dtype=int)
    if probabilities.ndim != 2:
        raise ConfigurationError("probabilities must be (batch, classes)")
    if labels.shape[0] != probabilities.shape[0]:
        raise ConfigurationError("labels and probabilities must align")
    picked = probabilities[np.arange(labels.shape[0]), labels]
    return float(-np.mean(np.log(np.clip(picked, 1e-12, 1.0))))


def accuracy(model: Sequential, x: np.ndarray, labels: np.ndarray) -> float:
    """Classification accuracy of *model* on a labelled dataset."""
    labels = np.asarray(labels, dtype=int)
    predictions = model.predict_classes(np.asarray(x, dtype=float))
    if predictions.shape[0] != labels.shape[0]:
        raise ConfigurationError("dataset and predictions must align")
    return float(np.mean(predictions == labels))


def make_imu_har_dataset(windows_per_class: int = 20,
                         window_seconds: float = 2.0,
                         rng: np.random.Generator | int | None = 0,
                         ) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Build a labelled HAR dataset of IMU window features.

    Combines :class:`repro.sensors.imu.IMUGenerator` and
    :func:`repro.isa.features.imu_window_features` into the feature matrix
    the ``imu_har`` zoo model consumes (36 features per window).
    """
    from ..isa.features import imu_window_features
    from ..sensors.imu import IMUGenerator

    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    generator = IMUGenerator()
    windows, labels, class_names = generator.generate_labelled_windows(
        window_seconds, windows_per_class, rng=rng,
    )
    features = np.stack([imu_window_features(window) for window in windows])
    # Per-feature standardisation keeps SGD well-conditioned.
    mean = features.mean(axis=0)
    std = features.std(axis=0)
    std[std == 0.0] = 1.0
    features = (features - mean) / std
    return features, labels, class_names


def train_imu_har_classifier(windows_per_class: int = 20, epochs: int = 30,
                             seed: int = 0) -> tuple[Sequential, TrainingHistory]:
    """Train the ``imu_har`` zoo model on synthetic IMU data.

    Returns the trained model and its training history; used by the
    activity-recognition example and the quantisation-accuracy tests.
    """
    from .zoo import imu_har_mlp

    features, labels, class_names = make_imu_har_dataset(
        windows_per_class=windows_per_class, rng=seed,
    )
    model = imu_har_mlp(n_features=features.shape[1],
                        n_classes=len(class_names), seed=seed)
    trainer = SGDTrainer(model, learning_rate=0.05, momentum=0.9)
    history = trainer.fit(features, labels, epochs=epochs, batch_size=16, rng=seed)
    return model, history
