"""Sequential model container."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import GraphError, ShapeError
from .layers import Layer, Shape


class Sequential:
    """An ordered chain of layers with a fixed per-sample input shape.

    The input shape is declared up front so that shapes, parameter counts
    and MAC counts for every layer can be computed without running data
    through the model — that static profile is what the partitioner uses.
    """

    def __init__(self, input_shape: Shape, layers: Sequence[Layer] | None = None,
                 name: str = "model") -> None:
        input_shape = tuple(int(dim) for dim in input_shape)
        if not input_shape or any(dim <= 0 for dim in input_shape):
            raise ShapeError(f"input shape must be positive, got {input_shape}")
        self.input_shape = input_shape
        self.name = name
        self.layers: list[Layer] = []
        if layers:
            for layer in layers:
                self.add(layer)

    def add(self, layer: Layer) -> "Sequential":
        """Append a layer, validating shape compatibility immediately."""
        if not isinstance(layer, Layer):
            raise GraphError(f"expected a Layer, got {type(layer).__name__}")
        # Raises ShapeError if the layer cannot accept the current output shape.
        layer.output_shape(self.output_shape())
        self.layers.append(layer)
        return self

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterable[Layer]:
        return iter(self.layers)

    def layer_shapes(self) -> list[Shape]:
        """Per-sample output shape after each layer (index 0 = input shape)."""
        shapes = [self.input_shape]
        for layer in self.layers:
            shapes.append(layer.output_shape(shapes[-1]))
        return shapes

    def output_shape(self, upto_layer: int | None = None) -> Shape:
        """Per-sample output shape after ``upto_layer`` layers (default: all)."""
        shapes = self.layer_shapes()
        if upto_layer is None:
            return shapes[-1]
        if not 0 <= upto_layer <= len(self.layers):
            raise GraphError(
                f"layer index {upto_layer} out of range for {len(self.layers)} layers"
            )
        return shapes[upto_layer]

    def num_params(self) -> int:
        """Total trainable parameters."""
        return sum(layer.num_params() for layer in self.layers)

    def total_macs(self) -> int:
        """Total multiply-accumulates per inference."""
        shapes = self.layer_shapes()
        return sum(
            layer.macs(shapes[index]) for index, layer in enumerate(self.layers)
        )

    def forward(self, x: np.ndarray, start: int = 0, stop: int | None = None) -> np.ndarray:
        """Run layers ``start`` (inclusive) to ``stop`` (exclusive).

        The default runs the whole model.  Partitioned execution uses the
        same method: the leaf runs ``forward(x, 0, split)`` and the hub runs
        ``forward(intermediate, split, None)``.
        """
        x = np.asarray(x, dtype=float)
        if stop is None:
            stop = len(self.layers)
        if not 0 <= start <= stop <= len(self.layers):
            raise GraphError(
                f"invalid layer range [{start}, {stop}) for {len(self.layers)} layers"
            )
        if start == 0:
            expected = self.input_shape
            if x.shape[1:] != expected:
                raise ShapeError(
                    f"{self.name}: expected input of per-sample shape {expected}, "
                    f"got {x.shape[1:]}"
                )
        for layer in self.layers[start:stop]:
            x = layer.forward(x)
        return x

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def predict_classes(self, x: np.ndarray) -> np.ndarray:
        """Class index with the highest output score for each sample."""
        output = self.forward(x)
        if output.ndim != 2:
            raise ShapeError("predict_classes requires a 2-D (batch, classes) output")
        return np.argmax(output, axis=1)

    def summary_lines(self) -> list[str]:
        """Human-readable per-layer summary (name, output shape, params, MACs)."""
        lines = [f"model: {self.name}  input {self.input_shape}"]
        shapes = self.layer_shapes()
        for index, layer in enumerate(self.layers):
            lines.append(
                f"  [{index:2d}] {layer.name:<22s} out={shapes[index + 1]!s:<18s} "
                f"params={layer.num_params():>8d} macs={layer.macs(shapes[index]):>10d}"
            )
        lines.append(
            f"  total params={self.num_params()} macs={self.total_macs()}"
        )
        return lines
