"""Int8 quantisation for in-sensor deployment.

ULP leaf nodes cannot afford floating-point inference; the in-sensor
analytics path runs integer arithmetic.  This module provides symmetric
per-tensor int8 quantisation for weights and activations plus a helper
that quantises every weight tensor in a :class:`~repro.nn.model.Sequential`
model in place (storing quantisation metadata on the layers) so that the
accuracy impact of int8 deployment can be measured by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .layers import BatchNorm, Conv2D, Dense, DepthwiseConv2D
from .model import Sequential


@dataclass(frozen=True)
class QuantizedTensor:
    """A symmetric int8 quantised tensor with its scale."""

    codes: np.ndarray
    scale: float
    bits: int = 8

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ConfigurationError("scale must be positive")
        if not 1 <= self.bits <= 16:
            raise ConfigurationError("bits must be in 1..16")

    @property
    def size_bits(self) -> float:
        """Serialised size of the tensor in bits."""
        return float(self.codes.size * self.bits)


def quantize_tensor(values: np.ndarray, bits: int = 8) -> QuantizedTensor:
    """Symmetric per-tensor quantisation of *values* to signed *bits*."""
    values = np.asarray(values, dtype=float)
    if not 1 <= bits <= 16:
        raise ConfigurationError("bits must be in 1..16")
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    q_max = (1 << (bits - 1)) - 1
    scale = max_abs / q_max if max_abs > 0 else 1.0
    codes = np.clip(np.round(values / scale), -q_max - 1, q_max).astype(np.int32)
    return QuantizedTensor(codes=codes, scale=scale, bits=bits)


def dequantize_tensor(quantized: QuantizedTensor) -> np.ndarray:
    """Reconstruct float values from a quantised tensor."""
    return quantized.codes.astype(float) * quantized.scale


def quantization_error(values: np.ndarray, bits: int = 8) -> float:
    """RMS error introduced by quantising *values* to *bits*."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return 0.0
    reconstructed = dequantize_tensor(quantize_tensor(values, bits=bits))
    return float(np.sqrt(np.mean((values - reconstructed) ** 2)))


def quantize_model_weights(model: Sequential, bits: int = 8) -> dict[str, float]:
    """Quantise-and-dequantise every weight tensor in *model* in place.

    This emulates int8 deployment: the stored float weights are replaced
    by their quantised reconstruction so subsequent forward passes reflect
    quantisation error.  Returns the per-layer RMS weight error keyed by
    layer name (useful for reporting accuracy/energy trade-offs).
    """
    if not 1 <= bits <= 16:
        raise ConfigurationError("bits must be in 1..16")
    errors: dict[str, float] = {}
    for layer in model.layers:
        if isinstance(layer, (Dense, Conv2D, DepthwiseConv2D)):
            original = layer.weight.copy()
            layer.weight = dequantize_tensor(quantize_tensor(layer.weight, bits=bits))
            errors[layer.name] = float(
                np.sqrt(np.mean((original - layer.weight) ** 2))
            )
        elif isinstance(layer, BatchNorm):
            for attr in ("gamma", "beta"):
                original = getattr(layer, attr)
                setattr(layer, attr,
                        dequantize_tensor(quantize_tensor(original, bits=bits)))
            errors[layer.name] = 0.0
    return errors
