"""Model zoo: the wearable-AI workloads the paper's device classes imply.

Each builder returns an untrained (randomly initialised) but fully
executable :class:`~repro.nn.model.Sequential` model whose architecture
and input geometry match a realistic wearable workload:

* :func:`keyword_spotting_cnn` — audio pins / pocket assistants: a small
  CNN over log-mel spectrogram patches (Google Speech-Commands scale).
* :func:`ecg_arrhythmia_cnn` — biopotential patches: a 1-D-style CNN over
  one ECG beat window (implemented as Hx1 images).
* :func:`mobilenet_tiny` — camera glasses / AI pins with cameras: a
  depthwise-separable CNN over QVGA-downscaled frames.
* :func:`imu_har_mlp` — smart rings / fitness trackers: an MLP over IMU
  window features for human activity recognition.

Architectural fidelity (layer mix, tensor shapes, MAC counts) is what the
partitioning experiments need; trained weights are not, because energy and
latency do not depend on the weight values.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import ConfigurationError
from .layers import (
    BatchNorm,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAveragePool,
    MaxPool2D,
    ReLU,
    Softmax,
)
from .model import Sequential


def keyword_spotting_cnn(n_mels: int = 40, n_frames: int = 49,
                         n_classes: int = 12,
                         seed: int = 0) -> Sequential:
    """Small keyword-spotting CNN over a (frames, mels, 1) spectrogram."""
    if min(n_mels, n_frames, n_classes) <= 0:
        raise ConfigurationError("model dimensions must be positive")
    rng = np.random.default_rng(seed)
    model = Sequential(input_shape=(n_frames, n_mels, 1), name="keyword_spotting_cnn")
    model.add(Conv2D(1, 16, kernel_size=3, stride=1, padding="same", rng=rng,
                     name="conv1"))
    model.add(BatchNorm(16, name="bn1"))
    model.add(ReLU(name="relu1"))
    model.add(MaxPool2D(pool_size=2, name="pool1"))
    model.add(Conv2D(16, 32, kernel_size=3, stride=1, padding="same", rng=rng,
                     name="conv2"))
    model.add(BatchNorm(32, name="bn2"))
    model.add(ReLU(name="relu2"))
    model.add(MaxPool2D(pool_size=2, name="pool2"))
    model.add(Conv2D(32, 64, kernel_size=3, stride=1, padding="same", rng=rng,
                     name="conv3"))
    model.add(ReLU(name="relu3"))
    model.add(GlobalAveragePool(name="gap"))
    model.add(Dense(64, 64, rng=rng, name="fc1"))
    model.add(ReLU(name="relu4"))
    model.add(Dense(64, n_classes, rng=rng, name="fc2"))
    model.add(Softmax(name="softmax"))
    return model


def ecg_arrhythmia_cnn(window_samples: int = 256, n_classes: int = 5,
                       seed: int = 0) -> Sequential:
    """1-D CNN for beat-level arrhythmia classification.

    The single-lead beat window is represented as a ``(window, 1, 1)``
    image so the same Conv2D machinery applies (kernel height acts as the
    1-D kernel length).
    """
    if window_samples < 32 or n_classes <= 0:
        raise ConfigurationError("window must be >= 32 samples and classes positive")
    rng = np.random.default_rng(seed)
    model = Sequential(input_shape=(window_samples, 1, 1), name="ecg_arrhythmia_cnn")
    model.add(Conv2D(1, 8, kernel_size=5, stride=1, padding="same", rng=rng,
                     name="conv1"))
    model.add(ReLU(name="relu1"))
    model.add(MaxPool2D(pool_size=(2, 1), name="pool1"))
    model.add(Conv2D(8, 16, kernel_size=5, stride=1, padding="same", rng=rng,
                     name="conv2"))
    model.add(ReLU(name="relu2"))
    model.add(MaxPool2D(pool_size=(2, 1), name="pool2"))
    model.add(Conv2D(16, 32, kernel_size=3, stride=1, padding="same", rng=rng,
                     name="conv3"))
    model.add(ReLU(name="relu3"))
    model.add(GlobalAveragePool(name="gap"))
    model.add(Dense(32, 32, rng=rng, name="fc1"))
    model.add(ReLU(name="relu4"))
    model.add(Dense(32, n_classes, rng=rng, name="fc2"))
    model.add(Softmax(name="softmax"))
    return model


def _separable_block(model: Sequential, in_channels: int, out_channels: int,
                     stride: int, rng: np.random.Generator, index: int) -> None:
    model.add(DepthwiseConv2D(in_channels, kernel_size=3, stride=stride,
                              padding="same", rng=rng, name=f"dwconv{index}"))
    model.add(BatchNorm(in_channels, name=f"bn_dw{index}"))
    model.add(ReLU(name=f"relu_dw{index}"))
    model.add(Conv2D(in_channels, out_channels, kernel_size=1, stride=1,
                     padding="same", rng=rng, name=f"pwconv{index}"))
    model.add(BatchNorm(out_channels, name=f"bn_pw{index}"))
    model.add(ReLU(name=f"relu_pw{index}"))


def mobilenet_tiny(input_size: int = 96, n_classes: int = 10,
                   width_multiplier: float = 0.5,
                   seed: int = 0) -> Sequential:
    """MobileNet-style depthwise-separable CNN for on-body vision.

    Sized like the "visual wake words" models used on embedded cameras:
    96x96 greyscale input, 0.5 width multiplier, ~7 separable blocks
    (about 15 M MACs per frame — the heaviest workload in the zoo, as a
    camera node's model should be).
    """
    if input_size < 32 or n_classes <= 0:
        raise ConfigurationError("input must be >= 32 px and classes positive")
    if not 0.0 < width_multiplier <= 1.0:
        raise ConfigurationError("width multiplier must be in (0, 1]")
    rng = np.random.default_rng(seed)

    def width(channels: int) -> int:
        return max(int(round(channels * width_multiplier)), 4)

    model = Sequential(input_shape=(input_size, input_size, 1), name="mobilenet_tiny")
    model.add(Conv2D(1, width(32), kernel_size=3, stride=2, padding="same", rng=rng,
                     name="conv_stem"))
    model.add(BatchNorm(width(32), name="bn_stem"))
    model.add(ReLU(name="relu_stem"))
    channel_plan = [
        (width(32), width(64), 1),
        (width(64), width(128), 2),
        (width(128), width(128), 1),
        (width(128), width(256), 2),
        (width(256), width(256), 1),
        (width(256), width(512), 2),
        (width(512), width(512), 1),
    ]
    for index, (c_in, c_out, stride) in enumerate(channel_plan, start=1):
        _separable_block(model, c_in, c_out, stride, rng, index)
    model.add(GlobalAveragePool(name="gap"))
    model.add(Dense(channel_plan[-1][1], n_classes, rng=rng, name="classifier"))
    model.add(Softmax(name="softmax"))
    return model


def imu_har_mlp(n_features: int = 36, n_classes: int = 5, hidden: int = 64,
                seed: int = 0) -> Sequential:
    """MLP over IMU window features for human activity recognition."""
    if min(n_features, n_classes, hidden) <= 0:
        raise ConfigurationError("model dimensions must be positive")
    rng = np.random.default_rng(seed)
    model = Sequential(input_shape=(n_features,), name="imu_har_mlp")
    model.add(Dense(n_features, hidden, rng=rng, name="fc1"))
    model.add(ReLU(name="relu1"))
    model.add(Dense(hidden, hidden, rng=rng, name="fc2"))
    model.add(ReLU(name="relu2"))
    model.add(Dense(hidden, n_classes, rng=rng, name="fc3"))
    model.add(Softmax(name="softmax"))
    return model


#: Registry mapping workload names to model builders.
MODEL_ZOO: dict[str, Callable[..., Sequential]] = {
    "keyword_spotting": keyword_spotting_cnn,
    "ecg_arrhythmia": ecg_arrhythmia_cnn,
    "vision_tiny": mobilenet_tiny,
    "imu_har": imu_har_mlp,
}


def build_model(name: str, **kwargs: object) -> Sequential:
    """Construct a zoo model by name."""
    try:
        builder = MODEL_ZOO[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown model {name!r}; available: {sorted(MODEL_ZOO)}"
        ) from exc
    return builder(**kwargs)
