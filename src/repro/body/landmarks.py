"""Named body landmarks where IoB nodes can be placed."""

from __future__ import annotations

import enum


class BodyLandmark(enum.Enum):
    """Surface locations used for wearable placement.

    The set covers every placement the paper mentions: ears (audio
    output), wrists and fingers (controllers, rings, watches), face and
    chest (first-person cameras, AI pins), chest (ECG), limbs (EMG, IMU),
    head (EEG, headsets), waist/pocket (phones, pocket assistants).
    """

    HEAD_CROWN = "head_crown"
    FOREHEAD = "forehead"
    LEFT_EAR = "left_ear"
    RIGHT_EAR = "right_ear"
    LEFT_EYE = "left_eye"
    RIGHT_EYE = "right_eye"
    NECK = "neck"
    CHEST = "chest"
    STERNUM = "sternum"
    WAIST = "waist"
    LEFT_POCKET = "left_pocket"
    RIGHT_POCKET = "right_pocket"
    LEFT_SHOULDER = "left_shoulder"
    RIGHT_SHOULDER = "right_shoulder"
    LEFT_UPPER_ARM = "left_upper_arm"
    RIGHT_UPPER_ARM = "right_upper_arm"
    LEFT_ELBOW = "left_elbow"
    RIGHT_ELBOW = "right_elbow"
    LEFT_FOREARM = "left_forearm"
    RIGHT_FOREARM = "right_forearm"
    LEFT_WRIST = "left_wrist"
    RIGHT_WRIST = "right_wrist"
    LEFT_HAND = "left_hand"
    RIGHT_HAND = "right_hand"
    LEFT_INDEX_FINGER = "left_index_finger"
    RIGHT_INDEX_FINGER = "right_index_finger"
    LEFT_THIGH = "left_thigh"
    RIGHT_THIGH = "right_thigh"
    LEFT_KNEE = "left_knee"
    RIGHT_KNEE = "right_knee"
    LEFT_SHANK = "left_shank"
    RIGHT_SHANK = "right_shank"
    LEFT_ANKLE = "left_ankle"
    RIGHT_ANKLE = "right_ankle"
    LEFT_FOOT = "left_foot"
    RIGHT_FOOT = "right_foot"


#: Human-readable description and typical wearable for each landmark.
LANDMARK_DESCRIPTIONS: dict[BodyLandmark, str] = {
    BodyLandmark.HEAD_CROWN: "top of head (EEG headband, headphones)",
    BodyLandmark.FOREHEAD: "forehead (EEG, mixed-reality headset)",
    BodyLandmark.LEFT_EAR: "left ear (earbud, hearing aid)",
    BodyLandmark.RIGHT_EAR: "right ear (earbud, hearing aid)",
    BodyLandmark.LEFT_EYE: "left eye (smart glasses temple)",
    BodyLandmark.RIGHT_EYE: "right eye (smart glasses temple)",
    BodyLandmark.NECK: "neck (AI necklace / pendant)",
    BodyLandmark.CHEST: "chest (AI pin, first-person camera)",
    BodyLandmark.STERNUM: "sternum (ECG patch)",
    BodyLandmark.WAIST: "waist (belt-worn hub)",
    BodyLandmark.LEFT_POCKET: "left pocket (smartphone, pocket assistant)",
    BodyLandmark.RIGHT_POCKET: "right pocket (smartphone, pocket assistant)",
    BodyLandmark.LEFT_SHOULDER: "left shoulder (EMG)",
    BodyLandmark.RIGHT_SHOULDER: "right shoulder (EMG)",
    BodyLandmark.LEFT_UPPER_ARM: "left upper arm (EMG, blood pressure cuff)",
    BodyLandmark.RIGHT_UPPER_ARM: "right upper arm (EMG, blood pressure cuff)",
    BodyLandmark.LEFT_ELBOW: "left elbow (IMU)",
    BodyLandmark.RIGHT_ELBOW: "right elbow (IMU)",
    BodyLandmark.LEFT_FOREARM: "left forearm (EMG sleeve)",
    BodyLandmark.RIGHT_FOREARM: "right forearm (EMG sleeve)",
    BodyLandmark.LEFT_WRIST: "left wrist (smartwatch, fitness tracker)",
    BodyLandmark.RIGHT_WRIST: "right wrist (smartwatch, fitness tracker)",
    BodyLandmark.LEFT_HAND: "left hand (controller)",
    BodyLandmark.RIGHT_HAND: "right hand (controller)",
    BodyLandmark.LEFT_INDEX_FINGER: "left index finger (smart ring)",
    BodyLandmark.RIGHT_INDEX_FINGER: "right index finger (smart ring)",
    BodyLandmark.LEFT_THIGH: "left thigh (IMU, pocket)",
    BodyLandmark.RIGHT_THIGH: "right thigh (IMU, pocket)",
    BodyLandmark.LEFT_KNEE: "left knee (IMU, rehabilitation sensor)",
    BodyLandmark.RIGHT_KNEE: "right knee (IMU, rehabilitation sensor)",
    BodyLandmark.LEFT_SHANK: "left shank (IMU)",
    BodyLandmark.RIGHT_SHANK: "right shank (IMU)",
    BodyLandmark.LEFT_ANKLE: "left ankle (gait sensor)",
    BodyLandmark.RIGHT_ANKLE: "right ankle (gait sensor)",
    BodyLandmark.LEFT_FOOT: "left foot (insole pressure sensor)",
    BodyLandmark.RIGHT_FOOT: "right foot (insole pressure sensor)",
}
