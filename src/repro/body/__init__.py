"""Human body model: landmarks, on-body distances, node placement.

The paper argues that IoB sensors and actuators "must be strategically
distributed across the body" (sound near the ear, controllers at the
wrist, cameras on the face or chest, ECG near the chest, EMG/IMU on the
limbs) and that body channel lengths are 1--2 m while RF radiates 5--10 m.
This package provides a graph model of the body surface so experiments can
compute realistic on-body channel lengths between any two placements.
"""

from .landmarks import BodyLandmark, LANDMARK_DESCRIPTIONS
from .model import BodyModel, Placement, default_adult_body
from .posture import (
    Posture,
    channel_for_posture,
    gain_variation_db,
    worst_case_posture,
)

__all__ = [
    "BodyLandmark",
    "LANDMARK_DESCRIPTIONS",
    "BodyModel",
    "Placement",
    "default_adult_body",
    "Posture",
    "channel_for_posture",
    "gain_variation_db",
    "worst_case_posture",
]
