"""Posture-dependent variation of the EQS body channel.

Capacitive EQS-HBC returns its signal through the parasitic capacitance
between the body and earth ground, so the channel gain shifts with posture
and footwear: a standing subject on thin soles couples strongly to ground
(larger ``c_body_ground``, *lower* gain), while a subject lying on an
insulating mattress or standing on thick soles couples weakly (higher
gain).  The effect is a few dB — enough to matter for worst-case link
budgets, not enough to break them — and this module makes it explicit so
the designer can check margins across postures rather than at a single
nominal operating point.
"""

from __future__ import annotations

import enum
from dataclasses import replace

from ..errors import ConfigurationError
from ..comm.channel import EQSChannelModel


class Posture(enum.Enum):
    """Whole-body postures with distinct ground-coupling behaviour."""

    STANDING_BAREFOOT = "standing_barefoot"
    STANDING_SHOES = "standing_shoes"
    SITTING_OFFICE_CHAIR = "sitting_office_chair"
    LYING_ON_BED = "lying_on_bed"
    WALKING = "walking"


#: Multiplier applied to the nominal body-to-earth-ground capacitance for
#: each posture.  Standing barefoot on a conductive floor maximises the
#: return-path capacitance; lying on an insulating mattress minimises it.
GROUND_COUPLING_FACTOR: dict[Posture, float] = {
    Posture.STANDING_BAREFOOT: 1.5,
    Posture.STANDING_SHOES: 1.0,
    Posture.SITTING_OFFICE_CHAIR: 1.2,
    Posture.LYING_ON_BED: 0.6,
    Posture.WALKING: 0.9,
}


def channel_for_posture(posture: Posture,
                        base: EQSChannelModel | None = None) -> EQSChannelModel:
    """Return an :class:`EQSChannelModel` adjusted for *posture*.

    Only the body-to-ground capacitance changes; electrode and load
    capacitances belong to the devices, not the posture.
    """
    if posture not in GROUND_COUPLING_FACTOR:
        raise ConfigurationError(f"unknown posture: {posture!r}")
    base = base or EQSChannelModel()
    factor = GROUND_COUPLING_FACTOR[posture]
    return replace(base, c_body_ground=base.c_body_ground * factor)


def gain_variation_db(distance_metres: float = 1.5,
                      frequency_hz: float = 20e6,
                      base: EQSChannelModel | None = None) -> float:
    """Spread of channel gain across all postures at one operating point."""
    if distance_metres < 0:
        raise ConfigurationError("distance must be non-negative")
    gains = [
        channel_for_posture(posture, base).channel_gain_db(distance_metres,
                                                           frequency_hz)
        for posture in Posture
    ]
    return max(gains) - min(gains)


def worst_case_posture(distance_metres: float = 1.5,
                       frequency_hz: float = 20e6,
                       base: EQSChannelModel | None = None) -> Posture:
    """The posture with the lowest channel gain (for link-budget margining)."""
    if distance_metres < 0:
        raise ConfigurationError("distance must be non-negative")
    return min(
        Posture,
        key=lambda posture: channel_for_posture(posture, base).channel_gain_db(
            distance_metres, frequency_hz
        ),
    )
