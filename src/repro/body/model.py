"""Body graph model: on-body distances and node placement.

The body is modelled as an undirected graph whose nodes are
:class:`~repro.body.landmarks.BodyLandmark` values and whose edges are
anatomical segments with lengths in metres (scaled from a configurable
body height).  The shortest path between two landmarks along the body
surface is the *channel length* that the EQS-HBC and RF channel models
consume.  The paper's claim that body channels are 1--2 m long while RF
radiates 5--10 m is checked against this model in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..errors import PlacementError
from .landmarks import BodyLandmark

#: Anatomical segments (landmark pairs) with lengths expressed as a
#: fraction of body height.  Derived from standard anthropometric segment
#: ratios (Drillis & Contini); absolute accuracy is not needed, only that
#: wrist-to-pocket style paths land in the 0.5--2 m range for an adult.
_SEGMENT_FRACTIONS: list[tuple[BodyLandmark, BodyLandmark, float]] = [
    (BodyLandmark.HEAD_CROWN, BodyLandmark.FOREHEAD, 0.06),
    (BodyLandmark.FOREHEAD, BodyLandmark.LEFT_EYE, 0.03),
    (BodyLandmark.FOREHEAD, BodyLandmark.RIGHT_EYE, 0.03),
    (BodyLandmark.LEFT_EYE, BodyLandmark.LEFT_EAR, 0.05),
    (BodyLandmark.RIGHT_EYE, BodyLandmark.RIGHT_EAR, 0.05),
    (BodyLandmark.LEFT_EAR, BodyLandmark.NECK, 0.09),
    (BodyLandmark.RIGHT_EAR, BodyLandmark.NECK, 0.09),
    (BodyLandmark.FOREHEAD, BodyLandmark.NECK, 0.11),
    (BodyLandmark.NECK, BodyLandmark.CHEST, 0.09),
    (BodyLandmark.CHEST, BodyLandmark.STERNUM, 0.03),
    (BodyLandmark.CHEST, BodyLandmark.WAIST, 0.17),
    (BodyLandmark.NECK, BodyLandmark.LEFT_SHOULDER, 0.10),
    (BodyLandmark.NECK, BodyLandmark.RIGHT_SHOULDER, 0.10),
    (BodyLandmark.LEFT_SHOULDER, BodyLandmark.LEFT_UPPER_ARM, 0.09),
    (BodyLandmark.RIGHT_SHOULDER, BodyLandmark.RIGHT_UPPER_ARM, 0.09),
    (BodyLandmark.LEFT_UPPER_ARM, BodyLandmark.LEFT_ELBOW, 0.09),
    (BodyLandmark.RIGHT_UPPER_ARM, BodyLandmark.RIGHT_ELBOW, 0.09),
    (BodyLandmark.LEFT_ELBOW, BodyLandmark.LEFT_FOREARM, 0.07),
    (BodyLandmark.RIGHT_ELBOW, BodyLandmark.RIGHT_FOREARM, 0.07),
    (BodyLandmark.LEFT_FOREARM, BodyLandmark.LEFT_WRIST, 0.07),
    (BodyLandmark.RIGHT_FOREARM, BodyLandmark.RIGHT_WRIST, 0.07),
    (BodyLandmark.LEFT_WRIST, BodyLandmark.LEFT_HAND, 0.05),
    (BodyLandmark.RIGHT_WRIST, BodyLandmark.RIGHT_HAND, 0.05),
    (BodyLandmark.LEFT_HAND, BodyLandmark.LEFT_INDEX_FINGER, 0.05),
    (BodyLandmark.RIGHT_HAND, BodyLandmark.RIGHT_INDEX_FINGER, 0.05),
    (BodyLandmark.WAIST, BodyLandmark.LEFT_POCKET, 0.07),
    (BodyLandmark.WAIST, BodyLandmark.RIGHT_POCKET, 0.07),
    (BodyLandmark.WAIST, BodyLandmark.LEFT_THIGH, 0.12),
    (BodyLandmark.WAIST, BodyLandmark.RIGHT_THIGH, 0.12),
    (BodyLandmark.LEFT_POCKET, BodyLandmark.LEFT_THIGH, 0.06),
    (BodyLandmark.RIGHT_POCKET, BodyLandmark.RIGHT_THIGH, 0.06),
    (BodyLandmark.LEFT_THIGH, BodyLandmark.LEFT_KNEE, 0.12),
    (BodyLandmark.RIGHT_THIGH, BodyLandmark.RIGHT_KNEE, 0.12),
    (BodyLandmark.LEFT_KNEE, BodyLandmark.LEFT_SHANK, 0.12),
    (BodyLandmark.RIGHT_KNEE, BodyLandmark.RIGHT_SHANK, 0.12),
    (BodyLandmark.LEFT_SHANK, BodyLandmark.LEFT_ANKLE, 0.12),
    (BodyLandmark.RIGHT_SHANK, BodyLandmark.RIGHT_ANKLE, 0.12),
    (BodyLandmark.LEFT_ANKLE, BodyLandmark.LEFT_FOOT, 0.04),
    (BodyLandmark.RIGHT_ANKLE, BodyLandmark.RIGHT_FOOT, 0.04),
]


@dataclass(frozen=True)
class Placement:
    """A named device placed at a body landmark."""

    device_name: str
    landmark: BodyLandmark


@dataclass
class BodyModel:
    """Graph model of the body surface.

    Parameters
    ----------
    height_metres:
        Standing height of the subject; all segment lengths scale with it.
    """

    height_metres: float = 1.75
    _graph: nx.Graph = field(init=False, repr=False)
    _placements: dict[str, Placement] = field(init=False, default_factory=dict,
                                              repr=False)

    def __post_init__(self) -> None:
        if self.height_metres <= 0:
            raise PlacementError(
                f"body height must be positive, got {self.height_metres}"
            )
        graph = nx.Graph()
        for left, right, fraction in _SEGMENT_FRACTIONS:
            graph.add_edge(left, right, length=fraction * self.height_metres)
        self._graph = graph

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph (landmarks as nodes)."""
        return self._graph

    def landmarks(self) -> list[BodyLandmark]:
        """All landmarks known to this body model."""
        return list(self._graph.nodes)

    def segment_length(self, a: BodyLandmark, b: BodyLandmark) -> float:
        """Length of the direct anatomical segment between *a* and *b*."""
        if not self._graph.has_edge(a, b):
            raise PlacementError(f"no direct segment between {a} and {b}")
        return self._graph.edges[a, b]["length"]

    def channel_length(self, a: BodyLandmark, b: BodyLandmark) -> float:
        """Shortest on-body path length between two landmarks in metres."""
        self._require_landmark(a)
        self._require_landmark(b)
        if a == b:
            return 0.0
        return nx.shortest_path_length(self._graph, a, b, weight="length")

    def channel_path(self, a: BodyLandmark, b: BodyLandmark) -> list[BodyLandmark]:
        """Sequence of landmarks along the shortest on-body path."""
        self._require_landmark(a)
        self._require_landmark(b)
        return nx.shortest_path(self._graph, a, b, weight="length")

    def place(self, device_name: str, landmark: BodyLandmark) -> Placement:
        """Register a device at a landmark (replacing any previous placement)."""
        self._require_landmark(landmark)
        placement = Placement(device_name=device_name, landmark=landmark)
        self._placements[device_name] = placement
        return placement

    def placement(self, device_name: str) -> Placement:
        """Look up where a device was placed."""
        try:
            return self._placements[device_name]
        except KeyError as exc:
            raise PlacementError(f"device {device_name!r} has not been placed") from exc

    def placements(self) -> list[Placement]:
        """All registered placements in insertion order."""
        return list(self._placements.values())

    def device_distance(self, device_a: str, device_b: str) -> float:
        """On-body channel length between two placed devices."""
        a = self.placement(device_a).landmark
        b = self.placement(device_b).landmark
        return self.channel_length(a, b)

    def max_channel_length(self) -> float:
        """Longest on-body path (e.g. finger to opposite foot).

        The paper quotes typical IoB channel lengths of 1--2 m; this is
        the upper end for an adult body.
        """
        lengths = dict(nx.all_pairs_dijkstra_path_length(self._graph, weight="length"))
        return max(max(row.values()) for row in lengths.values())

    def _require_landmark(self, landmark: BodyLandmark) -> None:
        if landmark not in self._graph:
            raise PlacementError(f"unknown landmark: {landmark!r}")


def default_adult_body() -> BodyModel:
    """A 1.75 m adult body model (the default subject in experiments)."""
    return BodyModel(height_metres=1.75)
