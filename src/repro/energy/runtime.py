"""Closed-loop node energy state: battery + harvester + ledger.

The closed-form experiments (Fig. 3, perpetual operation) project
lifetime from average power; :class:`NodeEnergyState` closes that loop
inside the discrete-event simulator.  It composes a stateful
:class:`~repro.energy.battery.Battery` (built from a
:class:`~repro.energy.battery.BatterySpec`), an optional
:class:`~repro.energy.harvester.EnergyHarvester` and the node's
:class:`~repro.energy.ledger.EnergyLedger`, and exposes exactly two
mutations:

* :meth:`drain` — an impulse drain (one packet transmission): post the
  energy to the ledger and remove it from the battery.
* :meth:`advance` — an interval drain (sensing/ISA/sleep power over a
  tick): post each load component, then net the total load, the cell's
  self-discharge and the harvested power against the battery.

Both detect *brownout*: the instant the battery empties, the state
records ``death_seconds`` (interpolated within the interval, so coarse
ticks still resolve the death time accurately) and freezes — a dead node
consumes nothing and posts nothing.  Nodes without a battery never die
(mains/hub-powered); nodes with a harvester whose income meets the load
recharge instead of draining ("perpetually operable" in the paper's
terms).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import EnergyError
from .battery import Battery, BatterySpec
from .harvester import EnergyHarvester, HarvestingEnvironment
from .ledger import EnergyLedger


@dataclass
class NodeEnergyState:
    """Streaming energy state of one simulated node.

    Parameters
    ----------
    battery:
        The node's cell, or ``None`` for an unconstrained (mains or
        hub-powered) node that can never brown out.
    harvester:
        Optional energy harvester crediting the battery continuously.
    environment:
        Harvesting environment the harvester operates in.
    ledger:
        Where consumption is posted.  The ledger records *demand served*:
        a node that browns out mid-interval only posts the sustained
        fraction.  Harvested energy is not posted (it is income, not
        consumption); it is tracked in :attr:`harvested_joules`.
    low_battery_fraction:
        State-of-charge fraction below which the owner should adapt its
        duty cycle (``None`` disables the signal).  The state only
        reports the crossing via :meth:`is_low_battery`; policy reactions
        live in the simulator.
    include_self_discharge:
        Whether the cell's self-discharge leaks from the battery as a
        constant extra drain (matches the closed-form projections).
    """

    battery: Battery | None = None
    harvester: EnergyHarvester | None = None
    environment: HarvestingEnvironment = HarvestingEnvironment.INDOOR_OFFICE
    ledger: EnergyLedger = field(default_factory=EnergyLedger)
    low_battery_fraction: float | None = None
    include_self_discharge: bool = True
    harvested_joules: float = 0.0
    death_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.low_battery_fraction is not None and not (
                0.0 < self.low_battery_fraction < 1.0):
            raise EnergyError(
                "low-battery fraction must be in (0, 1), got "
                f"{self.low_battery_fraction}")

    @classmethod
    def from_spec(cls, battery: BatterySpec | None = None,
                  harvester: EnergyHarvester | None = None,
                  environment: HarvestingEnvironment =
                  HarvestingEnvironment.INDOOR_OFFICE,
                  initial_charge_fraction: float = 1.0,
                  ledger: EnergyLedger | None = None,
                  low_battery_fraction: float | None = None,
                  ) -> "NodeEnergyState":
        """Build a state from an immutable battery spec."""
        if not 0.0 < initial_charge_fraction <= 1.0:
            raise EnergyError(
                "initial charge fraction must be in (0, 1], got "
                f"{initial_charge_fraction}")
        cell = None
        if battery is not None:
            cell = Battery(
                spec=battery,
                state_of_charge_joules=(battery.usable_energy_joules
                                        * initial_charge_fraction),
            )
        return cls(battery=cell, harvester=harvester,
                   environment=environment,
                   ledger=ledger if ledger is not None else EnergyLedger(),
                   low_battery_fraction=low_battery_fraction)

    # -- derived views -----------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the node still has energy to operate."""
        return self.death_seconds is None

    @property
    def state_of_charge_fraction(self) -> float:
        """Battery state of charge (1.0 for unconstrained nodes)."""
        if self.battery is None:
            return 1.0
        return self.battery.state_of_charge_fraction

    @property
    def harvest_power_watts(self) -> float:
        """Average harvested power in the configured environment."""
        if self.harvester is None:
            return 0.0
        return self.harvester.power_watts(self.environment)

    @property
    def leakage_power_watts(self) -> float:
        """Self-discharge drain (0 when disabled or batteryless)."""
        if self.battery is None or not self.include_self_discharge:
            return 0.0
        return self.battery.spec.leakage_power_watts

    def is_low_battery(self) -> bool:
        """Whether the charge has crossed the low-battery threshold."""
        if self.low_battery_fraction is None or self.battery is None:
            return False
        return self.state_of_charge_fraction < self.low_battery_fraction

    def projected_life_seconds(self, load_power_watts: float) -> float:
        """Runtime from the current charge under a constant load.

        Self-discharge is folded in via the battery's own projection
        (matching :func:`repro.energy.battery.battery_life_seconds`);
        when disabled the harvested power is credited with the leakage
        so the two cancel.
        """
        if self.battery is None:
            return math.inf
        harvest = self.harvest_power_watts
        if not self.include_self_discharge:
            harvest += self.battery.spec.leakage_power_watts
        return self.battery.projected_life_seconds(
            load_power_watts, harvested_power_watts=harvest)

    # -- mutations ---------------------------------------------------------

    def drain(self, component: str, energy_joules: float,
              timestamp_seconds: float, note: str = "") -> float:
        """Impulse drain (e.g. one packet's TX energy).

        Posts to the ledger and removes the energy from the battery,
        clipping at empty; an empty cell marks the node dead at
        *timestamp_seconds*.  Returns the energy actually delivered.
        Dead nodes deliver nothing and post nothing.
        """
        if not self.alive:
            return 0.0
        if self.battery is None:
            self.ledger.post(component, energy_joules,
                             timestamp_seconds=timestamp_seconds, note=note)
            return energy_joules
        delivered = self.battery.drain(energy_joules, clip=True)
        if delivered > 0.0:
            self.ledger.post(component, delivered,
                             timestamp_seconds=timestamp_seconds, note=note)
        if self.battery.is_empty:
            self.death_seconds = timestamp_seconds
        return delivered

    def advance(self, loads_watts: Mapping[str, float],
                duration_seconds: float, end_timestamp_seconds: float) -> float:
        """Interval drain: serve *loads_watts* for *duration_seconds*.

        The interval ends at *end_timestamp_seconds*.  The total load
        plus self-discharge is netted against the harvested power; a
        surplus recharges the battery (clipped at full), a deficit
        drains it.  If the cell empties part-way the death time is
        interpolated inside the interval and only the sustained
        fraction of each load is posted.  Returns the sustained
        duration.
        """
        if duration_seconds < 0:
            raise EnergyError(
                f"duration must be non-negative: {duration_seconds}")
        if not self.alive or duration_seconds == 0.0:
            return 0.0
        load = 0.0
        for watts in loads_watts.values():
            if watts < 0:
                raise EnergyError("load powers must be non-negative")
            load += watts
        harvest = self.harvest_power_watts
        sustained = duration_seconds
        if self.battery is not None:
            sustained = self.battery.run(
                load + self.leakage_power_watts, duration_seconds,
                harvested_power_watts=harvest)
        self.harvested_joules += harvest * sustained
        start = end_timestamp_seconds - duration_seconds
        for component, watts in loads_watts.items():
            self.ledger.post_power(component, watts, sustained,
                                   timestamp_seconds=start + sustained)
        if self.battery is not None and self.battery.is_empty:
            self.death_seconds = start + sustained
        return sustained
