"""Energy-harvesting models for perpetual IoB nodes.

Section V of the paper states that "with current energy harvesting
modalities, 10--200 uW power harvesting is possible in indoor conditions"
and uses that to argue that sub-100 uW nodes become perpetually operable.
This module models the common wearable harvesting modalities (indoor and
outdoor photovoltaic, body thermoelectric, kinetic, ambient RF) with
simple area/temperature/motion scaling laws so experiments can sweep the
harvesting environment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable

from ..errors import ConfigurationError
from .. import units


class HarvestingEnvironment(enum.Enum):
    """Coarse environment classes that scale harvester output."""

    INDOOR_DIM = "indoor_dim"          # ~100 lux office corridor
    INDOOR_OFFICE = "indoor_office"    # ~500 lux desk
    INDOOR_BRIGHT = "indoor_bright"    # ~1000 lux near window
    OUTDOOR_OVERCAST = "outdoor_overcast"
    OUTDOOR_SUN = "outdoor_sun"


#: Illuminance (lux) per environment, used by the photovoltaic model.
ILLUMINANCE_LUX = {
    HarvestingEnvironment.INDOOR_DIM: 100.0,
    HarvestingEnvironment.INDOOR_OFFICE: 500.0,
    HarvestingEnvironment.INDOOR_BRIGHT: 1000.0,
    HarvestingEnvironment.OUTDOOR_OVERCAST: 10_000.0,
    HarvestingEnvironment.OUTDOOR_SUN: 100_000.0,
}

#: Approximate irradiance conversion for white LED / daylight spectra.
WATT_PER_M2_PER_LUX = 1.0 / 120.0


@dataclass(frozen=True)
class HarvesterSpec:
    """Description of a single harvester attached to a node.

    ``power_watts(environment)`` is computed by the owning
    :class:`EnergyHarvester`; the spec just stores sizing parameters.
    """

    name: str
    kind: str
    area_cm2: float = 0.0
    efficiency: float = 0.0
    delta_t_kelvin: float = 0.0
    seebeck_w_per_cm2_per_k: float = 0.0
    motion_intensity: float = 0.0
    peak_power_watts: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("area_cm2", "efficiency", "delta_t_kelvin",
                     "seebeck_w_per_cm2_per_k", "motion_intensity",
                     "peak_power_watts"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")
        if self.efficiency > 1.0:
            raise ConfigurationError("efficiency must be <= 1")


class EnergyHarvester:
    """Computes average harvested power for a :class:`HarvesterSpec`.

    The scaling laws are deliberately simple — the paper only needs the
    10--200 uW indoor range to be reachable with centimetre-scale
    harvesters — but they respond to the physically meaningful knobs
    (area, illuminance, temperature gradient, motion intensity).
    """

    def __init__(self, spec: HarvesterSpec) -> None:
        self.spec = spec

    def power_watts(
        self,
        environment: HarvestingEnvironment = HarvestingEnvironment.INDOOR_OFFICE,
    ) -> float:
        """Average harvested power in the given environment."""
        kind = self.spec.kind
        if kind == "photovoltaic":
            return self._photovoltaic_power(environment)
        if kind == "thermoelectric":
            return self._thermoelectric_power()
        if kind == "kinetic":
            return self._kinetic_power()
        if kind == "rf":
            return self._rf_power(environment)
        raise ConfigurationError(f"unknown harvester kind: {kind!r}")

    def _photovoltaic_power(self, environment: HarvestingEnvironment) -> float:
        irradiance = ILLUMINANCE_LUX[environment] * WATT_PER_M2_PER_LUX
        area_m2 = self.spec.area_cm2 * 1e-4
        return irradiance * area_m2 * self.spec.efficiency

    def _thermoelectric_power(self) -> float:
        return (
            self.spec.seebeck_w_per_cm2_per_k
            * self.spec.area_cm2
            * self.spec.delta_t_kelvin
        )

    def _kinetic_power(self) -> float:
        return self.spec.peak_power_watts * min(self.spec.motion_intensity, 1.0)

    def _rf_power(self, environment: HarvestingEnvironment) -> float:
        indoor = environment in (
            HarvestingEnvironment.INDOOR_DIM,
            HarvestingEnvironment.INDOOR_OFFICE,
            HarvestingEnvironment.INDOOR_BRIGHT,
        )
        scale = 1.0 if indoor else 0.2
        return self.spec.peak_power_watts * scale


def indoor_photovoltaic(area_cm2: float = 3.0,
                        efficiency: float = 0.10) -> EnergyHarvester:
    """Small indoor PV cell; ~125 uW at 500 lux for 3 cm^2 at 10 %.

    Amorphous-silicon indoor cells convert LED/fluorescent light at
    roughly 10 % effective efficiency, which keeps centimetre-scale cells
    inside the paper's 10--200 uW indoor harvesting range.
    """
    return EnergyHarvester(HarvesterSpec(
        name="indoor photovoltaic",
        kind="photovoltaic",
        area_cm2=area_cm2,
        efficiency=efficiency,
    ))


def outdoor_photovoltaic(area_cm2: float = 3.0,
                         efficiency: float = 0.18) -> EnergyHarvester:
    """Same cell rated for outdoor use; milliwatts in sunlight."""
    return EnergyHarvester(HarvesterSpec(
        name="outdoor photovoltaic",
        kind="photovoltaic",
        area_cm2=area_cm2,
        efficiency=efficiency,
    ))


def thermoelectric_body(area_cm2: float = 6.0,
                        delta_t_kelvin: float = 2.0) -> EnergyHarvester:
    """Body-worn TEG; ~10 uW/cm^2/K-class devices give 10s of uW on skin."""
    return EnergyHarvester(HarvesterSpec(
        name="body thermoelectric",
        kind="thermoelectric",
        area_cm2=area_cm2,
        delta_t_kelvin=delta_t_kelvin,
        seebeck_w_per_cm2_per_k=5e-6,
    ))


def kinetic_wrist(motion_intensity: float = 0.3) -> EnergyHarvester:
    """Wrist-worn kinetic harvester; ~100 uW peak, scaled by activity."""
    return EnergyHarvester(HarvesterSpec(
        name="kinetic wrist",
        kind="kinetic",
        motion_intensity=motion_intensity,
        peak_power_watts=units.microwatt(100.0),
    ))


def rf_ambient(peak_power_watts: float = units.microwatt(5.0)) -> EnergyHarvester:
    """Ambient RF harvesting; single-digit uW indoors."""
    return EnergyHarvester(HarvesterSpec(
        name="ambient RF",
        kind="rf",
        peak_power_watts=peak_power_watts,
    ))


def total_harvested_power(
    harvesters: Iterable[EnergyHarvester],
    environment: HarvestingEnvironment = HarvestingEnvironment.INDOOR_OFFICE,
) -> float:
    """Sum the average power of several co-located harvesters."""
    return sum(h.power_watts(environment) for h in harvesters)
