"""Energy substrate: batteries, harvesters, converters, energy accounting.

This package models the energy sources and sinks the paper's battery-life
projections rely on: coin-cell and Li-Po batteries (Fig. 3 assumes a
1000 mAh cell), indoor energy harvesting (10--200 uW), DC-DC conversion
losses, and a ledger that integrates per-component power draw over time.
The :mod:`~repro.energy.runtime` module closes the loop for the
discrete-event simulator: :class:`NodeEnergyState` composes a battery,
an optional harvester and the node's ledger into a streaming
state-of-charge with brownout (node death) and low-battery signalling.
"""

from .battery import (
    Battery,
    BatteryChemistry,
    BatterySpec,
    coin_cell_cr2032,
    coin_cell_high_capacity,
    lipo_smartwatch,
    lipo_smartphone,
    lipo_headset,
    battery_life_seconds,
)
from .harvester import (
    EnergyHarvester,
    HarvesterSpec,
    HarvestingEnvironment,
    indoor_photovoltaic,
    outdoor_photovoltaic,
    thermoelectric_body,
    kinetic_wrist,
    rf_ambient,
    total_harvested_power,
)
from .converter import DCDCConverter, ldo_regulator, buck_converter
from .ledger import EnergyLedger, LedgerEntry
from .runtime import NodeEnergyState

__all__ = [
    "Battery",
    "BatteryChemistry",
    "BatterySpec",
    "coin_cell_cr2032",
    "coin_cell_high_capacity",
    "lipo_smartwatch",
    "lipo_smartphone",
    "lipo_headset",
    "battery_life_seconds",
    "EnergyHarvester",
    "HarvesterSpec",
    "HarvestingEnvironment",
    "indoor_photovoltaic",
    "outdoor_photovoltaic",
    "thermoelectric_body",
    "kinetic_wrist",
    "rf_ambient",
    "total_harvested_power",
    "DCDCConverter",
    "ldo_regulator",
    "buck_converter",
    "EnergyLedger",
    "LedgerEntry",
    "NodeEnergyState",
]
