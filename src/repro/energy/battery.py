"""Battery models for wearable IoB nodes.

The paper's Fig. 3 projects battery life assuming a 1000 mAh high-capacity
coin cell.  Fig. 2 surveys commercial devices whose battery capacities span
from ~20 mAh (smart rings) to several thousand mAh (smartphones and
mixed-reality headsets).  This module provides:

* :class:`BatterySpec` — immutable description of a cell (capacity,
  voltage, usable fraction, self-discharge).
* :class:`Battery` — a stateful cell that can be drained/charged and
  reports remaining runtime for a given load.
* :func:`battery_life_seconds` — the closed-form projection used by the
  Fig. 3 reproduction (capacity / load power, with derating and
  self-discharge folded in).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError, EnergyError
from .. import units


class BatteryChemistry(enum.Enum):
    """Battery chemistries commonly found in wearables."""

    LITHIUM_COIN = "lithium_coin"
    LITHIUM_POLYMER = "lithium_polymer"
    SILVER_OXIDE = "silver_oxide"
    ZINC_AIR = "zinc_air"


#: Typical nominal terminal voltage per chemistry (volts).
NOMINAL_VOLTAGE = {
    BatteryChemistry.LITHIUM_COIN: 3.0,
    BatteryChemistry.LITHIUM_POLYMER: 3.7,
    BatteryChemistry.SILVER_OXIDE: 1.55,
    BatteryChemistry.ZINC_AIR: 1.4,
}

#: Typical self-discharge per year as a fraction of capacity.
SELF_DISCHARGE_PER_YEAR = {
    BatteryChemistry.LITHIUM_COIN: 0.01,
    BatteryChemistry.LITHIUM_POLYMER: 0.05,
    BatteryChemistry.SILVER_OXIDE: 0.10,
    BatteryChemistry.ZINC_AIR: 0.08,
}


@dataclass(frozen=True)
class BatterySpec:
    """Immutable description of a battery cell.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"CR2032"``).
    capacity_mah:
        Rated capacity in milliamp-hours.
    chemistry:
        One of :class:`BatteryChemistry`.
    voltage:
        Nominal terminal voltage.  Defaults to the chemistry's typical value.
    usable_fraction:
        Fraction of the rated capacity actually deliverable to the load
        before the cell voltage collapses (derating).  1.0 means ideal.
    self_discharge_per_year:
        Fraction of capacity lost per year to leakage.  Defaults to the
        chemistry's typical value.
    """

    name: str
    capacity_mah: float
    chemistry: BatteryChemistry = BatteryChemistry.LITHIUM_COIN
    voltage: float | None = None
    usable_fraction: float = 1.0
    self_discharge_per_year: float | None = None

    def __post_init__(self) -> None:
        if self.capacity_mah < 0:
            raise ConfigurationError(
                f"battery capacity must be non-negative, got {self.capacity_mah}"
            )
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ConfigurationError(
                f"usable_fraction must be in (0, 1], got {self.usable_fraction}"
            )
        if self.voltage is not None and self.voltage <= 0:
            raise ConfigurationError(f"voltage must be positive, got {self.voltage}")
        if self.self_discharge_per_year is not None and not (
            0.0 <= self.self_discharge_per_year < 1.0
        ):
            raise ConfigurationError(
                "self_discharge_per_year must be in [0, 1), got "
                f"{self.self_discharge_per_year}"
            )

    @property
    def nominal_voltage(self) -> float:
        """Terminal voltage, falling back to the chemistry's typical value."""
        if self.voltage is not None:
            return self.voltage
        return NOMINAL_VOLTAGE[self.chemistry]

    @property
    def leakage_fraction_per_year(self) -> float:
        """Self-discharge per year, falling back to the chemistry default."""
        if self.self_discharge_per_year is not None:
            return self.self_discharge_per_year
        return SELF_DISCHARGE_PER_YEAR[self.chemistry]

    @property
    def energy_joules(self) -> float:
        """Total rated energy content in joules."""
        return units.mAh(self.capacity_mah, volts=self.nominal_voltage)

    @property
    def usable_energy_joules(self) -> float:
        """Deliverable energy in joules after derating."""
        return self.energy_joules * self.usable_fraction

    @property
    def leakage_power_watts(self) -> float:
        """Equivalent constant leakage power due to self-discharge."""
        return (
            self.energy_joules
            * self.leakage_fraction_per_year
            / units.SECONDS_PER_YEAR
        )


def coin_cell_cr2032() -> BatterySpec:
    """Standard CR2032 lithium coin cell (225 mAh, 3 V)."""
    return BatterySpec(name="CR2032", capacity_mah=225.0)


def coin_cell_high_capacity() -> BatterySpec:
    """High-capacity coin cell assumed by the paper's Fig. 3 (1000 mAh)."""
    return BatterySpec(name="high-capacity coin cell", capacity_mah=1000.0)


def lipo_smartwatch() -> BatterySpec:
    """Typical smartwatch Li-Po pack (~300 mAh, 3.7 V)."""
    return BatterySpec(
        name="smartwatch Li-Po",
        capacity_mah=300.0,
        chemistry=BatteryChemistry.LITHIUM_POLYMER,
    )


def lipo_smartphone() -> BatterySpec:
    """Typical smartphone Li-Po pack (~4000 mAh, 3.85 V)."""
    return BatterySpec(
        name="smartphone Li-Po",
        capacity_mah=4000.0,
        chemistry=BatteryChemistry.LITHIUM_POLYMER,
        voltage=3.85,
    )


def lipo_headset() -> BatterySpec:
    """Typical mixed-reality headset pack (~3500 mAh, 3.85 V)."""
    return BatterySpec(
        name="MR headset Li-Po",
        capacity_mah=3500.0,
        chemistry=BatteryChemistry.LITHIUM_POLYMER,
        voltage=3.85,
    )


def battery_life_seconds(
    spec: BatterySpec,
    load_power_watts: float,
    harvested_power_watts: float = 0.0,
    include_self_discharge: bool = True,
) -> float:
    """Project how long *spec* sustains a constant *load_power_watts*.

    This is the closed-form projection underpinning the paper's Fig. 3:
    battery life equals usable energy divided by net drain.  Harvested
    power offsets the load; if harvesting meets or exceeds the total drain
    the projected life is infinite (``math.inf``), which the paper labels
    "perpetually operable" when it exceeds one year.

    Parameters
    ----------
    spec:
        The battery to project.
    load_power_watts:
        Constant average load (sensing + computation + communication).
    harvested_power_watts:
        Average harvested power available to offset the load.
    include_self_discharge:
        Whether to add the cell's self-discharge as an extra drain.
    """
    if load_power_watts < 0:
        raise EnergyError(f"load power must be non-negative, got {load_power_watts}")
    if harvested_power_watts < 0:
        raise EnergyError(
            f"harvested power must be non-negative, got {harvested_power_watts}"
        )
    drain = load_power_watts
    if include_self_discharge:
        drain += spec.leakage_power_watts
    drain -= harvested_power_watts
    if drain <= 0.0:
        return math.inf
    return spec.usable_energy_joules / drain


@dataclass
class Battery:
    """A stateful battery that can be drained and recharged.

    The state of charge is tracked in joules.  Draining below empty raises
    :class:`repro.errors.EnergyError` unless ``clip=True`` is passed, in
    which case the cell empties and reports the unserved energy.
    """

    spec: BatterySpec
    state_of_charge_joules: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.state_of_charge_joules < 0:
            self.state_of_charge_joules = self.spec.usable_energy_joules
        if self.state_of_charge_joules > self.spec.usable_energy_joules:
            raise ConfigurationError(
                "initial state of charge exceeds usable capacity"
            )

    @property
    def state_of_charge_fraction(self) -> float:
        """Remaining charge as a fraction of usable capacity (0..1).

        Clamped to [0, 1] so float residue at either boundary (a charge
        landing one ulp above full, a drain one ulp below empty) never
        leaks out of the contract range.
        """
        usable = self.spec.usable_energy_joules
        if usable == 0.0:
            return 0.0
        return min(max(self.state_of_charge_joules / usable, 0.0), 1.0)

    @property
    def is_empty(self) -> bool:
        """Whether the cell has been fully drained.

        Robust to ±1 ulp of residue: a state of charge within one ulp of
        the usable capacity's zero counts as empty, so a sequence of
        drains that mathematically exhausts the cell cannot leave it
        "almost empty" forever on float dust.
        """
        return self.state_of_charge_joules <= math.ulp(
            self.spec.usable_energy_joules)

    def drain(self, energy_joules: float, clip: bool = False) -> float:
        """Remove *energy_joules* from the cell.

        Returns the energy actually delivered.  With ``clip=False`` (the
        default) attempting to over-drain raises :class:`EnergyError`; with
        ``clip=True`` the cell empties and the shortfall is simply not
        delivered.
        """
        if energy_joules < 0:
            raise EnergyError(f"cannot drain negative energy: {energy_joules}")
        if energy_joules <= self.state_of_charge_joules:
            self.state_of_charge_joules = max(
                self.state_of_charge_joules - energy_joules, 0.0)
            return energy_joules
        if not clip:
            raise EnergyError(
                f"drain of {energy_joules:.3e} J exceeds remaining charge "
                f"{self.state_of_charge_joules:.3e} J"
            )
        delivered = self.state_of_charge_joules
        self.state_of_charge_joules = 0.0
        return delivered

    def charge(self, energy_joules: float) -> float:
        """Add *energy_joules* to the cell, clipping at full capacity.

        Returns the energy actually stored.
        """
        if energy_joules < 0:
            raise EnergyError(f"cannot charge negative energy: {energy_joules}")
        headroom = max(
            self.spec.usable_energy_joules - self.state_of_charge_joules, 0.0)
        stored = min(energy_joules, headroom)
        # soc + (usable - soc) can land one ulp above usable; clamp so a
        # full cell is *exactly* full.
        self.state_of_charge_joules = min(
            self.state_of_charge_joules + stored,
            self.spec.usable_energy_joules)
        return stored

    def run(self, load_power_watts: float, duration_seconds: float,
            harvested_power_watts: float = 0.0) -> float:
        """Advance the cell by *duration_seconds* under a constant load.

        Harvested power first offsets the load; any surplus recharges the
        cell.  Returns the duration actually sustained (shorter than
        requested only if the cell empties part-way).
        """
        if duration_seconds < 0:
            raise EnergyError(f"duration must be non-negative: {duration_seconds}")
        if load_power_watts < 0 or harvested_power_watts < 0:
            raise EnergyError("powers must be non-negative")
        net = load_power_watts - harvested_power_watts
        if net <= 0.0:
            self.charge(-net * duration_seconds)
            return duration_seconds
        required = net * duration_seconds
        if required <= self.state_of_charge_joules:
            self.state_of_charge_joules = max(
                self.state_of_charge_joules - required, 0.0)
            return duration_seconds
        sustained = self.state_of_charge_joules / net
        self.state_of_charge_joules = 0.0
        return sustained

    def projected_life_seconds(self, load_power_watts: float,
                               harvested_power_watts: float = 0.0) -> float:
        """Projected runtime from the *current* state of charge."""
        net = load_power_watts - harvested_power_watts
        net += self.spec.leakage_power_watts
        if net <= 0.0:
            return math.inf
        return self.state_of_charge_joules / net
