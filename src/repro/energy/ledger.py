"""Per-component energy accounting.

An :class:`EnergyLedger` records how much energy each named component of a
node (sensor AFE, ISA block, radio, CPU, ...) has consumed.  The network
simulator and the architecture comparison both post entries here so that
the Fig. 1 power breakdown can be regenerated from simulated activity as
well as from closed-form budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import EnergyError


@dataclass(frozen=True)
class LedgerEntry:
    """One posted energy expenditure."""

    component: str
    energy_joules: float
    duration_seconds: float
    timestamp_seconds: float
    note: str = ""


@dataclass
class EnergyLedger:
    """Accumulates energy per component and exposes breakdown summaries."""

    entries: list[LedgerEntry] = field(default_factory=list)

    def post(self, component: str, energy_joules: float,
             duration_seconds: float = 0.0,
             timestamp_seconds: float = 0.0, note: str = "") -> LedgerEntry:
        """Record that *component* consumed *energy_joules*."""
        if energy_joules < 0:
            raise EnergyError(f"cannot post negative energy: {energy_joules}")
        if duration_seconds < 0:
            raise EnergyError(f"duration must be non-negative: {duration_seconds}")
        entry = LedgerEntry(
            component=component,
            energy_joules=energy_joules,
            duration_seconds=duration_seconds,
            timestamp_seconds=timestamp_seconds,
            note=note,
        )
        self.entries.append(entry)
        return entry

    def post_power(self, component: str, power_watts: float,
                   duration_seconds: float,
                   timestamp_seconds: float = 0.0, note: str = "") -> LedgerEntry:
        """Record a constant *power_watts* drawn for *duration_seconds*."""
        if power_watts < 0:
            raise EnergyError(f"power must be non-negative: {power_watts}")
        return self.post(
            component,
            energy_joules=power_watts * duration_seconds,
            duration_seconds=duration_seconds,
            timestamp_seconds=timestamp_seconds,
            note=note,
        )

    def total_energy(self, component: str | None = None) -> float:
        """Total posted energy, optionally restricted to one component."""
        if component is None:
            return sum(entry.energy_joules for entry in self.entries)
        return sum(
            entry.energy_joules
            for entry in self.entries
            if entry.component == component
        )

    def components(self) -> list[str]:
        """All component names seen so far, in first-posted order."""
        seen: list[str] = []
        for entry in self.entries:
            if entry.component not in seen:
                seen.append(entry.component)
        return seen

    def breakdown(self) -> dict[str, float]:
        """Energy per component as a dict (component -> joules)."""
        totals: dict[str, float] = {}
        for entry in self.entries:
            totals[entry.component] = totals.get(entry.component, 0.0) + entry.energy_joules
        return totals

    def average_power(self, horizon_seconds: float,
                      component: str | None = None) -> float:
        """Average power over *horizon_seconds* (total energy / horizon)."""
        if horizon_seconds <= 0:
            raise EnergyError("horizon must be positive")
        return self.total_energy(component) / horizon_seconds

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        """Return a new ledger containing entries from both ledgers."""
        merged = EnergyLedger()
        merged.entries.extend(self.entries)
        merged.entries.extend(other.entries)
        return merged

    def clear(self) -> None:
        """Drop all entries."""
        self.entries.clear()
