"""Per-component energy accounting.

An :class:`EnergyLedger` records how much energy each named component of a
node (sensor AFE, ISA block, radio, CPU, ...) has consumed.  The network
simulator and the architecture comparison both post entries here so that
the Fig. 1 power breakdown can be regenerated from simulated activity as
well as from closed-form budgets.

The ledger is dual-mode:

* **streaming** (the default) — only O(1) state is kept per component: a
  running total, a running grand total and a fixed-width time-bucketed
  power trace.  Posting is O(1) and memory stays flat however many
  entries a multi-hour simulation posts.
* **exact** (``keep_entries=True``) — every :class:`LedgerEntry` is also
  retained, which figure-regeneration and debugging workflows can replay.

Both modes maintain the same running totals with the same addition
order, so queries are bit-identical across modes, and exact-mode totals
are bit-identical to re-summing the entry list.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import EnergyError

#: Default width of one power-trace bucket (seconds).
DEFAULT_TRACE_BUCKET_SECONDS = 60.0

#: Default number of power-trace buckets.  Posts beyond the covered
#: window accumulate into the final bucket, so memory is fixed.
DEFAULT_TRACE_BUCKETS = 64


@dataclass(frozen=True)
class LedgerEntry:
    """One posted energy expenditure."""

    component: str
    energy_joules: float
    duration_seconds: float
    timestamp_seconds: float
    note: str = ""


class EnergyLedger:
    """Accumulates energy per component and exposes breakdown summaries.

    Parameters
    ----------
    keep_entries:
        Retain the full :class:`LedgerEntry` list (exact mode).  Off by
        default: the streaming mode keeps only running totals and the
        bucketed power trace, so memory does not grow with activity.
    trace_bucket_seconds:
        Width of one power-trace bucket.
    trace_buckets:
        Number of trace buckets.  Energy posted past the covered window
        lands in the last bucket.
    """

    def __init__(self, keep_entries: bool = False,
                 trace_bucket_seconds: float = DEFAULT_TRACE_BUCKET_SECONDS,
                 trace_buckets: int = DEFAULT_TRACE_BUCKETS) -> None:
        if trace_bucket_seconds <= 0:
            raise EnergyError("trace bucket width must be positive")
        if trace_buckets < 1:
            raise EnergyError("trace needs at least one bucket")
        self.trace_bucket_seconds = trace_bucket_seconds
        self.trace_buckets = trace_buckets
        self.entries: list[LedgerEntry] | None = [] if keep_entries else None
        self._totals: dict[str, float] = {}
        self._grand_total = 0.0
        self._posted_count = 0
        # Plain Python list, not an ndarray: the simulator kernel posts
        # per-packet energy millions of times per run, and a list index
        # add is several times cheaper than a numpy scalar update.  The
        # float arithmetic is identical (IEEE doubles either way).
        self._trace: list[float] = [0.0] * trace_buckets

    # -- recording ---------------------------------------------------------

    def post(self, component: str, energy_joules: float,
             duration_seconds: float = 0.0,
             timestamp_seconds: float = 0.0, note: str = "") -> LedgerEntry:
        """Record that *component* consumed *energy_joules*."""
        if energy_joules < 0:
            raise EnergyError(f"cannot post negative energy: {energy_joules}")
        if duration_seconds < 0:
            raise EnergyError(f"duration must be non-negative: {duration_seconds}")
        entry = LedgerEntry(
            component=component,
            energy_joules=energy_joules,
            duration_seconds=duration_seconds,
            timestamp_seconds=timestamp_seconds,
            note=note,
        )
        if self.entries is not None:
            self.entries.append(entry)
        self._totals[component] = (self._totals.get(component, 0.0)
                                   + energy_joules)
        self._grand_total += energy_joules
        self._posted_count += 1
        bucket = min(int(timestamp_seconds / self.trace_bucket_seconds),
                     self.trace_buckets - 1)
        self._trace[max(bucket, 0)] += energy_joules
        return entry

    def post_fast(self, component: str, energy_joules: float,
                  timestamp_seconds: float) -> None:
        """Streaming-mode :meth:`post` without the :class:`LedgerEntry`.

        The simulator kernel posts radio energy once or more per packet;
        constructing (and immediately discarding) a frozen dataclass per
        post dominated that path.  This keeps the exact same running
        totals and trace in the same addition order, but skips entry
        construction, validation (callers pass non-negative energy by
        construction) and the unused duration/note fields.  Falls back
        to :meth:`post` in exact mode so the entry list stays complete.
        """
        if self.entries is not None:
            self.post(component, energy_joules,
                      timestamp_seconds=timestamp_seconds)
            return
        self._totals[component] = (self._totals.get(component, 0.0)
                                   + energy_joules)
        self._grand_total += energy_joules
        self._posted_count += 1
        bucket = int(timestamp_seconds / self.trace_bucket_seconds)
        if bucket >= self.trace_buckets:
            bucket = self.trace_buckets - 1
        elif bucket < 0:
            bucket = 0
        self._trace[bucket] += energy_joules

    def post_power(self, component: str, power_watts: float,
                   duration_seconds: float,
                   timestamp_seconds: float = 0.0, note: str = "") -> LedgerEntry:
        """Record a constant *power_watts* drawn for *duration_seconds*."""
        if power_watts < 0:
            raise EnergyError(f"power must be non-negative: {power_watts}")
        return self.post(
            component,
            energy_joules=power_watts * duration_seconds,
            duration_seconds=duration_seconds,
            timestamp_seconds=timestamp_seconds,
            note=note,
        )

    def post_interval(self, component: str, energy_joules: float,
                      start_seconds: float, end_seconds: float,
                      note: str = "") -> None:
        """Record energy consumed uniformly over ``[start, end)``.

        The macro-tick fast path posts one entry per component per leap
        segment; the power trace must nevertheless read as if the energy
        had been posted packet-by-packet, so the amount is spread over
        the trace buckets in proportion to how much of the interval each
        bucket covers.  Bucket edges are half-open on the right: an
        interval ending exactly on an edge deposits nothing into the
        bucket that starts there.  Energy past the covered window
        accumulates into the final bucket (the same clamp point posts
        use), and a zero-length interval degenerates to a point post.
        """
        if energy_joules < 0:
            raise EnergyError(f"cannot post negative energy: {energy_joules}")
        if end_seconds < start_seconds:
            raise EnergyError(
                f"interval end {end_seconds} precedes start {start_seconds}")
        duration = end_seconds - start_seconds
        if self.entries is not None:
            self.entries.append(LedgerEntry(
                component=component,
                energy_joules=energy_joules,
                duration_seconds=duration,
                timestamp_seconds=start_seconds,
                note=note,
            ))
        self._totals[component] = (self._totals.get(component, 0.0)
                                   + energy_joules)
        self._grand_total += energy_joules
        self._posted_count += 1
        width = self.trace_bucket_seconds
        last = self.trace_buckets - 1
        if duration <= 0.0:
            bucket = min(int(start_seconds / width), last)
            self._trace[max(bucket, 0)] += energy_joules
            return
        trace = self._trace
        density = energy_joules / duration
        first = max(min(int(start_seconds / width), last), 0)
        cursor = start_seconds
        bucket = first
        while bucket < last:
            edge = (bucket + 1) * width
            if end_seconds <= edge:
                break
            trace[bucket] += density * (edge - cursor)
            cursor = edge
            bucket += 1
        # Remainder: everything from the cursor to the interval end.  An
        # end landing exactly on this bucket's right edge stays here —
        # the half-open convention — and anything beyond the trace
        # window has already been clamped into the final bucket.
        trace[bucket] += density * (end_seconds - cursor)

    # -- queries -----------------------------------------------------------

    @property
    def keeps_entries(self) -> bool:
        """Whether the ledger retains the exact entry list."""
        return self.entries is not None

    @property
    def posted_count(self) -> int:
        """How many entries have been posted (both modes)."""
        return self._posted_count

    @property
    def retained_entries(self) -> int:
        """Entries currently held in memory (0 in streaming mode)."""
        return len(self.entries) if self.entries is not None else 0

    def total_energy(self, component: str | None = None) -> float:
        """Total posted energy, optionally restricted to one component."""
        if component is None:
            return self._grand_total
        return self._totals.get(component, 0.0)

    def components(self) -> list[str]:
        """All component names seen so far, in first-posted order."""
        return list(self._totals)

    def breakdown(self) -> dict[str, float]:
        """Energy per component as a dict (component -> joules)."""
        return dict(self._totals)

    def average_power(self, horizon_seconds: float,
                      component: str | None = None) -> float:
        """Average power over *horizon_seconds* (total energy / horizon)."""
        if horizon_seconds <= 0:
            raise EnergyError("horizon must be positive")
        return self.total_energy(component) / horizon_seconds

    def power_trace_watts(self) -> np.ndarray:
        """Average power per trace bucket (watts; length ``trace_buckets``).

        The final bucket also absorbs everything posted past the covered
        window, so its value reads as a lower bound on time and an upper
        bound on power once a run outlives the trace.
        """
        return np.asarray(self._trace) / self.trace_bucket_seconds

    def trace_energy_joules(self) -> np.ndarray:
        """Raw per-bucket energy of the power trace (joules)."""
        return np.array(self._trace)

    # -- merging / lifecycle -----------------------------------------------

    def merge(self, other: "EnergyLedger") -> "EnergyLedger":
        """Return a new ledger combining both ledgers exactly.

        Per-component and grand totals add exactly (ordinary float sums
        in self-then-other order); component order is self's components
        followed by other's unseen ones; trace buckets add elementwise.
        The merged ledger keeps entries only when both sides do.  Merging
        requires identical trace configurations — cohort shards built
        from the same spec always satisfy this.
        """
        if (self.trace_bucket_seconds != other.trace_bucket_seconds
                or self.trace_buckets != other.trace_buckets):
            raise EnergyError(
                "cannot merge ledgers with different trace configurations")
        merged = EnergyLedger(
            keep_entries=self.keeps_entries and other.keeps_entries,
            trace_bucket_seconds=self.trace_bucket_seconds,
            trace_buckets=self.trace_buckets,
        )
        if merged.entries is not None:
            merged.entries.extend(self.entries)
            merged.entries.extend(other.entries)
        merged._totals = dict(self._totals)
        for component, energy in other._totals.items():
            merged._totals[component] = (merged._totals.get(component, 0.0)
                                         + energy)
        merged._grand_total = self._grand_total + other._grand_total
        merged._posted_count = self._posted_count + other._posted_count
        merged._trace = [mine + theirs for mine, theirs
                         in zip(self._trace, other._trace)]
        return merged

    def clear(self) -> None:
        """Drop all accumulated state (keeps the configured mode)."""
        if self.entries is not None:
            self.entries.clear()
        self._totals.clear()
        self._grand_total = 0.0
        self._posted_count = 0
        self._trace = [0.0] * self.trace_buckets
