"""Power-conversion models (DC-DC converters and LDOs).

Real IoB nodes never see the battery directly: an LDO or a switching
converter sits between the cell and the load, and its efficiency inflates
the battery drain.  The paper's first-order projections ignore this; we
model it so ablations can quantify how much it matters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DCDCConverter:
    """A simple two-regime converter efficiency model.

    Below ``light_load_threshold_watts`` the converter operates in a
    degraded light-load regime (quiescent current dominates); above it the
    nominal efficiency applies.
    """

    name: str
    efficiency: float
    light_load_efficiency: float
    light_load_threshold_watts: float
    quiescent_power_watts: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("efficiency", "light_load_efficiency"):
            value = getattr(self, attr)
            if not 0.0 < value <= 1.0:
                raise ConfigurationError(f"{attr} must be in (0, 1], got {value}")
        if self.light_load_threshold_watts < 0:
            raise ConfigurationError("light_load_threshold_watts must be >= 0")
        if self.quiescent_power_watts < 0:
            raise ConfigurationError("quiescent_power_watts must be >= 0")

    def input_power(self, load_power_watts: float) -> float:
        """Battery-side power required to deliver *load_power_watts*."""
        if load_power_watts < 0:
            raise ConfigurationError("load power must be non-negative")
        if load_power_watts == 0.0:
            return self.quiescent_power_watts
        if load_power_watts < self.light_load_threshold_watts:
            eta = self.light_load_efficiency
        else:
            eta = self.efficiency
        return load_power_watts / eta + self.quiescent_power_watts

    def loss(self, load_power_watts: float) -> float:
        """Power dissipated in the converter itself."""
        return self.input_power(load_power_watts) - load_power_watts


def ldo_regulator() -> DCDCConverter:
    """A low-dropout regulator typical of uW-class sensor nodes."""
    return DCDCConverter(
        name="LDO",
        efficiency=0.85,
        light_load_efficiency=0.80,
        light_load_threshold_watts=1e-5,
        quiescent_power_watts=5e-7,
    )


def buck_converter() -> DCDCConverter:
    """A buck converter typical of mW-class hub devices."""
    return DCDCConverter(
        name="buck",
        efficiency=0.92,
        light_load_efficiency=0.70,
        light_load_threshold_watts=1e-3,
        quiescent_power_watts=2e-6,
    )
