"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment drivers and a few utility reports so the figures
and tables can be regenerated without writing any Python:

.. code-block:: console

    repro list                              # available experiments
    repro run fig3                          # one experiment, table to stdout
    repro run all --parallel 4              # every experiment, 4 processes
    repro sweep network_scaling             # default parameter grid
    repro sweep scaling --grid seed=0,1,2,3 --parallel 4
    repro report artifacts                  # re-print saved JSON artifacts
    repro links                             # link-technology comparison
    repro survey                            # Fig. 2 device survey
    repro scenarios list                    # named body-network scenarios
    repro scenarios run sleep_night         # compile + simulate one scenario
    repro scenarios run all --scale 0.1     # whole gallery, 10% duration
    repro scenarios run harvester_patch --environment outdoor_sun
    repro scenarios run gym_floor           # multi-body shared-RF environment
    repro run lifetime                      # E15: DES brownout vs closed form
    repro cohort run --population 10000     # sampled population, streaming
    repro cohort summarize artifacts        # re-print cohort artifacts

Every ``run``/``sweep`` execution writes one schema-versioned JSON
artifact per task into ``--out`` (default ``artifacts/``); re-running an
unchanged configuration is served from that cache without recomputation.
All experiment lookups go through :mod:`repro.runner`, the single
registry shared with the examples, benchmarks and tests.
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
import time
from pathlib import Path
from typing import Sequence

from .analysis.reporting import format_table
from .analysis.survey import survey_rows
from .cohort.codec import SHARD_CODEC_VERSION
from .comm.link import compare_technologies
from .errors import ReproError
from .netsim.simulator import SimulationResult
from .runner import (
    DEFAULT_OUT_DIR,
    ExperimentSpec,
    SweepRunner,
    all_specs,
    resolve,
)
# Both ``repro run --grid`` and ``repro sweep --grid`` resolve their
# grids through the one helper in :mod:`repro.runner.sweep`; re-exported
# here because this is where CLI users historically imported it from.
from .runner.sweep import parse_grid
from .runner.artifacts import (
    digest_key,
    scan_artifacts_with_paths,
    source_fingerprint,
    write_artifact,
)
from .scenarios import (
    ENVIRONMENTS,
    all_environments,
    all_scenarios,
    environment_names,
    get_environment,
    get_scenario,
    scenario_names,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Human-Inspired Distributed Wearable AI (DAC 2024) "
                    "reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    specs = all_specs()
    run_names = sorted(spec.id for spec in specs)
    aliases = (sorted(spec.module for spec in specs if spec.module != spec.id)
               + [spec.eid for spec in specs]
               + [spec.eid.lower() for spec in specs])

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment",
                            choices=run_names + aliases + ["all"],
                            metavar="experiment",
                            help="experiment to run: one of "
                                 f"{', '.join(run_names)}, a module name, "
                                 "or 'all'")
    run_parser.add_argument("--grid", nargs="*", action="extend",
                            default=None, metavar="KEY=V1,V2,...",
                            help="run as a parameter sweep instead: grid "
                                 "axes, or no values for the experiment's "
                                 "default sweep grid")
    run_parser.add_argument("--base-seed", type=int, default=0,
                            help="deterministic per-task seed root for "
                                 "--grid runs (default 0)")
    _add_runner_options(run_parser)

    sweep_parser = subparsers.add_parser(
        "sweep", help="run a parameter grid for one experiment")
    sweep_parser.add_argument("experiment",
                              choices=run_names + aliases,
                              metavar="experiment",
                              help="experiment to sweep")
    sweep_parser.add_argument("--grid", nargs="+", action="extend",
                              default=[], metavar="KEY=V1,V2,...",
                              help="grid axes (repeatable); omit to use the "
                                   "experiment's default sweep grid")
    sweep_parser.add_argument("--base-seed", type=int, default=0,
                              help="root of the deterministic per-task "
                                   "seed derivation (default 0)")
    _add_runner_options(sweep_parser)

    report_parser = subparsers.add_parser(
        "report", help="re-print the tables stored in an artifact directory")
    report_parser.add_argument("artifact_dir", help="directory of JSON artifacts")
    report_parser.add_argument("--all", action="store_true", dest="include_stale",
                               help="also print artifacts written before the "
                                    "sources last changed (skipped by default)")

    subparsers.add_parser("links", help="print the link-technology comparison")
    subparsers.add_parser("survey", help="print the Fig. 2 device survey")

    scenarios_parser = subparsers.add_parser(
        "scenarios", help="list or run named body-network scenarios")
    scenarios_sub = scenarios_parser.add_subparsers(dest="scenarios_command")
    scenarios_sub.add_parser(
        "list", help="list the registered scenarios and multi-body "
                     "environments with their capability tags")
    scenario_run = scenarios_sub.add_parser(
        "run", help="compile and simulate one scenario, one multi-body "
                    "environment, or 'all' single-body scenarios")
    scenario_run.add_argument("scenario",
                              choices=(scenario_names()
                                       + environment_names() + ["all"]),
                              metavar="scenario",
                              help="scenario or environment name (see "
                                   "'scenarios list') or 'all'")
    scenario_run.add_argument("--duration", type=float, default=None,
                              metavar="SECONDS",
                              help="override the simulated duration")
    scenario_run.add_argument("--scale", type=float, default=1.0,
                              metavar="FACTOR",
                              help="scale each scenario's own duration "
                                   "(ignored when --duration is given)")
    scenario_run.add_argument("--seed", type=int, default=0,
                              help="traffic RNG seed (default 0)")
    scenario_run.add_argument("--environment", default=None,
                              choices=sorted(ENVIRONMENTS),
                              metavar="ENV",
                              help="override the harvesting environment "
                                   "(one of "
                                   f"{', '.join(sorted(ENVIRONMENTS))})")
    scenario_run.add_argument("--fast-path", choices=("exact", "hybrid"),
                              default=None, dest="fast_path",
                              help="simulation kernel: exact event loop "
                                   "(default) or hybrid macro-tick fast path "
                                   "that leaps over steady-state segments")
    scenario_run.add_argument("--out", default=str(DEFAULT_OUT_DIR),
                              metavar="DIR",
                              help="artifact directory (default 'artifacts'); "
                                   "'none' disables artifacts")

    cohort_parser = subparsers.add_parser(
        "cohort", help="run or summarize population-scale cohorts")
    cohort_sub = cohort_parser.add_subparsers(dest="cohort_command")
    cohort_run = cohort_sub.add_parser(
        "run", help="sample and execute a cohort with streaming aggregation")
    cohort_run.add_argument("--population", type=int, default=1000,
                            metavar="N", help="cohort size (default 1000)")
    cohort_run.add_argument("--fast-path",
                            choices=("analytic", "des", "hybrid"),
                            default="analytic", dest="fast_path",
                            help="per-member execution: vectorized "
                                 "steady-state approximation (default), "
                                 "full discrete-event simulation, or the "
                                 "hybrid macro-tick DES kernel")
    cohort_run.add_argument("--shards", type=int, default=None, metavar="K",
                            help="member shards (default: one per worker)")
    cohort_run.add_argument("--parallel", type=int, default=1, metavar="N",
                            help="worker processes (default 1 = in-process)")
    cohort_run.add_argument("--seed", type=int, default=0,
                            help="cohort seed; member seeds derive from it "
                                 "(default 0)")
    cohort_run.add_argument("--duration", type=float, default=60.0,
                            metavar="SECONDS",
                            help="simulated seconds per member (default 60)")
    cohort_run.add_argument("--validate-stride", type=int, default=1000,
                            dest="validate_stride", metavar="K",
                            help="cross-check every K-th analytic member "
                                 "against the DES (0 disables; default 1000)")
    cohort_run.add_argument("--keep-members", action="store_true",
                            dest="keep_members",
                            help="retain raw member rows inside the binary "
                                 "frames (debugging; off by default)")
    cohort_run.add_argument("--compression",
                            choices=("zlib", "none", "zstd"),
                            default="zlib",
                            help="outer compression of the binary shard "
                                 "frames (default zlib; zstd needs the "
                                 "optional zstandard package)")
    cohort_run.add_argument("--out", default=str(DEFAULT_OUT_DIR),
                            metavar="DIR",
                            help="artifact directory (default 'artifacts'); "
                                 "'none' disables artifacts")
    cohort_summarize = cohort_sub.add_parser(
        "summarize", help="re-print cohort artifacts from a directory")
    cohort_summarize.add_argument("artifact_dir",
                                  help="directory of JSON artifacts")
    return parser


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="worker processes (default 1 = in-process)")
    parser.add_argument("--out", default=str(DEFAULT_OUT_DIR), metavar="DIR",
                        help="artifact directory (default 'artifacts'); "
                             "'none' disables artifacts and caching")
    parser.add_argument("--force", action="store_true",
                        help="recompute even when a cached artifact exists")


def _out_dir(value: str) -> Path | None:
    return None if value.lower() in ("none", "-") else Path(value)


def _command_list(out) -> int:
    rows = [{"experiment": spec.id, "paper id": spec.eid,
             "description": spec.title}
            for spec in all_specs()]
    print(format_table(rows, title="available experiments"), file=out)
    return 0


def _print_task(spec: ExperimentSpec, rows: list[dict[str, object]],
                summary: Sequence[str], cached: bool, out) -> None:
    suffix = " [cached]" if cached else ""
    print(format_table(rows, title=f"{spec.id}: {spec.title}{suffix}"),
          file=out)
    for line in summary:
        print(line, file=out)
    print(file=out)


def _command_run(experiment: str, out, parallel: int,
                 out_dir: Path | None, force: bool) -> int:
    if experiment == "all":
        names = [spec.id for spec in all_specs()]
    else:
        names = [resolve(experiment).id]
    runner = SweepRunner(out_dir=out_dir, parallel=parallel, force=force)
    for name, result in zip(names, runner.run_many(names)):
        _print_task(resolve(name), result.rows, result.summary,
                    result.cached, out)
    _print_warnings(runner, out)
    return 0


def _command_sweep(experiment: str, grid_args: Sequence[str] | None, out,
                   parallel: int, out_dir: Path | None, force: bool,
                   base_seed: int) -> int:
    spec = resolve(experiment)
    grid = parse_grid(grid_args) if grid_args else None
    runner = SweepRunner(out_dir=out_dir, parallel=parallel,
                         base_seed=base_seed, force=force)
    sweep = runner.run_sweep(spec.id, grid)
    title = (f"sweep {spec.id}: {len(sweep.results)} tasks, "
             f"{sweep.cached_count} cached")
    print(format_table(sweep.rows(), title=title), file=out)
    if sweep.manifest_path is not None:
        print(f"manifest: {sweep.manifest_path}", file=out)
    _print_warnings(runner, out)
    return 0


def _print_warnings(runner: SweepRunner, out) -> None:
    for warning in runner.warnings:
        print(f"warning: {warning}", file=out)


def _command_report(artifact_dir: str, out, include_stale: bool = False) -> int:
    entries, incompatible = scan_artifacts_with_paths(artifact_dir)
    if incompatible:
        print(f"note: skipped {incompatible} artifact(s) written with an "
              "incompatible schema version", file=out)
    current_fingerprint = source_fingerprint()
    if not include_stale:
        fresh = [(path, document) for path, document in entries
                 if document.get("source_fingerprint")
                 in (None, current_fingerprint)]
        stale_count = len(entries) - len(fresh)
        if stale_count:
            print(f"note: skipped {stale_count} stale artifact(s) written "
                  "before the sources last changed; pass --all to include "
                  "them", file=out)
        entries = fresh
    if not entries:
        print(f"no artifacts found in {artifact_dir}", file=out)
        return 1
    for path, document in entries:
        rows = document.get("rows") or []
        name = document.get("experiment", "?")
        title = str(document.get("title", ""))
        digest = document.get("digest", "")
        header = f"{name}: {title} [{digest}]"
        written_by = document.get("source_fingerprint")
        if written_by is not None and written_by != current_fingerprint:
            header += " [stale: sources changed since this was written]"
        if rows:
            print(format_table(rows, title=header), file=out)
        else:
            print(f"{header} (no rows)", file=out)
        result_document = document.get("result")
        if isinstance(result_document, dict):
            # Artifacts carrying a full schema-versioned simulation
            # result get a derived-metrics line computed by the result
            # class itself, not by poking at raw dict keys here.
            try:
                simulated = SimulationResult.from_dict(result_document)
            except (ReproError, KeyError, TypeError, ValueError):
                print("note: result payload has an unreadable schema",
                      file=out)
            else:
                line = (f"result: {simulated.delivered_packets} delivered "
                        f"({simulated.delivered_fraction:.1%} of offered), "
                        f"{simulated.attempts_per_delivered:.3f} attempts/pkt, "
                        f"mean latency "
                        f"{simulated.mean_latency_seconds * 1e3:.3f} ms")
                if simulated.coding_enabled:
                    # Coding metrics come from the reconstructed result's
                    # own properties (same from_dict path as the rest of
                    # the line), and only for coded runs so historical
                    # artifacts render byte-identically.
                    line += (f", {simulated.bit_reduction_factor:.2f}x bit "
                             f"reduction, "
                             f"{simulated.encode_energy_fraction:.1%} "
                             f"encode energy")
                print(line, file=out)
        for line in document.get("summary") or []:
            print(line, file=out)
        size_line = f"artifact: {path.name} ({path.stat().st_size} bytes on disk"
        codec_info = document.get("codec")
        if isinstance(codec_info, dict) and codec_info.get("binary"):
            binary_path = path.parent / str(codec_info["binary"])
            if binary_path.is_file():
                size_line += (f" + {binary_path.stat().st_size} bytes binary, "
                              f"encode "
                              f"{float(codec_info.get('encode_seconds', 0.0)) * 1e3:.1f} ms / "
                              f"decode "
                              f"{float(codec_info.get('decode_seconds', 0.0)) * 1e3:.1f} ms")
        print(size_line + ")", file=out)
        print(file=out)
    return 0


def _command_scenarios_list(out) -> int:
    # One navigable gallery: single-body scenarios first, then the
    # multi-body environments; both describe to the same columns, and
    # the capability tags (lossy / coded / battery / multi-body) say
    # which subsystems each entry exercises.
    rows = [spec.describe() for spec in all_scenarios()]
    rows += [spec.describe() for spec in all_environments()]
    print(format_table(rows, title="registered scenarios"), file=out)
    return 0


def _command_scenarios_run(scenario: str, out, duration: float | None,
                           scale: float, seed: int,
                           out_dir: Path | None,
                           environment: str | None = None,
                           fast_path: str | None = None) -> int:
    if scale <= 0:
        raise ReproError("--scale must be positive")
    names = scenario_names() if scenario == "all" else [scenario]
    rows: list[dict[str, object]] = []
    for name in names:
        if name in environment_names():
            if environment is not None:
                raise ReproError(
                    "--environment overrides a scenario's harvesting "
                    "environment; multi-body environments configure "
                    "their bodies themselves")
            env_spec = get_environment(name)
            resolved = (duration if duration is not None
                        else env_spec.resolved_duration() * scale)
            env_result = env_spec.run(seed=seed, duration_seconds=resolved,
                                      fast_path=fast_path)
            body_rows = env_result.rows()
            rows.extend(body_rows)
            if out_dir is not None:
                kwargs = {"environment_spec": name, "seed": seed,
                          "duration_seconds": resolved}
                if fast_path is not None:
                    kwargs["fast_path"] = fast_path
                digest = digest_key(f"environment:{name}", kwargs)
                write_artifact(
                    out_dir / f"environment-{name}-{digest}.json",
                    {
                        "experiment": f"environment:{name}",
                        "eid": "E18",
                        "title": env_spec.description,
                        "digest": digest,
                        "params": kwargs,
                        "kwargs": kwargs,
                        "rows": body_rows,
                        "summary": [
                            f"bodies: {env_spec.body_count}",
                            "mean delivered fraction: "
                            f"{env_result.mean_delivered_fraction:.4f}",
                        ],
                    },
                )
            continue
        spec = get_scenario(name)
        if environment is not None:
            spec = dataclasses.replace(spec, environment=environment)
        resolved = (duration if duration is not None
                    else spec.duration_seconds * scale)
        result = spec.run(seed=seed, duration_seconds=resolved,
                          fast_path=fast_path)
        row = result.row()
        rows.append(row)
        if out_dir is not None:
            kwargs = {"scenario": name, "seed": seed,
                      "duration_seconds": resolved}
            if environment is not None:
                kwargs["environment"] = environment
            if fast_path is not None:
                kwargs["fast_path"] = fast_path
            digest = digest_key(f"scenario:{name}", kwargs)
            write_artifact(
                out_dir / f"scenario-{name}-{digest}.json",
                {
                    "experiment": f"scenario:{name}",
                    "eid": "E13",
                    "title": spec.description,
                    "digest": digest,
                    "params": kwargs,
                    "kwargs": kwargs,
                    "rows": [row],
                    "result": result.simulated.to_dict(),
                    "summary": [f"arbitration: {spec.arbitration}",
                                "technologies: "
                                + ", ".join(spec.technologies())],
                },
            )
    print(format_table(rows, title="scenario runs"), file=out)
    return 0


def _command_cohort_run(out, population: int, fast_path: str,
                        shards: int | None, parallel: int, seed: int,
                        duration: float, validate_stride: int,
                        out_dir: Path | None, keep_members: bool = False,
                        compression: str = "zlib") -> int:
    from .cohort import CohortSpec, run_cohort, write_frames

    spec = CohortSpec(population=population, seed=seed,
                      member_duration_seconds=duration)
    result = run_cohort(spec, fast_path=fast_path, shard_count=shards,
                        parallel=parallel, validate_stride=validate_stride,
                        keep_members=keep_members, compression=compression)
    rows = result.rows()
    summary = result.summary_lines()
    title = f"cohort of {population} ({fast_path} path)"
    print(format_table([result.overview()], title=title), file=out)
    print(format_table(rows, title="member-metric distribution"), file=out)
    for line in summary:
        print(line, file=out)
    print(f"codec: encoded {result.encoded_bytes} bytes in "
          f"{len(result.frames)} frame(s) ({result.compression}), "
          f"encode {result.encode_seconds * 1e3:.1f} ms, "
          f"decode {result.decode_seconds * 1e3:.1f} ms", file=out)
    if result.validations:
        print(format_table(result.validation_rows(),
                           title="analytic-vs-DES validation"), file=out)
    if out_dir is not None:
        kwargs = {"population": population, "fast_path": fast_path,
                  "seed": seed, "member_duration_seconds": duration,
                  "validate_stride": validate_stride,
                  "keep_members": keep_members, "compression": compression}
        digest = digest_key("cohort", kwargs)
        shards_name = f"cohort-{digest}.shards.bin"
        shards_path = write_frames(out_dir / shards_name, result.frames)
        path = write_artifact(
            out_dir / f"cohort-{digest}.json",
            {
                "experiment": "cohort",
                "eid": "E14",
                "title": title,
                "digest": digest,
                "params": kwargs,
                "kwargs": kwargs,
                "overview": result.overview(),
                "rows": rows,
                "summary": summary,
                "validation": result.validation_rows(),
                "codec": {
                    "binary": shards_name,
                    "codec_version": SHARD_CODEC_VERSION,
                    "compression": result.compression,
                    "frames": len(result.frames),
                    "encoded_bytes": result.encoded_bytes,
                    "keep_members": result.keep_members,
                    "encode_seconds": result.encode_seconds,
                    "decode_seconds": result.decode_seconds,
                },
            },
        )
        print(f"artifact: {path} "
              f"({path.stat().st_size} bytes JSON + "
              f"{shards_path.stat().st_size} bytes binary)", file=out)
    return 0


def _command_cohort_summarize(artifact_dir: str, out) -> int:
    from .cohort import read_frames, read_summary

    entries, _ = scan_artifacts_with_paths(artifact_dir)
    cohort_entries = [(path, document) for path, document in entries
                      if document.get("experiment") == "cohort"]
    if not cohort_entries:
        print(f"no cohort artifacts found in {artifact_dir}", file=out)
        return 1
    for path, document in cohort_entries:
        header = f"{document.get('title', 'cohort')} [{document.get('digest', '')}]"
        overview = document.get("overview")
        if overview:
            print(format_table([overview], title=header), file=out)
        print(format_table(document.get("rows") or [],
                           title="member-metric distribution"), file=out)
        for line in document.get("summary") or []:
            print(line, file=out)
        codec_info = document.get("codec")
        if isinstance(codec_info, dict) and codec_info.get("binary"):
            binary_path = path.parent / str(codec_info["binary"])
            if binary_path.is_file():
                # Stream the binary artifact footer-by-footer: every
                # number below comes out of the per-shard summary
                # footers, no member column is ever decoded.
                started = time.perf_counter()
                shard_rows = [read_summary(frame).row()
                              for frame in read_frames(binary_path)]
                footer_ms = (time.perf_counter() - started) * 1e3
                print(format_table(shard_rows, title="shard frames"),
                      file=out)
                print(f"binary: {binary_path.name} "
                      f"({binary_path.stat().st_size} bytes on disk, "
                      f"{codec_info.get('compression', '?')}), "
                      f"footers read in {footer_ms:.1f} ms; run encode "
                      f"{float(codec_info.get('encode_seconds', 0.0)) * 1e3:.1f} ms / "
                      f"decode "
                      f"{float(codec_info.get('decode_seconds', 0.0)) * 1e3:.1f} ms",
                      file=out)
            else:
                print(f"note: binary artifact {binary_path.name} is missing",
                      file=out)
        print(f"artifact: {path.name} ({path.stat().st_size} bytes on disk)",
              file=out)
        print(file=out)
    return 0


def _command_links(out) -> int:
    from .comm.ble import ble_1m_phy
    from .comm.eqs_hbc import eqs_hbc_bodywire, eqs_hbc_sub_uw, wir_commercial
    from .comm.mqs_hbc import mqs_implant_link
    from .comm.nfmi import nfmi_hearing_aid
    from .comm.wifi import wifi_hub_uplink

    technologies = [wir_commercial(), eqs_hbc_bodywire(), eqs_hbc_sub_uw(),
                    mqs_implant_link(), nfmi_hearing_aid(), ble_1m_phy(),
                    wifi_hub_uplink()]
    rows = [dict(report.__dict__) for report in compare_technologies(technologies)]
    print(format_table(rows, title="link technologies"), file=out)
    return 0


def _command_survey(out) -> int:
    print(format_table(survey_rows(), title="Fig. 2 device survey"), file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        if arguments.command == "list":
            return _command_list(out)
        if arguments.command == "run":
            if arguments.grid is not None:
                # `run EXP --grid ...` is sweep spelled differently; an
                # empty --grid selects the experiment's default grid.
                if arguments.experiment == "all":
                    raise ReproError("--grid needs a single experiment")
                return _command_sweep(arguments.experiment, arguments.grid,
                                      out, arguments.parallel,
                                      _out_dir(arguments.out),
                                      arguments.force, arguments.base_seed)
            return _command_run(arguments.experiment, out, arguments.parallel,
                                _out_dir(arguments.out), arguments.force)
        if arguments.command == "sweep":
            return _command_sweep(arguments.experiment, arguments.grid, out,
                                  arguments.parallel, _out_dir(arguments.out),
                                  arguments.force, arguments.base_seed)
        if arguments.command == "report":
            return _command_report(arguments.artifact_dir, out,
                                   arguments.include_stale)
        if arguments.command == "links":
            return _command_links(out)
        if arguments.command == "survey":
            return _command_survey(out)
        if arguments.command == "scenarios":
            if arguments.scenarios_command == "list":
                return _command_scenarios_list(out)
            if arguments.scenarios_command == "run":
                return _command_scenarios_run(
                    arguments.scenario, out, arguments.duration,
                    arguments.scale, arguments.seed,
                    _out_dir(arguments.out), arguments.environment,
                    arguments.fast_path)
            print("usage: repro scenarios {list,run}", file=out)
            return 1
        if arguments.command == "cohort":
            if arguments.cohort_command == "run":
                return _command_cohort_run(
                    out, arguments.population, arguments.fast_path,
                    arguments.shards, arguments.parallel, arguments.seed,
                    arguments.duration, arguments.validate_stride,
                    _out_dir(arguments.out), arguments.keep_members,
                    arguments.compression)
            if arguments.cohort_command == "summarize":
                return _command_cohort_summarize(arguments.artifact_dir, out)
            print("usage: repro cohort {run,summarize}", file=out)
            return 1
    except (ReproError, ValueError, TypeError) as error:
        # ReproError is the library's own contract; ValueError/TypeError
        # reach here when --grid feeds a driver a value it validates or
        # chokes on itself — still user input, still a clean error.
        print(f"error: {error}", file=out)
        return 2
    except BrokenPipeError:  # e.g. `repro run all | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    parser.print_help(out)
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
