"""Command-line interface: ``python -m repro <command>``.

Exposes the experiment drivers and a few utility reports so the figures
and tables can be regenerated without writing any Python:

.. code-block:: console

    python -m repro list                    # available experiments
    python -m repro run fig3                # one experiment, table to stdout
    python -m repro run all                 # every experiment
    python -m repro links                   # link-technology comparison
    python -m repro survey                  # Fig. 2 device survey
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from .analysis.reporting import format_table
from .analysis.survey import survey_rows
from .comm.link import compare_technologies
from .experiments import (
    charging_burden,
    implant_extension,
    claims,
    fig1_power_breakdown,
    fig2_battery_survey,
    fig3_battery_projection,
    isa_ablation,
    network_scaling,
    partitioned_inference,
    perpetual,
    quantization_ablation,
    termination_ablation,
)


def _rows_fig1() -> list[dict[str, object]]:
    return fig1_power_breakdown.run().rows()


def _rows_fig2() -> list[dict[str, object]]:
    return fig2_battery_survey.run().rows


def _rows_fig3() -> list[dict[str, object]]:
    return fig3_battery_projection.run().device_rows()


def _rows_claims() -> list[dict[str, object]]:
    return claims.run().rows()


def _rows_partition() -> list[dict[str, object]]:
    return partitioned_inference.run().rows()


def _rows_perpetual() -> list[dict[str, object]]:
    return perpetual.run().rows()


def _rows_isa() -> list[dict[str, object]]:
    return isa_ablation.run().rows()


def _rows_scaling() -> list[dict[str, object]]:
    return network_scaling.run(simulated_seconds=1.0).rows()


def _rows_termination() -> list[dict[str, object]]:
    return termination_ablation.run().rows()


def _rows_quantization() -> list[dict[str, object]]:
    return quantization_ablation.run().rows()


def _rows_charging() -> list[dict[str, object]]:
    return charging_burden.run().rows()


def _rows_implant() -> list[dict[str, object]]:
    return implant_extension.run().rows()


#: Experiment registry: CLI name -> (description, row producer).
EXPERIMENTS: dict[str, tuple[str, Callable[[], list[dict[str, object]]]]] = {
    "fig1": ("Fig. 1 — active-power breakdown of IoB node architectures",
             _rows_fig1),
    "fig2": ("Fig. 2 — battery life of commercial wearables", _rows_fig2),
    "fig3": ("Fig. 3 — battery life vs data rate with Wi-R", _rows_fig3),
    "claims": ("Quantitative Wi-R / BLE / RF claims table", _rows_claims),
    "partition": ("Partitioned DNN inference across the body network",
                  _rows_partition),
    "perpetual": ("Perpetual operation under indoor harvesting", _rows_perpetual),
    "isa": ("ISA ablation: {Wi-R, BLE} x {raw, ISA}", _rows_isa),
    "scaling": ("Body-bus scaling with the number of leaf nodes", _rows_scaling),
    "termination": ("EQS receiver-termination ablation", _rows_termination),
    "quantization": ("Activation-precision / partition ablation",
                     _rows_quantization),
    "charging": ("Charging burden vs number of wearables worn", _rows_charging),
    "implant": ("MQS-HBC implant extension (future-work direction)", _rows_implant),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Human-Inspired Distributed Wearable AI (DAC 2024) "
                    "reproduction toolkit",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS) + ["all"],
                            help="experiment to run")

    subparsers.add_parser("links", help="print the link-technology comparison")
    subparsers.add_parser("survey", help="print the Fig. 2 device survey")
    return parser


def _command_list(out) -> int:
    rows = [{"experiment": name, "description": description}
            for name, (description, _producer) in sorted(EXPERIMENTS.items())]
    print(format_table(rows, title="available experiments"), file=out)
    return 0


def _command_run(experiment: str, out) -> int:
    names = sorted(EXPERIMENTS) if experiment == "all" else [experiment]
    for name in names:
        description, producer = EXPERIMENTS[name]
        print(format_table(producer(), title=f"{name}: {description}"), file=out)
        print(file=out)
    return 0


def _command_links(out) -> int:
    from .comm.ble import ble_1m_phy
    from .comm.eqs_hbc import eqs_hbc_bodywire, eqs_hbc_sub_uw, wir_commercial
    from .comm.mqs_hbc import mqs_implant_link
    from .comm.nfmi import nfmi_hearing_aid
    from .comm.wifi import wifi_hub_uplink

    technologies = [wir_commercial(), eqs_hbc_bodywire(), eqs_hbc_sub_uw(),
                    mqs_implant_link(), nfmi_hearing_aid(), ble_1m_phy(),
                    wifi_hub_uplink()]
    rows = [dict(report.__dict__) for report in compare_technologies(technologies)]
    print(format_table(rows, title="link technologies"), file=out)
    return 0


def _command_survey(out) -> int:
    print(format_table(survey_rows(), title="Fig. 2 device survey"), file=out)
    return 0


def main(argv: Sequence[str] | None = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command == "list":
        return _command_list(out)
    if arguments.command == "run":
        return _command_run(arguments.experiment, out)
    if arguments.command == "links":
        return _command_links(out)
    if arguments.command == "survey":
        return _command_survey(out)
    parser.print_help(out)
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
