"""Closed-loop per-node control: observe the link, actuate the node.

The control subsystem turns the simulator's fixed adaptation rules into
pluggable policies.  A :class:`Controller` observes one node's windowed
packet-error rate, state of charge and MAC backlog, and actuates its
transmit-power offset, traffic stride, and (as recorded requests) its
coding rate and slot share; a :class:`ControllerRuntime` binds the
policy to a live :class:`~repro.netsim.simulator.BodyNetworkSimulator`
with a deterministic evaluation cadence on the event queue's control
stream.

Shipped policies: :class:`StaticController` (the exactly-neutral
default), :class:`PERBackoffController` (windowed-PER hysteresis on a
tx-power offset), and :class:`SoCThrottleController` (the low-battery
duty-cycle throttle, subsuming the historical hardcoded 1-in-stride
rule).  Design notes and the determinism contract:
``docs/multi-body-control.md``.
"""

from .controller import Action, Controller, ControllerSpec, Observation
from .controllers import (CONTROLLER_KINDS, PERBackoffController,
                          SoCThrottleController, StaticController,
                          make_controller)
from .runtime import TX_BOOST_COMPONENT, ControllerRuntime

__all__ = [
    "Action",
    "Controller",
    "ControllerSpec",
    "Observation",
    "CONTROLLER_KINDS",
    "PERBackoffController",
    "SoCThrottleController",
    "StaticController",
    "make_controller",
    "ControllerRuntime",
    "TX_BOOST_COMPONENT",
]
