"""Controller runtime: cadence scheduling, observation, actuation.

One :class:`ControllerRuntime` binds one controller instance to one
simulated node.  It owns everything the controller protocol deliberately
excludes: scheduling the evaluation ticks on the simulator's event
queue (the *control stream*, so evaluations interleave deterministically
with energy ticks and scenario events), assembling windowed
observations from the node's monotone counters, and applying the
returned actions through the simulator's mid-run actuation surface.

Energy accounting of the tx-power actuator follows the kernel's
settlement discipline: the batched kernel hoists per-bit transmit
energy once per run, so a mid-run boost cannot re-price frames as they
serialise.  Instead the runtime meters the bits serialised under each
offset and settles the premium — ``(10^(offset/10) - 1)`` of the
nominal frame energy — into the node's ledger at run end, through the
simulator's pre-account hooks (after the kernel's ledger write-back,
before the power accounting reads the totals).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .controller import Action, Controller, Observation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from ..netsim.simulator import BodyNetworkSimulator, SimulatedNode

#: Ledger component the run-end tx-power premium is posted under.
TX_BOOST_COMPONENT = "tx_boost"


class ControllerRuntime:
    """Glue between one controller and one node of a live simulator.

    Parameters
    ----------
    simulator, node:
        The bound simulator and node.
    controller:
        The policy to evaluate.
    error_rate_fn:
        Optional ``offset_db -> per-packet erasure probability`` closure
        for this node (typically a re-derivation of its link budget with
        the boosted transmit level).  Without it — or without a
        reliability model on the simulator — tx-power actions still
        settle their energy premium but cannot move the erasure rate.
    """

    def __init__(self, simulator: "BodyNetworkSimulator",
                 node: "SimulatedNode", controller: Controller,
                 error_rate_fn: Callable[[float], float] | None = None
                 ) -> None:
        self.simulator = simulator
        self.node = node
        self.controller = controller
        self.error_rate_fn = error_rate_fn
        self.offset_db = 0.0
        self.evaluations = 0
        self.actions_applied = 0
        self.coding_rate_request: float | None = None
        self.slot_share_request: float | None = None
        self._last_erased = node.erased_attempts
        self._last_delivered = node.packets_delivered
        self._last_time = simulator.queue.now
        self._premium_joules = 0.0
        self._premium_bits_mark = node.bits_sent + node.retx_bits

    # -- scheduling --------------------------------------------------------

    def schedule(self) -> None:
        """Arm the periodic evaluation on the simulator's control stream.

        A ``cadence_seconds = None`` controller (static, SoC throttle)
        schedules nothing — the neutrality contract.  The tick re-arms
        itself unconditionally; occurrences beyond the run horizon are
        simply never dispatched by the kernel.
        """
        cadence = self.controller.cadence_seconds
        if cadence is None:
            return
        queue = self.simulator.queue

        def tick() -> None:
            self.evaluate_cadence(queue.now)
            queue.schedule_in(cadence, tick)

        queue.schedule_in(cadence, tick)

    # -- observation -------------------------------------------------------

    def evaluate_cadence(self, now: float) -> None:
        """One periodic evaluation: windowed observation → action."""
        node = self.node
        simulator = self.simulator
        erased = node.erased_attempts
        delivered = node.packets_delivered
        energy = node.energy
        observation = Observation(
            kind="cadence",
            time_seconds=now,
            window_seconds=now - self._last_time,
            erased_attempts=erased - self._last_erased,
            delivered_packets=delivered - self._last_delivered,
            queue_depth=simulator.bus.policy.pending_count(),
            state_of_charge=(energy.state_of_charge_fraction
                            if energy is not None else 1.0),
            low_battery=(energy is not None and energy.is_low_battery()),
            tx_stride=node.tx_stride,
            low_battery_stride=node.low_battery_stride,
            tx_power_offset_db=self.offset_db,
        )
        self._last_erased = erased
        self._last_delivered = delivered
        self._last_time = now
        self.evaluations += 1
        action = self.controller.evaluate(observation)
        if action is not None:
            self.apply(action, now)

    # -- actuation ---------------------------------------------------------

    def apply(self, action: Action, now: float) -> None:
        """Apply one action through the simulator's mid-run surface."""
        node = self.node
        simulator = self.simulator
        self.actions_applied += 1
        if action.tx_stride is not None:
            node.tx_stride = action.tx_stride
        if action.coding_rate is not None:
            self.coding_rate_request = action.coding_rate
        if action.slot_share is not None:
            self.slot_share_request = action.slot_share
        offset = action.tx_power_offset_db
        if offset is None:
            return
        if offset < 0.0:
            offset = 0.0
        if offset != self.offset_db:
            # Settle the premium of the bits serialised at the old
            # offset before the new one starts metering.
            self._settle_premium()
            self.offset_db = offset
        if self.error_rate_fn is not None \
                and simulator.reliability is not None:
            simulator.reliability.set_error_rate(
                node.name, self.error_rate_fn(offset))

    def _settle_premium(self) -> None:
        node = self.node
        serialised = node.bits_sent + node.retx_bits
        delta_bits = serialised - self._premium_bits_mark
        self._premium_bits_mark = serialised
        if delta_bits <= 0.0 or self.offset_db == 0.0:
            return
        factor = 10.0 ** (self.offset_db / 10.0) - 1.0
        self._premium_joules += (factor * delta_bits
                                 * node.technology.tx_energy_per_bit())

    def finalize(self, duration_seconds: float) -> None:
        """Run-end settlement (registered as a simulator pre-account hook).

        Posts the accumulated tx-power premium to the node's ledger.
        The premium is accounted as consumption only — it does not
        drain a battery retroactively, so it cannot manufacture a
        brownout after the fact (a documented approximation).
        """
        self._settle_premium()
        if self._premium_joules > 0.0:
            self.node.ledger.post(TX_BOOST_COMPONENT, self._premium_joules,
                                  timestamp_seconds=duration_seconds)

    @property
    def tx_boost_energy_joules(self) -> float:
        """Premium settled so far (complete only after :meth:`finalize`)."""
        return self._premium_joules
