"""The per-node control-loop protocol: observe, decide, actuate.

A :class:`Controller` closes the loop around one leaf node: the
simulator presents an :class:`Observation` (windowed link quality,
state of charge, queue depth), the controller answers with an
:class:`Action` (or ``None`` for "hold"), and the runtime applies the
action through the simulator's mid-run actuation surface.  The shape
follows the FSM-actor pattern of SCADA supervisors: controllers are
small, synchronous state machines whose only side channel is the
returned action — they never touch the simulator directly, which is
what keeps their evaluation cadence deterministic on the event queue's
control stream.

Two observation sources exist:

* a **cadence** observation, emitted every
  ``Controller.cadence_seconds`` on the control stream (windowed
  erasure/delivery deltas since the previous evaluation);
* a **low_battery** observation, emitted exactly at the simulator's
  state-of-charge threshold crossing (the energy tick that first sees
  ``is_low_battery()``).

A controller with ``cadence_seconds = None`` schedules *nothing* on the
queue: it can only react to threshold crossings, and attaching it to a
node perturbs no event ordering — the property the default
:class:`~repro.control.controllers.StaticController` relies on for
exact neutrality.

Actuation limits are part of the contract, not an implementation
accident: the batched kernel hoists per-bit energies and service times
once per run, so ``tx_power_offset_db`` changes the *link budget*
(re-derived erasure probability) immediately but its energy premium is
settled into the ledger only at run end, and ``coding_rate`` /
``slot_share`` requests are recorded for reporting without re-compiling
the airtime tables mid-run.  See ``docs/multi-body-control.md`` for the
accepted approximations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..errors import SimulationError


@dataclass(frozen=True)
class Observation:
    """What one node's controller sees at an evaluation instant.

    ``erased_attempts`` and ``delivered_packets`` are deltas over the
    window since the previous evaluation (zero-length window for a
    threshold crossing).  ``queue_depth`` is the MAC policy's total
    pending backlog — the shared-medium congestion signal, not a
    per-node queue.  ``state_of_charge`` is 1.0 for unconstrained
    (mains/hub-powered) nodes.
    """

    kind: str  # "cadence" or "low_battery"
    time_seconds: float
    window_seconds: float = 0.0
    erased_attempts: int = 0
    delivered_packets: int = 0
    queue_depth: int = 0
    state_of_charge: float = 1.0
    low_battery: bool = False
    tx_stride: int = 1
    low_battery_stride: int = 1
    tx_power_offset_db: float = 0.0

    @property
    def packet_error_rate(self) -> float:
        """Windowed erasure fraction (0.0 when the window saw no traffic)."""
        attempts = self.erased_attempts + self.delivered_packets
        if attempts <= 0:
            return 0.0
        return self.erased_attempts / attempts


@dataclass(frozen=True)
class Action:
    """What a controller asks the runtime to change.

    Every field is optional; ``None`` means "leave it alone".  Setting
    ``tx_power_offset_db`` equal to the currently applied offset is the
    idiom for *re-asserting* it (a posture event may have re-derived the
    node's erasure rate at zero offset; the runtime re-applies the
    boost).  ``coding_rate`` and ``slot_share`` are recorded as requests
    (see the module docstring) — the MAC and coding tables are compiled
    per run.
    """

    tx_power_offset_db: float | None = None
    tx_stride: int | None = None
    coding_rate: float | None = None
    slot_share: float | None = None

    def __post_init__(self) -> None:
        if self.tx_stride is not None and self.tx_stride < 1:
            raise SimulationError("tx stride must be >= 1")
        if self.coding_rate is not None and not 0.0 < self.coding_rate <= 1.0:
            raise SimulationError("coding rate must be in (0, 1]")
        if self.slot_share is not None and not 0.0 < self.slot_share <= 1.0:
            raise SimulationError("slot share must be in (0, 1]")


@runtime_checkable
class Controller(Protocol):
    """One node's closed-loop policy.

    ``cadence_seconds`` is the deterministic evaluation period on the
    control stream (``None`` = no periodic evaluation; the controller
    only sees threshold crossings).  ``evaluate`` must be pure apart
    from the controller's own state: all effects flow through the
    returned :class:`Action`.
    """

    cadence_seconds: float | None

    def evaluate(self, observation: Observation) -> Action | None:
        """Decide on one observation; ``None`` holds every actuator."""
        ...


@dataclass(frozen=True)
class ControllerSpec:
    """Declarative, hashable description of a controller.

    Scenario and environment specs carry this record (they must stay
    hashable for the compile cache), and :meth:`build` instantiates the
    stateful controller at simulator-build time.  ``kind`` selects the
    policy:

    * ``"static"`` — :class:`~repro.control.controllers.StaticController`
      (never acts, schedules nothing; the exactly-neutral default);
    * ``"per_backoff"`` —
      :class:`~repro.control.controllers.PERBackoffController`
      (windowed-PER hysteresis on a tx-power offset);
    * ``"soc_throttle"`` —
      :class:`~repro.control.controllers.SoCThrottleController`
      (the low-battery duty-cycle throttle).
    """

    kind: str = "static"
    cadence_seconds: float = 10.0
    per_threshold: float = 0.2
    per_recover_threshold: float = 0.05
    step_db: float = 2.0
    max_offset_db: float = 6.0
    throttle_stride: int | None = None

    def __post_init__(self) -> None:
        from .controllers import CONTROLLER_KINDS
        if self.kind not in CONTROLLER_KINDS:
            known = ", ".join(sorted(CONTROLLER_KINDS))
            raise SimulationError(
                f"unknown controller kind {self.kind!r} (known: {known})")
        if self.cadence_seconds <= 0:
            raise SimulationError("controller cadence must be positive")
        if not 0.0 <= self.per_recover_threshold <= self.per_threshold <= 1.0:
            raise SimulationError(
                "PER thresholds must satisfy 0 <= recover <= trigger <= 1")
        if self.step_db <= 0 or self.max_offset_db < 0:
            raise SimulationError("tx offset step/cap must be positive")
        if self.throttle_stride is not None and self.throttle_stride < 1:
            raise SimulationError("throttle stride must be >= 1")

    def build(self) -> Controller:
        """Instantiate the stateful controller this spec describes."""
        from .controllers import CONTROLLER_KINDS
        return CONTROLLER_KINDS[self.kind](self)
