"""The shipped controllers: static hold, PER backoff, SoC throttle.

Each is a small FSM over the :class:`~repro.control.controller.
Observation` stream; the runtime owns scheduling and actuation, so
these classes are plain synchronous objects that are trivial to unit
test in isolation.
"""

from __future__ import annotations

from .controller import Action, Controller, ControllerSpec, Observation


class StaticController:
    """The exactly-neutral default: observe nothing, actuate nothing.

    ``cadence_seconds`` is ``None``, so attaching this controller
    schedules no events, claims no sequence numbers and perturbs no
    float — an attached-but-static run is bit-identical to a run with
    no controller at all (pinned by the golden-hex regression tests).
    """

    cadence_seconds: float | None = None

    def __init__(self, spec: ControllerSpec | None = None) -> None:
        self.spec = spec

    def evaluate(self, observation: Observation) -> Action | None:
        return None


class PERBackoffController:
    """Hysteresis loop from windowed PER to a tx-power offset.

    Every cadence window: if the observed erasure fraction exceeds
    ``per_threshold``, raise the node's transmit level by ``step_db``
    (capped at ``max_offset_db``); once it falls below
    ``per_recover_threshold``, step back down toward zero.  In between
    — or whenever an offset is already applied — the current offset is
    re-asserted, so a posture event that re-derived the erasure rate at
    nominal power is corrected within one cadence.

    A window that carried no traffic (no deliveries, no erasures) is
    ignored: silence is not evidence the channel improved.
    """

    def __init__(self, spec: ControllerSpec) -> None:
        self.spec = spec
        self.cadence_seconds: float | None = spec.cadence_seconds

    def evaluate(self, observation: Observation) -> Action | None:
        if observation.kind == "low_battery":
            # Keep the default duty-cycle throttle: backing off on PER
            # must not cost a battery node its low-battery protection.
            if observation.low_battery:
                return Action(tx_stride=observation.low_battery_stride)
            return None
        if observation.kind != "cadence":
            return None
        spec = self.spec
        offset = observation.tx_power_offset_db
        attempts = observation.erased_attempts + observation.delivered_packets
        if attempts > 0:
            per = observation.packet_error_rate
            if per > spec.per_threshold and offset < spec.max_offset_db:
                return Action(tx_power_offset_db=min(
                    offset + spec.step_db, spec.max_offset_db))
            if per < spec.per_recover_threshold and offset > 0.0:
                return Action(tx_power_offset_db=max(
                    offset - spec.step_db, 0.0))
        if offset > 0.0:
            return Action(tx_power_offset_db=offset)  # re-assert
        return None


class SoCThrottleController:
    """Duty-cycle throttle on the low-battery crossing.

    Subsumes the historical hardcoded 1-in-``low_battery_stride``
    throttle: on the first energy tick whose state of charge is below
    the node's low-battery fraction, request the throttled stride.  The
    default configuration (``throttle_stride=None`` → the node's own
    ``low_battery_stride``) reproduces the legacy arithmetic and event
    record bit-identically; a spec-level ``throttle_stride`` overrides
    the per-node value.

    ``cadence_seconds`` is ``None``: the controller is purely
    crossing-triggered and schedules nothing, so arming it — including
    the implicit default on every battery node — keeps lossless and
    energy golden pins unchanged.
    """

    cadence_seconds: float | None = None

    def __init__(self, spec: ControllerSpec | None = None) -> None:
        self.spec = spec

    def evaluate(self, observation: Observation) -> Action | None:
        if observation.kind != "low_battery" or not observation.low_battery:
            return None
        stride = (self.spec.throttle_stride
                  if self.spec is not None
                  and self.spec.throttle_stride is not None
                  else observation.low_battery_stride)
        return Action(tx_stride=stride)


#: Spec ``kind`` → controller class (the :meth:`ControllerSpec.build`
#: dispatch table).
CONTROLLER_KINDS: dict[str, type] = {
    "static": StaticController,
    "per_backoff": PERBackoffController,
    "soc_throttle": SoCThrottleController,
}


def make_controller(spec: ControllerSpec | str | None) -> Controller:
    """Build a controller from a spec, a bare kind name, or ``None``."""
    if spec is None:
        return StaticController()
    if isinstance(spec, str):
        spec = ControllerSpec(kind=spec)
    return spec.build()
