"""Lossless and lossy data-reduction primitives for ULP leaf nodes.

The compressors are deliberately simple — delta coding, run-length coding,
downsampling, uniform quantisation and a DCT-based MJPEG-like image codec
— because that is what fits in a microwatt-class in-sensor analytics
block.  Every lossy stage reports the achieved compression ratio and
reconstruction error so experiments can trade fidelity against the
communication energy saved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import dctn, idctn

from ..errors import ConfigurationError


@dataclass(frozen=True)
class CompressionResult:
    """Outcome of a compression stage."""

    original_bits: float
    compressed_bits: float
    reconstruction_rmse: float = 0.0

    def __post_init__(self) -> None:
        if self.original_bits < 0 or self.compressed_bits < 0:
            raise ConfigurationError("bit counts must be non-negative")
        if self.reconstruction_rmse < 0:
            raise ConfigurationError("RMSE must be non-negative")

    @property
    def compression_ratio(self) -> float:
        """Original size divided by compressed size (>= 1 when it helps)."""
        if self.compressed_bits == 0:
            return float("inf")
        return self.original_bits / self.compressed_bits

    @property
    def rate_fraction(self) -> float:
        """Compressed size as a fraction of the original."""
        if self.original_bits == 0:
            return 0.0
        return self.compressed_bits / self.original_bits


# ---------------------------------------------------------------------------
# Delta coding
# ---------------------------------------------------------------------------

def delta_encode(samples: np.ndarray) -> np.ndarray:
    """First-order delta encoding (first sample kept verbatim)."""
    samples = np.asarray(samples)
    if samples.ndim != 1:
        raise ConfigurationError("delta encoding expects a 1-D array")
    if samples.size == 0:
        return samples.copy()
    return np.concatenate(([samples[0]], np.diff(samples)))


def delta_decode(deltas: np.ndarray) -> np.ndarray:
    """Inverse of :func:`delta_encode`."""
    deltas = np.asarray(deltas)
    if deltas.ndim != 1:
        raise ConfigurationError("delta decoding expects a 1-D array")
    if deltas.size == 0:
        return deltas.copy()
    return np.cumsum(deltas)


def delta_encoded_bits(samples: np.ndarray, sample_bits: int = 16) -> CompressionResult:
    """Estimate the size of a delta-coded integer stream.

    Deltas are entropy-friendly for slowly varying biopotential signals;
    we estimate the compressed size from the actual bit width needed per
    delta (sign + magnitude) rather than running a full entropy coder.
    """
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 1:
        raise ConfigurationError("expected a 1-D integer array")
    if sample_bits <= 0:
        raise ConfigurationError("sample bits must be positive")
    original = float(samples.size * sample_bits)
    if samples.size == 0:
        return CompressionResult(original_bits=0.0, compressed_bits=0.0)
    deltas = np.diff(samples)
    if deltas.size == 0:
        return CompressionResult(original_bits=original, compressed_bits=float(sample_bits))
    magnitudes = np.abs(deltas)
    bits_per_delta = np.where(magnitudes > 0, np.ceil(np.log2(magnitudes + 1)) + 1, 1)
    compressed = float(sample_bits + np.sum(bits_per_delta))
    return CompressionResult(original_bits=original, compressed_bits=compressed)


# ---------------------------------------------------------------------------
# Run-length coding
# ---------------------------------------------------------------------------

def run_length_encode(values: np.ndarray) -> list[tuple[float, int]]:
    """Run-length encode a 1-D array into (value, run-length) pairs."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ConfigurationError("run-length encoding expects a 1-D array")
    if values.size == 0:
        return []
    runs: list[tuple[float, int]] = []
    current = values[0]
    count = 1
    for value in values[1:]:
        if value == current:
            count += 1
        else:
            runs.append((current.item() if hasattr(current, "item") else current, count))
            current = value
            count = 1
    runs.append((current.item() if hasattr(current, "item") else current, count))
    return runs


def run_length_decode(runs: list[tuple[float, int]]) -> np.ndarray:
    """Inverse of :func:`run_length_encode`."""
    if not runs:
        return np.asarray([])
    pieces = []
    for value, count in runs:
        if count <= 0:
            raise ConfigurationError("run lengths must be positive")
        pieces.append(np.full(count, value))
    return np.concatenate(pieces)


# ---------------------------------------------------------------------------
# Downsampling and quantisation
# ---------------------------------------------------------------------------

def downsample(samples: np.ndarray, factor: int) -> np.ndarray:
    """Average-and-decimate by an integer factor (simple anti-aliasing)."""
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise ConfigurationError("downsampling expects a 1-D array")
    if factor <= 0:
        raise ConfigurationError("downsampling factor must be positive")
    if factor == 1 or samples.size == 0:
        return samples.copy()
    usable = (samples.size // factor) * factor
    if usable == 0:
        return np.asarray([np.mean(samples)])
    return samples[:usable].reshape(-1, factor).mean(axis=1)


def quantize_signal(samples: np.ndarray, bits: int,
                    signal_range: tuple[float, float] | None = None,
                    ) -> tuple[np.ndarray, float, float]:
    """Uniformly quantise *samples* to *bits* resolution.

    Returns ``(codes, scale, offset)`` such that
    ``samples ~= codes * scale + offset``.
    """
    samples = np.asarray(samples, dtype=float)
    if bits <= 0 or bits > 32:
        raise ConfigurationError("quantisation bits must be in 1..32")
    if samples.size == 0:
        return samples.astype(np.int64), 1.0, 0.0
    if signal_range is None:
        low, high = float(np.min(samples)), float(np.max(samples))
    else:
        low, high = signal_range
    if high <= low:
        high = low + 1.0
    levels = (1 << bits) - 1
    scale = (high - low) / levels
    codes = np.clip(np.round((samples - low) / scale), 0, levels).astype(np.int64)
    return codes, scale, low


def dequantize_signal(codes: np.ndarray, scale: float, offset: float) -> np.ndarray:
    """Inverse of :func:`quantize_signal`."""
    if scale <= 0:
        raise ConfigurationError("scale must be positive")
    return np.asarray(codes, dtype=float) * scale + offset


# ---------------------------------------------------------------------------
# MJPEG-like image codec
# ---------------------------------------------------------------------------

class MJPEGLikeCodec:
    """Block-DCT image codec approximating MJPEG behaviour.

    Each frame is split into 8x8 blocks, transformed with a 2-D DCT,
    quantised with a quality-scaled step matrix, and the surviving
    non-zero coefficients are counted to estimate the compressed bitstream
    size (coefficient value + position costs).  The decoder inverts the
    pipeline so reconstruction error can be measured.  The paper names
    MJPEG explicitly as the video ISA example, and intra-only coding is
    the realistic choice for a microwatt-class encoder.
    """

    BLOCK = 8

    #: Base luminance quantisation steps (JPEG Annex K style, simplified to
    #: a radial ramp so the implementation stays dependency-free).
    def __init__(self, quality: int = 50) -> None:
        if not 1 <= quality <= 100:
            raise ConfigurationError("quality must be in 1..100")
        self.quality = quality
        ramp = np.add.outer(np.arange(self.BLOCK), np.arange(self.BLOCK)).astype(float)
        base_table = 16.0 + 6.0 * ramp
        if quality < 50:
            scale = 5000.0 / quality / 100.0
        else:
            scale = (200.0 - 2.0 * quality) / 100.0
        self.quant_table = np.maximum(np.round(base_table * scale), 1.0)

    def _pad(self, frame: np.ndarray) -> np.ndarray:
        height, width = frame.shape
        pad_h = (-height) % self.BLOCK
        pad_w = (-width) % self.BLOCK
        if pad_h or pad_w:
            frame = np.pad(frame, ((0, pad_h), (0, pad_w)), mode="edge")
        return frame

    def encode(self, frame: np.ndarray) -> tuple[np.ndarray, tuple[int, int]]:
        """Encode a 2-D uint8/float frame into quantised DCT coefficients."""
        frame = np.asarray(frame, dtype=float)
        if frame.ndim != 2:
            raise ConfigurationError("codec expects a 2-D greyscale frame")
        original_shape = frame.shape
        padded = self._pad(frame - 128.0)
        height, width = padded.shape
        blocks = padded.reshape(
            height // self.BLOCK, self.BLOCK, width // self.BLOCK, self.BLOCK
        ).swapaxes(1, 2)
        coefficients = dctn(blocks, axes=(-2, -1), norm="ortho")
        quantised = np.round(coefficients / self.quant_table)
        return quantised, original_shape

    def decode(self, quantised: np.ndarray, original_shape: tuple[int, int]) -> np.ndarray:
        """Reconstruct a frame from quantised coefficients."""
        quantised = np.asarray(quantised, dtype=float)
        if quantised.ndim != 4:
            raise ConfigurationError("expected coefficients of shape (by, bx, 8, 8)")
        coefficients = quantised * self.quant_table
        blocks = idctn(coefficients, axes=(-2, -1), norm="ortho")
        by, bx = quantised.shape[:2]
        frame = blocks.swapaxes(1, 2).reshape(by * self.BLOCK, bx * self.BLOCK)
        frame = frame[: original_shape[0], : original_shape[1]] + 128.0
        return np.clip(frame, 0.0, 255.0)

    def compressed_bits(self, quantised: np.ndarray) -> float:
        """Estimate the bitstream size for quantised coefficients.

        Each non-zero coefficient costs its magnitude bits plus a 4-bit
        run/position token; each 8x8 block pays a small header.  This
        tracks real MJPEG sizes to within a factor of ~1.5 without
        implementing Huffman tables.
        """
        quantised = np.asarray(quantised)
        nonzero = quantised[quantised != 0]
        n_blocks = quantised.shape[0] * quantised.shape[1]
        if nonzero.size == 0:
            return float(n_blocks * 8)
        magnitude_bits = np.ceil(np.log2(np.abs(nonzero) + 1)) + 1
        return float(np.sum(magnitude_bits + 4) + n_blocks * 8)

    def compress_frame(self, frame: np.ndarray,
                       bits_per_pixel: int = 8) -> CompressionResult:
        """End-to-end compression of one frame with quality measurement."""
        frame = np.asarray(frame, dtype=float)
        quantised, original_shape = self.encode(frame)
        reconstructed = self.decode(quantised, original_shape)
        rmse = float(np.sqrt(np.mean((frame - reconstructed) ** 2)))
        original_bits = float(frame.size * bits_per_pixel)
        compressed = self.compressed_bits(quantised)
        return CompressionResult(
            original_bits=original_bits,
            compressed_bits=compressed,
            reconstruction_rmse=rmse,
        )

    def compress_video(self, frames: np.ndarray,
                       bits_per_pixel: int = 8) -> CompressionResult:
        """Compress a stack of frames and aggregate the result."""
        frames = np.asarray(frames)
        if frames.ndim != 3:
            raise ConfigurationError("expected frames of shape (n, height, width)")
        total_original = 0.0
        total_compressed = 0.0
        squared_error = 0.0
        count = 0
        for frame in frames:
            result = self.compress_frame(frame, bits_per_pixel=bits_per_pixel)
            total_original += result.original_bits
            total_compressed += result.compressed_bits
            squared_error += result.reconstruction_rmse ** 2 * frame.size
            count += frame.size
        rmse = float(np.sqrt(squared_error / count)) if count else 0.0
        return CompressionResult(
            original_bits=total_original,
            compressed_bits=total_compressed,
            reconstruction_rmse=rmse,
        )
