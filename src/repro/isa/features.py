"""Feature extraction for in-sensor analytics.

These are the "low power in-sensor analytics" stages a ULP leaf node can
run before communication: R-peak detection for ECG (ship beat intervals
instead of waveforms), log-mel energies for audio (ship acoustic features
instead of PCM), and statistical window features for IMU streams (ship a
feature vector per window instead of raw samples).  Each extractor reports
the output data volume so the offload optimizer can quantify the data-rate
reduction ISA buys.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class FeatureSummary:
    """Data-volume accounting for a feature-extraction stage."""

    name: str
    input_bits: float
    output_bits: float

    def __post_init__(self) -> None:
        if self.input_bits < 0 or self.output_bits < 0:
            raise ConfigurationError("bit counts must be non-negative")

    @property
    def reduction_ratio(self) -> float:
        """Input bits divided by output bits."""
        if self.output_bits == 0:
            return float("inf")
        return self.input_bits / self.output_bits


# ---------------------------------------------------------------------------
# ECG: R-peak detection
# ---------------------------------------------------------------------------

def detect_r_peaks(signal: np.ndarray, sample_rate_hz: float,
                   refractory_seconds: float = 0.25,
                   threshold_fraction: float = 0.5) -> np.ndarray:
    """Detect R-peak sample indices in a single-lead ECG.

    A lightweight Pan–Tompkins-style detector: band-limit by differencing,
    square, integrate over a short window, then apply an adaptive
    threshold with a refractory period.  Suitable for the synthetic ECG in
    :class:`repro.sensors.biopotential.ECGGenerator` and clean recordings.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ConfigurationError("expected a 1-D ECG signal")
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    if signal.size < int(sample_rate_hz):
        raise ConfigurationError("need at least one second of signal")
    if not 0.0 < threshold_fraction < 1.0:
        raise ConfigurationError("threshold fraction must be in (0, 1)")

    differenced = np.diff(signal, prepend=signal[0])
    squared = differenced ** 2
    window = max(int(0.08 * sample_rate_hz), 1)
    kernel = np.ones(window) / window
    integrated = np.convolve(squared, kernel, mode="same")

    threshold = threshold_fraction * np.max(integrated)
    refractory = int(refractory_seconds * sample_rate_hz)
    peaks: list[int] = []
    index = 0
    while index < integrated.size:
        if integrated[index] >= threshold:
            window_end = min(index + refractory, integrated.size)
            local = index + int(np.argmax(signal[index:window_end]))
            peaks.append(local)
            index = window_end
        else:
            index += 1
    return np.asarray(peaks, dtype=int)


def heart_rate_from_peaks(peak_indices: np.ndarray,
                          sample_rate_hz: float) -> float:
    """Mean heart rate in beats per minute from R-peak indices."""
    peak_indices = np.asarray(peak_indices)
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    if peak_indices.size < 2:
        raise ConfigurationError("need at least two peaks to estimate heart rate")
    intervals = np.diff(peak_indices) / sample_rate_hz
    return float(60.0 / np.mean(intervals))


def ecg_feature_summary(n_samples: int, n_peaks: int,
                        sample_bits: int = 12,
                        interval_bits: int = 16) -> FeatureSummary:
    """Data reduction from shipping beat intervals instead of waveforms."""
    if n_samples < 0 or n_peaks < 0:
        raise ConfigurationError("counts must be non-negative")
    return FeatureSummary(
        name="ecg_r_peaks",
        input_bits=float(n_samples * sample_bits),
        output_bits=float(n_peaks * interval_bits),
    )


# ---------------------------------------------------------------------------
# Audio: log-mel energies
# ---------------------------------------------------------------------------

def _mel_scale(frequency_hz: np.ndarray | float) -> np.ndarray | float:
    return 2595.0 * np.log10(1.0 + np.asarray(frequency_hz, dtype=float) / 700.0)


def _inverse_mel(mel: np.ndarray | float) -> np.ndarray | float:
    return 700.0 * (10.0 ** (np.asarray(mel, dtype=float) / 2595.0) - 1.0)


def log_mel_energies(signal: np.ndarray, sample_rate_hz: float,
                     frame_seconds: float = 0.025,
                     hop_seconds: float = 0.010,
                     n_mels: int = 40) -> np.ndarray:
    """Compute a log-mel energy spectrogram of shape ``(frames, n_mels)``.

    This is the classic keyword-spotting front end: it reduces a 256 kb/s
    PCM stream to a few kb/s of features, which is exactly the kind of ISA
    stage the paper expects a leaf node to run before Wi-R transmission.
    """
    signal = np.asarray(signal, dtype=float)
    if signal.ndim != 1:
        raise ConfigurationError("expected mono audio")
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample rate must be positive")
    if frame_seconds <= 0 or hop_seconds <= 0:
        raise ConfigurationError("frame and hop must be positive")
    if n_mels <= 0:
        raise ConfigurationError("n_mels must be positive")

    frame = int(round(frame_seconds * sample_rate_hz))
    hop = int(round(hop_seconds * sample_rate_hz))
    if frame <= 0 or hop <= 0:
        raise ConfigurationError("frame/hop too small for the sample rate")
    if signal.size < frame:
        raise ConfigurationError("signal shorter than one frame")

    n_frames = 1 + (signal.size - frame) // hop
    window = np.hanning(frame)
    n_fft = 1
    while n_fft < frame:
        n_fft *= 2
    freqs = np.fft.rfftfreq(n_fft, d=1.0 / sample_rate_hz)

    # Triangular mel filterbank between 40 Hz and Nyquist.
    low_mel = _mel_scale(40.0)
    high_mel = _mel_scale(sample_rate_hz / 2.0)
    mel_points = np.linspace(low_mel, high_mel, n_mels + 2)
    hz_points = _inverse_mel(mel_points)
    filterbank = np.zeros((n_mels, freqs.size))
    for m in range(n_mels):
        left, center, right = hz_points[m], hz_points[m + 1], hz_points[m + 2]
        rising = (freqs - left) / max(center - left, 1e-9)
        falling = (right - freqs) / max(right - center, 1e-9)
        filterbank[m] = np.clip(np.minimum(rising, falling), 0.0, 1.0)

    features = np.empty((n_frames, n_mels))
    for i in range(n_frames):
        chunk = signal[i * hop: i * hop + frame] * window
        spectrum = np.abs(np.fft.rfft(chunk, n=n_fft)) ** 2
        mel_energy = filterbank @ spectrum
        features[i] = np.log(mel_energy + 1e-10)
    return features


def audio_feature_summary(n_samples: int, n_frames: int, n_mels: int,
                          sample_bits: int = 16,
                          feature_bits: int = 8) -> FeatureSummary:
    """Data reduction from shipping log-mel features instead of PCM."""
    if min(n_samples, n_frames, n_mels) < 0:
        raise ConfigurationError("counts must be non-negative")
    return FeatureSummary(
        name="audio_log_mel",
        input_bits=float(n_samples * sample_bits),
        output_bits=float(n_frames * n_mels * feature_bits),
    )


# ---------------------------------------------------------------------------
# IMU: window statistics
# ---------------------------------------------------------------------------

def imu_window_features(window: np.ndarray) -> np.ndarray:
    """Statistical features for one IMU window of shape ``(axes, samples)``.

    Per axis: mean, standard deviation, min, max, RMS and mean absolute
    jerk — the standard hand-crafted HAR feature set.  Returns a flat
    vector of length ``6 * axes``.
    """
    window = np.asarray(window, dtype=float)
    if window.ndim != 2:
        raise ConfigurationError("expected an (axes, samples) window")
    if window.shape[1] < 2:
        raise ConfigurationError("need at least two samples per window")
    jerk = np.diff(window, axis=1)
    features = np.concatenate([
        np.mean(window, axis=1),
        np.std(window, axis=1),
        np.min(window, axis=1),
        np.max(window, axis=1),
        np.sqrt(np.mean(window ** 2, axis=1)),
        np.mean(np.abs(jerk), axis=1),
    ])
    return features


def imu_feature_summary(n_axes: int, n_samples: int,
                        sample_bits: int = 16,
                        feature_bits: int = 32) -> FeatureSummary:
    """Data reduction from shipping window features instead of raw IMU."""
    if n_axes <= 0 or n_samples <= 0:
        raise ConfigurationError("axes and samples must be positive")
    return FeatureSummary(
        name="imu_window_features",
        input_bits=float(n_axes * n_samples * sample_bits),
        output_bits=float(6 * n_axes * feature_bits),
    )
