"""ISA pipeline: chaining data-reduction stages with an energy cost model.

A leaf node's in-sensor analytics block is modelled as an ordered list of
stages, each with a data-rate reduction factor and a compute cost in
joules per input bit (or per operation).  The pipeline reports the output
data rate and the ISA power for a given input rate, which is exactly what
the offload optimizer and the Fig. 1/Fig. 3 reproductions need: the paper
treats ISA power as "~100 uW class" and ISA compute as first-order
negligible relative to radio savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .. import units

#: Energy per primitive ISA operation (multiply-accumulate class) for a
#: microwatt-class always-on DSP in a mature low-power node.  1 pJ/op is a
#: representative value for near-threshold fixed-point MACs.
DEFAULT_ENERGY_PER_OP_JOULES = 1e-12


def isa_compute_energy_joules(operations: float,
                              energy_per_op_joules: float = DEFAULT_ENERGY_PER_OP_JOULES,
                              ) -> float:
    """Energy to execute *operations* primitive ops on the ISA block."""
    if operations < 0:
        raise ConfigurationError("operation count must be non-negative")
    if energy_per_op_joules < 0:
        raise ConfigurationError("energy per op must be non-negative")
    return operations * energy_per_op_joules


@dataclass(frozen=True)
class ISAStage:
    """One data-reduction stage in an ISA pipeline.

    Parameters
    ----------
    name:
        Stage identifier (e.g. ``"mjpeg"``, ``"log-mel"``).
    rate_reduction:
        Output data rate divided by input data rate (0 < value <= 1).
    ops_per_input_bit:
        Primitive operations executed per input bit.
    energy_per_op_joules:
        Energy of one primitive operation.
    """

    name: str
    rate_reduction: float
    ops_per_input_bit: float = 1.0
    energy_per_op_joules: float = DEFAULT_ENERGY_PER_OP_JOULES

    def __post_init__(self) -> None:
        if not 0.0 < self.rate_reduction <= 1.0:
            raise ConfigurationError("rate_reduction must be in (0, 1]")
        if self.ops_per_input_bit < 0:
            raise ConfigurationError("ops_per_input_bit must be non-negative")
        if self.energy_per_op_joules < 0:
            raise ConfigurationError("energy_per_op_joules must be non-negative")

    def output_rate_bps(self, input_rate_bps: float) -> float:
        """Output data rate for a given input rate."""
        if input_rate_bps < 0:
            raise ConfigurationError("input rate must be non-negative")
        return input_rate_bps * self.rate_reduction

    def compute_power_watts(self, input_rate_bps: float) -> float:
        """Average compute power for a given input rate."""
        if input_rate_bps < 0:
            raise ConfigurationError("input rate must be non-negative")
        return input_rate_bps * self.ops_per_input_bit * self.energy_per_op_joules


@dataclass
class ISAPipeline:
    """An ordered chain of :class:`ISAStage` objects."""

    stages: list[ISAStage] = field(default_factory=list)

    def add_stage(self, stage: ISAStage) -> "ISAPipeline":
        """Append a stage and return self (builder style)."""
        self.stages.append(stage)
        return self

    def output_rate_bps(self, input_rate_bps: float) -> float:
        """Data rate leaving the pipeline for a given input rate."""
        rate = input_rate_bps
        for stage in self.stages:
            rate = stage.output_rate_bps(rate)
        return rate

    def total_rate_reduction(self) -> float:
        """Combined output/input rate ratio of all stages."""
        ratio = 1.0
        for stage in self.stages:
            ratio *= stage.rate_reduction
        return ratio

    def compute_power_watts(self, input_rate_bps: float) -> float:
        """Total ISA compute power; each stage sees the previous stage's output."""
        power = 0.0
        rate = input_rate_bps
        for stage in self.stages:
            power += stage.compute_power_watts(rate)
            rate = stage.output_rate_bps(rate)
        return power

    def describe(self, input_rate_bps: float) -> dict[str, float]:
        """Summary used in reports."""
        return {
            "input_rate_bps": input_rate_bps,
            "output_rate_bps": self.output_rate_bps(input_rate_bps),
            "rate_reduction": self.total_rate_reduction(),
            "compute_power_uw": units.to_microwatt(self.compute_power_watts(input_rate_bps)),
            "stages": float(len(self.stages)),
        }


def mjpeg_video_pipeline(quality: int = 50) -> ISAPipeline:
    """The paper's video ISA example: MJPEG-class intra-frame compression.

    Compression ratio scales with quality; ~10:1 at the default quality.
    """
    if not 1 <= quality <= 100:
        raise ConfigurationError("quality must be in 1..100")
    ratio = 0.05 + 0.1 * (quality / 100.0)
    return ISAPipeline(stages=[
        ISAStage(name="mjpeg", rate_reduction=ratio, ops_per_input_bit=4.0),
    ])


def audio_feature_pipeline() -> ISAPipeline:
    """Keyword-spotting front end: log-mel features at ~1/8 the PCM rate."""
    return ISAPipeline(stages=[
        ISAStage(name="log-mel", rate_reduction=0.125, ops_per_input_bit=8.0),
    ])


def biopotential_delta_pipeline() -> ISAPipeline:
    """Delta coding plus beat/event extraction for biopotential streams."""
    return ISAPipeline(stages=[
        ISAStage(name="delta", rate_reduction=0.5, ops_per_input_bit=0.5),
        ISAStage(name="event-extraction", rate_reduction=0.2, ops_per_input_bit=2.0),
    ])
