"""In-sensor analytics (ISA): compression and feature extraction.

Section V of the paper notes that "the ULP nodes in some cases may use low
power in-sensor analytics (ISA) or data compression (example MJPEG
compression for video) to reduce the data volume to be communicated".
This package implements those data-reduction stages together with an
energy cost model, so the offloading optimizer can trade ISA compute
energy against communication energy saved.
"""

from .compression import (
    CompressionResult,
    delta_encode,
    delta_decode,
    run_length_encode,
    run_length_decode,
    downsample,
    quantize_signal,
    dequantize_signal,
    MJPEGLikeCodec,
)
from .features import (
    detect_r_peaks,
    heart_rate_from_peaks,
    log_mel_energies,
    imu_window_features,
    FeatureSummary,
)
from .pipeline import ISAStage, ISAPipeline, isa_compute_energy_joules

__all__ = [
    "CompressionResult",
    "delta_encode",
    "delta_decode",
    "run_length_encode",
    "run_length_decode",
    "downsample",
    "quantize_signal",
    "dequantize_signal",
    "MJPEGLikeCodec",
    "detect_r_peaks",
    "heart_rate_from_peaks",
    "log_mel_energies",
    "imu_window_features",
    "FeatureSummary",
    "ISAStage",
    "ISAPipeline",
    "isa_compute_energy_joules",
]
