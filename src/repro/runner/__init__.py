"""Experiment registry, artifact store and parallel sweep runner.

This subsystem is the single entry point from "experiment name" to
"result rows" used by the CLI, the examples, the benchmarks and the test
suite:

>>> from repro.runner import resolve
>>> spec = resolve("network_scaling")          # or "scaling" or "E8"
>>> result = spec.execute(simulated_seconds=0.5)
>>> len(spec.extract_rows(result)) > 0
True

:class:`SweepRunner` adds process-parallel parameter grids with
deterministic per-task seeding and a digest-keyed JSON artifact cache.
"""

from .artifacts import (
    ARTIFACT_SCHEMA_VERSION,
    artifact_path,
    digest_key,
    load_artifact,
    load_artifacts,
    sanitize,
    write_artifact,
)
from .registry import (
    ExperimentSpec,
    all_specs,
    default_rows,
    experiment_ids,
    register,
    resolve,
)
from .sweep import (
    DEFAULT_OUT_DIR,
    PoolFailure,
    SweepResult,
    SweepRunner,
    SweepTask,
    TaskResult,
    derive_seed,
    expand_grid,
    run_pool,
)

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "DEFAULT_OUT_DIR",
    "ExperimentSpec",
    "PoolFailure",
    "SweepResult",
    "SweepRunner",
    "SweepTask",
    "TaskResult",
    "all_specs",
    "artifact_path",
    "default_rows",
    "derive_seed",
    "digest_key",
    "expand_grid",
    "experiment_ids",
    "load_artifact",
    "load_artifacts",
    "register",
    "resolve",
    "run_pool",
    "sanitize",
    "write_artifact",
]
