"""Central experiment registry.

Every module in :mod:`repro.experiments` registers an
:class:`ExperimentSpec` describing how to run it, how to extract its
report rows and (optionally) how to summarise the result.  The CLI, the
examples, the benchmarks and the sweep runner all resolve experiments
through this registry, so there is exactly one code path from "experiment
name" to "table rows".

The rows contract is normalised here: a spec's ``rows`` extractor always
returns a non-empty ``list[dict]`` regardless of whether the underlying
result exposes ``rows()`` as a method, ``rows`` as an attribute or a
differently named accessor (e.g. Fig. 3's ``device_rows()``).
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..errors import RegistryError

#: Extractor turning a run() result into report rows.
RowsExtractor = Callable[[object], "list[dict[str, object]]"]

#: Extractor turning a run() result into human-readable summary lines.
Summarizer = Callable[[object], "list[str]"]


def default_rows(result: object) -> list[dict[str, object]]:
    """Normalise the rows contract: accept ``rows()`` methods and ``rows`` attributes."""
    rows = getattr(result, "rows", None)
    if rows is None:
        raise RegistryError(
            f"result {type(result).__name__} exposes no 'rows' accessor; "
            "give the ExperimentSpec an explicit rows extractor"
        )
    if callable(rows):
        rows = rows()
    return list(rows)


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the toolkit needs to know about one experiment driver.

    Attributes
    ----------
    id:
        Short CLI name (``"fig1"``, ``"scaling"``, ...).
    eid:
        Paper experiment id (``"E1"``..``"E12"``), used for ordering.
    title:
        One-line description shown by ``repro list``.
    module:
        Short module name under :mod:`repro.experiments`
        (``"network_scaling"``); accepted as an alias when resolving.
    run:
        The driver's ``run`` callable.
    defaults:
        Keyword arguments applied on every execution (CLI ``run``,
        sweeps, benchmarks) unless explicitly overridden.
    rows:
        Extractor from the ``run`` result to report rows.
    summarize:
        Optional extractor producing extra human-readable lines printed
        after the table (reduction factors, agreement fractions, ...).
    sweep_defaults:
        Default parameter grid for ``repro sweep`` when the user supplies
        no ``--grid``: mapping of keyword name to the values swept.
    """

    id: str
    eid: str
    title: str
    module: str
    run: Callable[..., object]
    defaults: Mapping[str, object] = field(default_factory=dict)
    rows: RowsExtractor = default_rows
    summarize: Summarizer | None = None
    sweep_defaults: Mapping[str, Sequence[object]] = field(default_factory=dict)

    def execute(self, **overrides: object) -> object:
        """Run the experiment with defaults merged under ``overrides``."""
        kwargs = {**self.defaults, **overrides}
        return self.run(**kwargs)

    def extract_rows(self, result: object) -> list[dict[str, object]]:
        """Report rows for a result, validated to be non-empty dicts."""
        rows = self.rows(result)
        if not rows:
            raise RegistryError(f"experiment {self.id!r} produced no rows")
        return rows

    def summary_lines(self, result: object) -> list[str]:
        """Human-readable summary lines (empty when no summariser is set)."""
        if self.summarize is None:
            return []
        return list(self.summarize(result))

    def accepts(self, name: str) -> bool:
        """Whether ``run`` takes a keyword parameter called ``name``."""
        try:
            parameters = inspect.signature(self.run).parameters
        except (TypeError, ValueError):  # builtins / C callables
            return False
        if any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in parameters.values()):
            return True
        return name in parameters


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (idempotent for identical re-registration)."""
    existing = _REGISTRY.get(spec.id)
    if existing is not None and existing.module != spec.module:
        raise RegistryError(
            f"experiment id {spec.id!r} registered twice "
            f"({existing.module} and {spec.module})"
        )
    _REGISTRY[spec.id] = spec
    return spec


def _ensure_loaded() -> None:
    importlib.import_module("repro.experiments")


def all_specs() -> list[ExperimentSpec]:
    """Every registered spec, ordered by paper experiment id (E1..E14)."""
    _ensure_loaded()
    return sorted(_REGISTRY.values(), key=lambda spec: int(spec.eid[1:]))


def experiment_ids() -> list[str]:
    """Sorted short names of all registered experiments."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def resolve(name: str) -> ExperimentSpec:
    """Look up a spec by short name, module name or paper id (E1..E14)."""
    _ensure_loaded()
    spec = _REGISTRY.get(name)
    if spec is not None:
        return spec
    lowered = name.lower()
    for candidate in _REGISTRY.values():
        if lowered in (candidate.module.lower(), candidate.eid.lower()):
            return candidate
    known = ", ".join(sorted(_REGISTRY))
    raise RegistryError(f"unknown experiment {name!r} (known: {known})")
