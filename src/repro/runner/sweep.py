"""Process-parallel execution of experiments and parameter sweeps.

A :class:`SweepRunner` expands a parameter grid into tasks, derives a
deterministic per-task seed, fans the tasks out over a
``ProcessPoolExecutor`` and serialises every result to a JSON artifact
(see :mod:`repro.runner.artifacts`).  Because the seeds depend only on
the base seed and the task parameters — never on scheduling order — a
parallel sweep produces bit-identical rows to a serial one, and a
re-run of an unchanged sweep is served entirely from the artifact cache.
"""

from __future__ import annotations

import ast
import dataclasses
import enum
import hashlib
import inspect
import itertools
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from ..errors import ArtifactError, SweepError
from .artifacts import (
    artifact_path,
    canonical_json,
    digest_key,
    load_artifact,
    sanitize,
    write_artifact,
)
from .registry import ExperimentSpec, resolve

#: Default artifact directory for CLI invocations.
DEFAULT_OUT_DIR = Path("artifacts")


def derive_seed(base_seed: int, experiment: str,
                params: Mapping[str, object]) -> int:
    """Deterministic 32-bit seed for one task, independent of schedule order."""
    blob = canonical_json({"base": base_seed, "experiment": experiment,
                           "params": params})
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


def _split_values(values: str) -> list[str]:
    """Split on commas outside brackets and quotes, so tuple values like
    ``(1,2)`` and quoted strings like ``"a,b"`` survive intact."""
    tokens: list[str] = []
    depth = 0
    quote: str | None = None
    current = ""
    for character in values:
        if quote is not None:
            if character == quote:
                quote = None
        elif character in "'\"":
            quote = character
        elif character in "([{":
            depth += 1
        elif character in ")]}":
            depth -= 1
        if character == "," and depth == 0 and quote is None:
            tokens.append(current)
            current = ""
        else:
            current += character
    tokens.append(current)
    return [token for token in tokens if token.strip()]


def parse_grid(assignments: Sequence[str]) -> dict[str, list[object]]:
    """Parse ``key=v1,v2,...`` assignments into a sweep grid.

    The single grid-resolution front end shared by ``repro run --grid``
    and ``repro sweep --grid``, so both commands accept the same syntax
    and emit identical error messages.  Values are
    ``ast.literal_eval``-ed when possible (ints, floats, tuples like
    ``(1,2,4)``) and kept as strings otherwise.
    """
    grid: dict[str, list[object]] = {}
    for assignment in assignments:
        key, separator, values = assignment.partition("=")
        key = key.strip()
        if not separator or not key or not values.strip():
            raise SweepError(
                f"grid assignment {assignment!r} is not of the form key=v1,v2,..."
            )
        if key in grid:
            raise SweepError(f"grid key {key!r} given more than once")
        parsed: list[object] = []
        for token in _split_values(values):
            token = token.strip()
            try:
                parsed.append(ast.literal_eval(token))
            except (ValueError, SyntaxError):
                # Bare words are legitimate string values; anything that
                # *looks* like a literal (brackets, quotes, leading digit
                # or sign, float words like inf/nan) but fails to parse is
                # a user mistake — erroring here beats a TypeError deep
                # inside the experiment.
                if token.lstrip("+-").lower() in ("inf", "infinity", "nan"):
                    try:
                        parsed.append(float(token))
                    except ValueError:
                        raise SweepError(
                            f"grid value {token!r} for {key!r} is not a "
                            "valid Python literal"
                        ) from None
                elif token[0] in "([{'\"+-" or token[0].isdigit():
                    raise SweepError(
                        f"grid value {token!r} for {key!r} is not a valid "
                        "Python literal"
                    ) from None
                else:
                    parsed.append(token)
        grid[key] = parsed
    return grid


def expand_grid(grid: Mapping[str, Sequence[object]]) -> list[dict[str, object]]:
    """Cartesian product of the grid axes, in deterministic key order.

    An axis listing the same value twice would expand into duplicate grid
    points — almost always a typo (``seed=0,0``) that silently halves the
    intended sweep — so duplicates are rejected rather than deduplicated.
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    for key in keys:
        values = grid[key]
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise SweepError(f"grid axis {key!r} must be a sequence of values")
        if len(values) == 0:
            raise SweepError(f"grid axis {key!r} is empty")
        seen: set[str] = set()
        for value in values:
            encoded = canonical_json(value)
            if encoded in seen:
                raise SweepError(
                    f"grid axis {key!r} lists the value {value!r} more than "
                    "once; duplicate grid points are rejected")
            seen.add(encoded)
    return [dict(zip(keys, combination))
            for combination in itertools.product(*(grid[key] for key in keys))]


@dataclass(frozen=True)
class PoolFailure:
    """One worker failure, with the traceback captured inside the worker.

    ``ProcessPoolExecutor`` loses the remote traceback when an exception
    crosses the process boundary; capturing it as text in the worker and
    shipping it back keeps the real failure site visible to the caller.
    """

    kind: str
    message: str
    traceback: str


def _traced_call(function: Callable[..., object], *args: object) -> object:
    """Run one payload, converting any exception into a PoolFailure."""
    try:
        return function(*args)
    except Exception as error:  # noqa: BLE001 — every failure must travel back
        return PoolFailure(kind=type(error).__name__, message=str(error),
                           traceback=traceback.format_exc())


def run_pool(function: Callable[..., object],
             payloads: Sequence[tuple],
             parallel: int) -> list[object]:
    """Map *function* over argument tuples, serially or process-parallel.

    On the process-parallel path the returned list is aligned with
    *payloads* and each element is either the function's return value or
    a :class:`PoolFailure` describing what went wrong in that worker —
    Python drops the remote traceback at the process boundary, so it is
    captured as text inside the worker, and every payload is attempted
    so completed work is never discarded.  The serial in-process path
    simply raises: the exception still carries its own traceback and a
    clean user-input error must stay a one-line error, not a dump.  This
    is the pool the sweep runner and the cohort engine share.
    """
    if parallel < 1:
        raise SweepError("parallel must be >= 1")
    if parallel > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=parallel) as pool:
            futures = [pool.submit(_traced_call, function, *payload)
                       for payload in payloads]
            return [future.result() for future in futures]
    return [function(*payload) for payload in payloads]


@dataclass(frozen=True)
class SweepTask:
    """One fully resolved unit of work."""

    experiment: str
    index: int
    params: dict[str, object]
    kwargs: dict[str, object]
    digest: str


@dataclass(frozen=True)
class TaskResult:
    """Outcome of one task: rows plus provenance.

    ``cached`` means served from an on-disk artifact; ``deduplicated``
    means this task repeated another grid point in the same batch and
    reused its result (fresh or cached) without executing again.
    """

    task: SweepTask
    rows: list[dict[str, object]]
    summary: list[str]
    cached: bool
    elapsed_seconds: float
    path: Path | None
    deduplicated: bool = False
    #: Schema-versioned ``to_dict()`` payload of the experiment result,
    #: when the result type provides one (e.g.
    #: :meth:`repro.netsim.simulator.SimulationResult.to_dict`); round-
    #: trips through the artifact cache so cached tasks keep it too.
    result_document: dict[str, object] | None = None


@dataclass(frozen=True)
class SweepResult:
    """All task results of one sweep, in grid order."""

    experiment: str
    grid: dict[str, tuple[object, ...]]
    results: tuple[TaskResult, ...]
    manifest_path: Path | None = None

    @property
    def cached_count(self) -> int:
        return sum(1 for result in self.results if result.cached)

    def rows(self) -> list[dict[str, object]]:
        """Combined report: every task's rows prefixed with its grid point."""
        combined: list[dict[str, object]] = []
        for result in self.results:
            for row in result.rows:
                combined.append({**{key: sanitize(value)
                                    for key, value in result.task.params.items()},
                                 **row})
        return combined


def _execute(experiment: str, kwargs: Mapping[str, object]) -> dict[str, object]:
    """Worker entry point: run one task and return a picklable payload."""
    spec = resolve(experiment)
    started = time.perf_counter()
    result = spec.run(**kwargs)
    elapsed = time.perf_counter() - started
    to_dict = getattr(result, "to_dict", None)
    return {
        "rows": sanitize(spec.extract_rows(result)),
        "summary": spec.summary_lines(result),
        "elapsed_seconds": elapsed,
        "result": to_dict() if callable(to_dict) else None,
    }


@dataclass
class SweepRunner:
    """Execute experiments — singly or as grids — with caching and parallelism.

    Parameters
    ----------
    out_dir:
        Directory receiving one JSON artifact per task; ``None`` disables
        artifact writing (and therefore caching).
    parallel:
        Worker process count; ``1`` executes in-process.
    base_seed:
        Root of the deterministic per-task seed derivation.
    force:
        Recompute even when a matching artifact already exists.
    """

    out_dir: Path | None = DEFAULT_OUT_DIR
    parallel: int = 1
    base_seed: int = 0
    force: bool = False

    def __post_init__(self) -> None:
        if self.parallel < 1:
            raise SweepError("parallel must be >= 1")
        if self.out_dir is not None:
            self.out_dir = Path(self.out_dir)
        #: Non-fatal problems (e.g. unwritable artifact directory); results
        #: are still returned, callers decide how loudly to surface these.
        self.warnings: list[str] = []

    # -- task construction -------------------------------------------------

    @staticmethod
    def _validate_params(spec: ExperimentSpec,
                         params: Mapping[str, object]) -> None:
        unknown = [key for key in params if not spec.accepts(key)]
        if unknown:
            raise SweepError(
                f"experiment {spec.id!r} does not accept parameter(s) "
                f"{', '.join(sorted(unknown))}"
            )

    @staticmethod
    def _coerce_params(spec: ExperimentSpec,
                       params: Mapping[str, object]) -> dict[str, object]:
        """Coerce string values to enums where run() defaults to an enum.

        CLI grids can only carry literals, so ``--grid objective=leaf_energy``
        arrives as a string; matching it to ``PartitionObjective`` here (by
        value, then member name) keeps explicit grids expressible for
        enum-typed parameters and keeps their cache digests identical to
        the equivalent enum-valued default grids.
        """
        try:
            parameters = inspect.signature(spec.run).parameters
        except (TypeError, ValueError):
            return dict(params)
        coerced: dict[str, object] = {}
        for key, value in params.items():
            default = (parameters[key].default if key in parameters
                       else inspect.Parameter.empty)
            if isinstance(default, enum.Enum) and isinstance(value, str):
                enum_class = type(default)
                try:
                    coerced[key] = enum_class(value)
                except ValueError:
                    try:
                        coerced[key] = enum_class[value.upper()]
                    except KeyError:
                        coerced[key] = value  # run() reports its own error
            else:
                coerced[key] = value
        return coerced

    def _task(self, spec: ExperimentSpec, index: int,
              params: Mapping[str, object],
              inject_seed: bool = True) -> SweepTask:
        # inject_seed distinguishes sweep tasks (each grid point gets a
        # derived seed) from single `run` configurations, which keep the
        # driver's own defaults so `repro run` matches a direct run() call.
        self._validate_params(spec, params)
        params = self._coerce_params(spec, params)
        kwargs = {**spec.defaults, **params}
        if inject_seed and spec.accepts("seed") and "seed" not in kwargs:
            kwargs["seed"] = derive_seed(self.base_seed, spec.id, params)
        return SweepTask(
            experiment=spec.id,
            index=index,
            params=dict(params),
            kwargs=kwargs,
            digest=digest_key(spec.id, kwargs),
        )

    def tasks(self, name: str,
              grid: Mapping[str, Sequence[object]] | None = None) -> list[SweepTask]:
        """Expand a grid (or the spec's default grid) into concrete tasks."""
        spec = resolve(name)
        if grid is None:
            grid = dict(spec.sweep_defaults)
        return [self._task(spec, index, params)
                for index, params in enumerate(expand_grid(grid))]

    # -- execution ---------------------------------------------------------

    def _cached_result(self, task: SweepTask) -> TaskResult | None:
        if self.out_dir is None or self.force:
            return None
        path = artifact_path(self.out_dir, task.experiment, task.digest)
        if not path.is_file():
            return None
        try:
            document = load_artifact(path)
        except ArtifactError:
            return None  # corrupted/foreign file: recompute and overwrite
        result_document = document.get("result")
        return TaskResult(task=task, rows=list(document.get("rows", [])),
                          summary=list(document.get("summary", [])),
                          cached=True, elapsed_seconds=0.0, path=path,
                          result_document=(result_document
                                           if isinstance(result_document, dict)
                                           else None))

    def _store(self, spec: ExperimentSpec, task: SweepTask,
               payload: Mapping[str, object], elapsed: float) -> TaskResult:
        path: Path | None = None
        result_document = payload.get("result")
        if self.out_dir is not None:
            document = {
                "experiment": spec.id,
                "eid": spec.eid,
                "title": spec.title,
                "digest": task.digest,
                "params": task.params,
                "kwargs": task.kwargs,
                "rows": payload["rows"],
                "summary": payload["summary"],
                "elapsed_seconds": elapsed,
            }
            if result_document is not None:
                document["result"] = result_document
            path = self._write_or_warn(
                artifact_path(self.out_dir, task.experiment, task.digest),
                document,
            )
        return TaskResult(task=task, rows=list(payload["rows"]),
                          summary=list(payload["summary"]), cached=False,
                          elapsed_seconds=elapsed, path=path,
                          result_document=(result_document
                                           if isinstance(result_document, dict)
                                           else None))

    def _write_or_warn(self, path: Path,
                       payload: Mapping[str, object]) -> Path | None:
        """Write an artifact; an unwritable destination must never lose
        results that were already computed, so failures become warnings."""
        try:
            return write_artifact(path, payload)
        except ArtifactError as error:
            self.warnings.append(str(error))
            return None

    def run_tasks(self, tasks: Sequence[SweepTask]) -> list[TaskResult]:
        """Execute tasks (cache first, then serial or process-parallel).

        Tasks sharing a digest within one batch (e.g. a grid that repeats
        a point) execute once; the duplicates reuse that result.
        """
        results: dict[int, TaskResult] = {}
        pending: list[SweepTask] = []
        duplicates: dict[str, list[SweepTask]] = {}
        seen_digests: dict[str, SweepTask] = {}
        for task in tasks:
            if task.digest in seen_digests:
                duplicates.setdefault(task.digest, []).append(task)
                continue
            seen_digests[task.digest] = task
            cached = self._cached_result(task)
            if cached is not None:
                results[task.index] = cached
            else:
                pending.append(task)

        if pending:
            specs = {task.experiment: resolve(task.experiment)
                     for task in pending}
            if self.parallel > 1 and len(pending) > 1:
                outcomes = run_pool(
                    _execute,
                    [(task.experiment, task.kwargs) for task in pending],
                    self.parallel,
                )
                # Store every finished result before failing, so completed
                # compute is cached even when a sibling task errored.
                first_error: SweepError | None = None
                for task, outcome in zip(pending, outcomes):
                    if isinstance(outcome, PoolFailure):
                        if first_error is None:
                            first_error = SweepError(self._describe_failure(
                                task, outcome))
                        continue
                    results[task.index] = self._store(
                        specs[task.experiment], task, outcome,
                        outcome["elapsed_seconds"])
                if first_error is not None:
                    raise first_error
            else:
                # Serial: store each result as it completes (a later
                # failure must not discard earlier compute) and let the
                # exception propagate with its own clean traceback.
                for task in pending:
                    payload = _execute(task.experiment, task.kwargs)
                    results[task.index] = self._store(
                        specs[task.experiment], task, payload,
                        payload["elapsed_seconds"])

        for digest, twins in duplicates.items():
            original = results[seen_digests[digest].index]
            for twin in twins:
                results[twin.index] = dataclasses.replace(
                    original, task=twin, deduplicated=True)

        return [results[task.index] for task in tasks]

    @staticmethod
    def _describe_failure(task: SweepTask, failure: PoolFailure) -> str:
        """Error text naming the failing grid point, with the worker traceback."""
        where = (f"at grid point {task.params!r} " if task.params else "")
        return (f"experiment {task.experiment!r} {where}failed: "
                f"{failure.kind}: {failure.message}\n"
                f"worker traceback:\n{failure.traceback}")

    def run_experiment(self, name: str,
                       overrides: Mapping[str, object] | None = None) -> TaskResult:
        """Run one experiment configuration (the CLI ``run`` path)."""
        spec = resolve(name)
        task = self._task(spec, 0, overrides or {}, inject_seed=False)
        return self.run_tasks([task])[0]

    def run_many(self, names: Sequence[str]) -> list[TaskResult]:
        """Run several experiments (each with its defaults) as one batch."""
        tasks = [self._task(resolve(name), index, {}, inject_seed=False)
                 for index, name in enumerate(names)]
        return self.run_tasks(tasks)

    def run_sweep(self, name: str,
                  grid: Mapping[str, Sequence[object]] | None = None) -> SweepResult:
        """Run a whole grid and write a sweep manifest tying it together."""
        spec = resolve(name)
        if grid is None:
            grid = dict(spec.sweep_defaults)
        if not grid:
            raise SweepError(
                f"experiment {spec.id!r} has no default sweep grid; "
                "pass an explicit --grid"
            )
        tasks = self.tasks(spec.id, grid)
        result = SweepResult(
            experiment=spec.id,
            grid={key: tuple(values) for key, values in grid.items()},
            results=tuple(self.run_tasks(tasks)),
        )

        if self.out_dir is not None:
            # The manifest ties the sweep together by task digest; rows
            # live only in the per-task artifacts so `repro report` never
            # prints the same table twice.
            manifest_digest = digest_key(
                f"sweep:{spec.id}",
                {"grid": grid, "base_seed": self.base_seed},
            )
            manifest_path = self._write_or_warn(
                self.out_dir / f"sweep-{spec.id}-{manifest_digest}.json",
                {
                    "experiment": spec.id,
                    "eid": spec.eid,
                    "title": f"{spec.title} (sweep manifest)",
                    "digest": manifest_digest,
                    "sweep": True,
                    "grid": {key: list(values) for key, values in grid.items()},
                    "base_seed": self.base_seed,
                    "tasks": [{"digest": task_result.task.digest,
                               "params": task_result.task.params,
                               "cached": task_result.cached,
                               "deduplicated": task_result.deduplicated}
                              for task_result in result.results],
                },
            )
            result = dataclasses.replace(result, manifest_path=manifest_path)
        return result
