"""Schema-versioned JSON artifacts with a digest-keyed on-disk cache.

Every experiment execution (single run or sweep task) can be serialised
to one JSON file whose name embeds a digest of everything that determines
the result: artifact schema version, ``repro`` version, experiment id and
the fully resolved keyword arguments.  Re-running the same configuration
finds the existing artifact and skips recomputation; changing any input
(or bumping the schema/package version) changes the digest and forces a
fresh run.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
import math
import os
from pathlib import Path
from typing import Mapping

from .. import __version__
from ..errors import ArtifactError

#: Bump when the artifact layout changes incompatibly.
ARTIFACT_SCHEMA_VERSION = 1


def sanitize(value: object) -> object:
    """Coerce a value into plain JSON-serialisable types.

    Handles the types experiment rows actually contain — numpy scalars,
    enums, tuples, nested mappings — and falls back to ``str`` for
    anything exotic, so artifact writing never fails on a new row type.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, enum.Enum):
        return sanitize(value.value)
    if isinstance(value, Mapping):
        return {str(key): sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [sanitize(item) for item in value]
    for attribute in ("item",):  # numpy scalars
        method = getattr(value, attribute, None)
        if callable(method):
            try:
                return sanitize(method())
            except (TypeError, ValueError):
                break
    return str(value)


def _digest_encode(value: object) -> object:
    """Type-preserving encoding for digests.

    Unlike :func:`sanitize` (which coerces for JSON output), this keeps
    distinct configurations distinct: an enum never collides with its
    ``.value`` string, a tuple never collides with a list, ``nan``/``inf``
    never collide with their string spellings.  Collisions here would be
    false cache hits.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return {"~float": repr(value)}
    if isinstance(value, enum.Enum):
        return {"~enum": [type(value).__name__, _digest_encode(value.value)]}
    if isinstance(value, Mapping):
        return {"~map": [[str(key), _digest_encode(item)]
                         for key, item in sorted(value.items(),
                                                 key=lambda kv: str(kv[0]))]}
    if isinstance(value, tuple):
        return {"~tuple": [_digest_encode(item) for item in value]}
    if isinstance(value, list):
        return {"~list": [_digest_encode(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        return {"~set": sorted(repr(item) for item in value)}
    return {"~repr": repr(value)}


def canonical_json(value: object) -> str:
    """Deterministic, type-preserving encoding used for digests and seeds."""
    return json.dumps(_digest_encode(value), sort_keys=True,
                      separators=(",", ":"))


@functools.lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Content hash of the installed ``repro`` sources.

    Folded into every cache digest so editing any model invalidates the
    artifact cache — a reproduction toolkit must never serve pre-edit
    tables from cache after a model change.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(path.relative_to(package_root).as_posix().encode("utf-8"))
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def digest_key(experiment: str, kwargs: Mapping[str, object]) -> str:
    """Cache key for one (experiment, kwargs, source-tree) configuration."""
    blob = canonical_json({
        "schema": ARTIFACT_SCHEMA_VERSION,
        "version": __version__,
        "source": source_fingerprint(),
        "experiment": experiment,
        "kwargs": kwargs,
    })
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def artifact_path(out_dir: Path | str, experiment: str, digest: str) -> Path:
    """Canonical artifact location inside an output directory."""
    return Path(out_dir) / f"{experiment}-{digest}.json"


def write_artifact(path: Path | str,
                   payload: Mapping[str, object]) -> Path:
    """Write one artifact atomically (tmp file + rename)."""
    path = Path(path)
    document = {"schema_version": ARTIFACT_SCHEMA_VERSION,
                "repro_version": __version__,
                "source_fingerprint": source_fingerprint(),
                **sanitize(dict(payload))}
    # Per-process temp name keeps the write atomic even when two CLI
    # invocations race on the same artifact path.
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        # No key sorting: row dicts keep their column order for `repro report`.
        tmp.write_text(json.dumps(document, indent=1), encoding="utf-8")
        tmp.replace(path)
    except OSError as error:
        raise ArtifactError(f"cannot write artifact {path}: {error}") from error
    return path


def load_artifact(path: Path | str) -> dict[str, object]:
    """Read and validate one artifact file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise ArtifactError(f"cannot read artifact {path}: {error}") from error
    if not isinstance(document, dict) or "schema_version" not in document:
        raise ArtifactError(f"{path} is not a repro artifact")
    if document["schema_version"] != ARTIFACT_SCHEMA_VERSION:
        raise ArtifactError(
            f"{path} has schema {document['schema_version']}, "
            f"expected {ARTIFACT_SCHEMA_VERSION}"
        )
    return document


def scan_artifacts_with_paths(
        directory: Path | str,
) -> tuple[list[tuple[Path, dict[str, object]]], int]:
    """Like :func:`scan_artifacts`, but keeps each artifact's file path.

    Callers that report on-disk cost (``repro report``,
    ``repro cohort summarize``) need the path to ``stat`` the JSON file
    and to resolve binary sidecars named inside the document.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ArtifactError(f"{directory} is not a directory")
    entries = []
    incompatible = 0
    for path in sorted(directory.glob("*.json")):
        try:
            entries.append((path, load_artifact(path)))
        except ArtifactError:
            try:
                raw = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(raw, dict) and "schema_version" in raw:
                incompatible += 1
    entries.sort(key=lambda entry: (str(entry[1].get("experiment", "")),
                                    str(entry[1].get("digest", ""))))
    return entries, incompatible


def scan_artifacts(
        directory: Path | str) -> tuple[list[dict[str, object]], int]:
    """Valid artifacts in a directory, plus a count of incompatible ones.

    Unrelated JSON files are silently skipped; files that *are* repro
    artifacts but carry a different schema version are counted so callers
    can tell "empty directory" apart from "artifacts from another version".
    """
    entries, incompatible = scan_artifacts_with_paths(directory)
    return [document for _, document in entries], incompatible


def load_artifacts(directory: Path | str) -> list[dict[str, object]]:
    """All valid artifacts in a directory, sorted by experiment then digest."""
    return scan_artifacts(directory)[0]
