"""Communication substrate for the Internet of Bodies.

The paper's central technical argument is that radiative RF communication
is the wrong modality for body-area networks: its per-bit energy dwarfs
computation, which forces every wearable to carry a CPU.  The alternative
it champions is Wi-R / electro-quasistatic human body communication
(EQS-HBC) at <=100 pJ/bit.  This package models all of the candidate
"artificial nervous system" technologies on a common
:class:`~repro.comm.link.CommTechnology` interface:

* :mod:`repro.comm.eqs_hbc` — Wi-R / EQS-HBC (capacitive voltage-mode
  body channel, published transceiver operating points).
* :mod:`repro.comm.ble` — Bluetooth Low Energy baseline.
* :mod:`repro.comm.wifi` — Wi-Fi baseline for hub-to-cloud links.
* :mod:`repro.comm.nfmi` — near-field magnetic induction.
* :mod:`repro.comm.channel` — physical channel models (EQS body channel
  transfer function, free-space RF path loss, body shadowing).
* :mod:`repro.comm.budget` — link budgets: channel gain + noise floor
  composed into SNR → BER → packet error rate.
* :mod:`repro.comm.security` — physical-security / leakage-range model.
* :mod:`repro.comm.mac` — TDMA / polling MAC for sharing one hub among
  many leaf nodes.
"""

from .link import (
    CommTechnology,
    LinkBudgetReport,
    TransferCost,
    transfer_cost,
    compare_technologies,
)
from .channel import (
    EQSChannelModel,
    RFPathLossModel,
    BodyShadowingModel,
    eqs_channel_gain_db,
    free_space_path_loss_db,
)
from .budget import (
    LinkBudget,
    eqs_link_budget,
    packet_error_rate,
    rf_link_budget,
    snr_to_bit_error_rate,
)
from .eqs_hbc import (
    EQSHBCTransceiver,
    WiRLink,
    wir_commercial,
    wir_leaf_node,
    eqs_hbc_sub_uw,
    eqs_hbc_bodywire,
    wir_downlink_capable,
)
from .mqs_hbc import MQSHBCTransceiver, mqs_implant_link, mqs_wearable_relay
from .ble import BLERadio, ble_1m_phy, ble_2m_phy, ble_coded_phy
from .wifi import WiFiRadio, wifi_hub_uplink
from .nfmi import NFMIRadio, nfmi_hearing_aid
from .security import SecurityModel, leakage_distance_metres, interception_report
from .mac import TDMASchedule, PollingMAC, SlotAssignment

__all__ = [
    "CommTechnology",
    "LinkBudgetReport",
    "TransferCost",
    "transfer_cost",
    "compare_technologies",
    "EQSChannelModel",
    "RFPathLossModel",
    "BodyShadowingModel",
    "eqs_channel_gain_db",
    "free_space_path_loss_db",
    "LinkBudget",
    "eqs_link_budget",
    "rf_link_budget",
    "packet_error_rate",
    "snr_to_bit_error_rate",
    "EQSHBCTransceiver",
    "WiRLink",
    "wir_commercial",
    "wir_leaf_node",
    "eqs_hbc_sub_uw",
    "eqs_hbc_bodywire",
    "wir_downlink_capable",
    "MQSHBCTransceiver",
    "mqs_implant_link",
    "mqs_wearable_relay",
    "BLERadio",
    "ble_1m_phy",
    "ble_2m_phy",
    "ble_coded_phy",
    "WiFiRadio",
    "wifi_hub_uplink",
    "NFMIRadio",
    "nfmi_hearing_aid",
    "SecurityModel",
    "leakage_distance_metres",
    "interception_report",
    "TDMASchedule",
    "PollingMAC",
    "SlotAssignment",
]
