"""Bluetooth Low Energy radio model — the paper's primary baseline.

The paper's comparison points for Wi-R are that it is ">10X faster than
BLE" and "<100X lower power than BLE", and that RF radios in general burn
1--10 mW while radiating a 5--10 m bubble around the body.  The BLE model
here is a duty-cycled connection-event radio with published per-bit
energies (a few nJ/bit at the application layer) and the three standard
PHYs (1M, 2M, coded).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .. import units
from .channel import RFPathLossModel
from .link import CommTechnology


@dataclass
class BLERadio(CommTechnology):
    """A duty-cycled BLE radio.

    Parameters
    ----------
    name:
        Identifier used in reports.
    phy_rate:
        Raw PHY rate in bit/s (1 Mb/s, 2 Mb/s or 125/500 kb/s coded).
    goodput_fraction:
        Fraction of the PHY rate available to the application once
        connection events, inter-frame spaces and protocol overhead are
        paid (measured BLE application throughput on the 1M PHY is
        typically 300--500 kb/s, i.e. 30--50 % of the PHY rate).
    tx_power_watts / rx_power_watts:
        Radio active power while transmitting / receiving, including the
        MCU's radio-driver share (datasheet values are 3--30 mW).
    sleep_power_watts:
        Standby power between connection events.
    connection_event_energy_joules / connection_event_latency_seconds:
        Per-wakeup overhead of a connection event.
    tx_power_dbm / rx_sensitivity_dbm:
        RF link-budget parameters used for the radiation-range analysis.
    """

    name: str
    phy_rate: float
    goodput_fraction: float = 0.37
    tx_power_watts: float = units.milliwatt(10.0)
    rx_power_watts: float = units.milliwatt(10.0)
    sleep_power_watts: float = units.microwatt(3.0)
    connection_event_energy_joules: float = units.microjoule(30.0)
    connection_event_latency_seconds: float = units.milliseconds(7.5)
    tx_power_dbm: float = 0.0
    rx_sensitivity_dbm: float = -95.0
    path_loss: RFPathLossModel = field(default_factory=RFPathLossModel)
    body_confined: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.phy_rate <= 0:
            raise ConfigurationError("PHY rate must be positive")
        if not 0.0 < self.goodput_fraction <= 1.0:
            raise ConfigurationError("goodput fraction must be in (0, 1]")
        for attr in ("tx_power_watts", "rx_power_watts", "sleep_power_watts",
                     "connection_event_energy_joules",
                     "connection_event_latency_seconds"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")

    # -- CommTechnology interface -------------------------------------------------
    def data_rate_bps(self) -> float:
        return self.phy_rate * self.goodput_fraction

    def tx_energy_per_bit(self) -> float:
        return self.tx_power_watts / self.data_rate_bps()

    def rx_energy_per_bit(self) -> float:
        return self.rx_power_watts / self.data_rate_bps()

    def tx_active_power(self) -> float:
        return self.tx_power_watts

    def rx_active_power(self) -> float:
        return self.rx_power_watts

    def sleep_power(self) -> float:
        return self.sleep_power_watts

    def wakeup_energy(self) -> float:
        return self.connection_event_energy_joules

    def wakeup_latency(self) -> float:
        return self.connection_event_latency_seconds

    def max_range_metres(self) -> float:
        """Free-space range for the configured power and sensitivity."""
        return self.path_loss.range_for_sensitivity(
            self.tx_power_dbm, self.rx_sensitivity_dbm,
        )

    def radiation_range_metres(self) -> float:
        """Distance to which the signal is still decodable off-body.

        This is the privacy-relevant 'bubble' the paper contrasts with the
        1--2 m body channel; free-space (no body shadowing) is assumed for
        an eavesdropper with line of sight.
        """
        unshadowed = RFPathLossModel(
            frequency_hz=self.path_loss.frequency_hz, body_worn=False,
        )
        return unshadowed.range_for_sensitivity(
            self.tx_power_dbm, self.rx_sensitivity_dbm,
        )


def ble_1m_phy() -> BLERadio:
    """BLE 4.x/5.x 1M PHY: ~1 Mb/s raw, ~10 mW active."""
    return BLERadio(name="BLE 1M PHY", phy_rate=units.megabit_per_second(1.0))


def ble_2m_phy() -> BLERadio:
    """BLE 5 2M PHY: ~2 Mb/s raw, slightly higher active power."""
    return BLERadio(
        name="BLE 2M PHY",
        phy_rate=units.megabit_per_second(2.0),
        tx_power_watts=units.milliwatt(12.0),
        rx_power_watts=units.milliwatt(12.0),
    )


def ble_coded_phy() -> BLERadio:
    """BLE 5 coded PHY (S=8): 125 kb/s long-range mode."""
    return BLERadio(
        name="BLE coded PHY",
        phy_rate=units.kilobit_per_second(125.0),
        goodput_fraction=0.6,
        tx_power_watts=units.milliwatt(15.0),
        rx_power_watts=units.milliwatt(15.0),
        tx_power_dbm=8.0,
    )
