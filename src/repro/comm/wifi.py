"""Wi-Fi radio model, used for the hub-to-cloud/fog uplink.

Section V places the on-body hub as the gateway to fog and cloud servers.
The hub is a daily-charged mW-to-W class device, so a conventional Wi-Fi
link is appropriate there; the model exists so the end-to-end network
designer can account for the hub's uplink energy as well.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .. import units
from .channel import RFPathLossModel
from .link import CommTechnology


@dataclass
class WiFiRadio(CommTechnology):
    """A Wi-Fi (802.11n/ac-class) station radio."""

    name: str
    phy_rate: float = units.megabit_per_second(150.0)
    goodput_fraction: float = 0.6
    tx_power_watts: float = 0.8
    rx_power_watts: float = 0.5
    sleep_power_watts: float = units.milliwatt(1.0)
    wakeup_energy_joules: float = units.millijoule(5.0)
    wakeup_latency_seconds: float = units.milliseconds(20.0)
    tx_power_dbm: float = 15.0
    rx_sensitivity_dbm: float = -82.0
    path_loss: RFPathLossModel = field(
        default_factory=lambda: RFPathLossModel(frequency_hz=5.0e9, body_worn=False)
    )
    body_confined: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if self.phy_rate <= 0:
            raise ConfigurationError("PHY rate must be positive")
        if not 0.0 < self.goodput_fraction <= 1.0:
            raise ConfigurationError("goodput fraction must be in (0, 1]")

    def data_rate_bps(self) -> float:
        return self.phy_rate * self.goodput_fraction

    def tx_energy_per_bit(self) -> float:
        return self.tx_power_watts / self.data_rate_bps()

    def rx_energy_per_bit(self) -> float:
        return self.rx_power_watts / self.data_rate_bps()

    def tx_active_power(self) -> float:
        return self.tx_power_watts

    def rx_active_power(self) -> float:
        return self.rx_power_watts

    def sleep_power(self) -> float:
        return self.sleep_power_watts

    def wakeup_energy(self) -> float:
        return self.wakeup_energy_joules

    def wakeup_latency(self) -> float:
        return self.wakeup_latency_seconds

    def max_range_metres(self) -> float:
        return self.path_loss.range_for_sensitivity(
            self.tx_power_dbm, self.rx_sensitivity_dbm, max_distance_metres=200.0,
        )


def wifi_hub_uplink() -> WiFiRadio:
    """Hub uplink to a home access point (fog/cloud gateway)."""
    return WiFiRadio(name="Wi-Fi hub uplink")
