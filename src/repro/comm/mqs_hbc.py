"""Magneto-quasistatic human body communication (MQS-HBC).

Section IV-B closes with the paper's future-work direction: "exploring
body-assisted communication for implantable devices in EQS regime and
beyond using Magneto-Quasistatic Human Body Communication leveraging the
human body's transparency to magnetic fields."  This module models that
extension so the designer can place *implanted* leaf nodes:

* the body is essentially transparent to low-frequency magnetic fields,
  so an MQS link suffers almost no tissue absorption — unlike RF — but
  its coupling falls off steeply with coil separation (near-field
  |H| ~ 1/r^3);
* published biphasic quasistatic / MQS implant links (e.g. ref [22],
  Nature Electronics 2023) reach tens-to-hundreds of kb/s at tens of
  pJ/bit through several centimetres of tissue.

The transceiver model mirrors :class:`~repro.comm.eqs_hbc.EQSHBCTransceiver`
so it plugs into every existing analysis (link comparison, battery-life
projection, partitioning).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError, LinkBudgetError
from .. import units
from .link import CommTechnology

#: Upper frequency of the magneto-quasistatic regime used here (40.68 MHz
#: ISM band is the usual ceiling for inductive implant links).
MQS_MAX_FREQUENCY_HZ = 40.68e6

#: Relative permeability of human tissue is ~1: magnetic fields pass
#: through the body essentially unattenuated (the property the paper
#: leverages), so the only tissue-dependent loss we model is a small
#: eddy-current term per centimetre of depth.
TISSUE_EDDY_LOSS_DB_PER_CM = 0.1


@dataclass
class MQSHBCTransceiver(CommTechnology):
    """A magneto-quasistatic (inductively coupled) body transceiver."""

    name: str
    data_rate: float
    energy_per_bit: float
    carrier_frequency_hz: float = 13.56e6
    coil_radius_metres: float = 0.01
    sleep_power_watts: float = units.nanowatt(50.0)
    wakeup_energy_joules: float = units.nanojoule(20.0)
    wakeup_latency_seconds: float = units.milliseconds(0.2)
    max_link_distance_metres: float = 0.3
    body_confined: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise ConfigurationError("data rate must be positive")
        if self.energy_per_bit < 0:
            raise ConfigurationError("energy per bit must be non-negative")
        if not 0 < self.carrier_frequency_hz <= MQS_MAX_FREQUENCY_HZ:
            raise ConfigurationError(
                "MQS carriers must be in (0, 40.68 MHz], got "
                f"{self.carrier_frequency_hz:.3g} Hz"
            )
        if self.coil_radius_metres <= 0:
            raise ConfigurationError("coil radius must be positive")
        if self.max_link_distance_metres <= 0:
            raise ConfigurationError("max link distance must be positive")

    # -- CommTechnology interface -------------------------------------------------
    def data_rate_bps(self) -> float:
        return self.data_rate

    def tx_energy_per_bit(self) -> float:
        return self.energy_per_bit

    def rx_energy_per_bit(self) -> float:
        return self.energy_per_bit

    def tx_active_power(self) -> float:
        return self.energy_per_bit * self.data_rate

    def rx_active_power(self) -> float:
        return self.energy_per_bit * self.data_rate

    def sleep_power(self) -> float:
        return self.sleep_power_watts

    def wakeup_energy(self) -> float:
        return self.wakeup_energy_joules

    def wakeup_latency(self) -> float:
        return self.wakeup_latency_seconds

    def max_range_metres(self) -> float:
        return self.max_link_distance_metres

    # -- MQS-specific channel physics ---------------------------------------------
    def coupling_loss_db(self, distance_metres: float,
                         tissue_depth_metres: float = 0.0) -> float:
        """Near-field coupling loss between two coaxial coils.

        The mutual-inductance (voltage) coupling of small coils falls as
        ``1/d^3`` once the separation exceeds the coil radius, i.e.
        60 dB per decade of distance; tissue adds only a small eddy-current
        loss because mu_r ~ 1.
        """
        if distance_metres <= 0:
            raise ConfigurationError("distance must be positive")
        if tissue_depth_metres < 0:
            raise ConfigurationError("tissue depth must be non-negative")
        effective = max(distance_metres, self.coil_radius_metres)
        geometric = 60.0 * math.log10(effective / self.coil_radius_metres)
        tissue = TISSUE_EDDY_LOSS_DB_PER_CM * tissue_depth_metres * 100.0
        return geometric + tissue

    def link_closes(self, distance_metres: float,
                    tissue_depth_metres: float = 0.0,
                    max_loss_db: float = 60.0) -> bool:
        """Whether the inductive link budget closes at *distance_metres*."""
        if distance_metres > self.max_link_distance_metres:
            return False
        return self.coupling_loss_db(distance_metres, tissue_depth_metres) \
            <= max_loss_db

    def require_link(self, distance_metres: float,
                     tissue_depth_metres: float = 0.0) -> None:
        """Raise :class:`LinkBudgetError` if the link cannot close."""
        if not self.link_closes(distance_metres, tissue_depth_metres):
            raise LinkBudgetError(
                f"MQS link does not close over {distance_metres:.2f} m "
                f"({tissue_depth_metres * 100.0:.0f} cm of tissue)"
            )


def mqs_implant_link() -> MQSHBCTransceiver:
    """Implant-class MQS link: 100 kb/s at ~30 pJ/bit through tissue."""
    return MQSHBCTransceiver(
        name="MQS-HBC implant link",
        data_rate=units.kilobit_per_second(100.0),
        energy_per_bit=units.picojoule_per_bit(30.0),
        carrier_frequency_hz=units.megahertz(13.56),
        max_link_distance_metres=0.2,
    )


def mqs_wearable_relay() -> MQSHBCTransceiver:
    """On-skin relay coil that bridges an implant to the Wi-R body bus."""
    return MQSHBCTransceiver(
        name="MQS-HBC wearable relay",
        data_rate=units.kilobit_per_second(250.0),
        energy_per_bit=units.picojoule_per_bit(50.0),
        carrier_frequency_hz=units.megahertz(13.56),
        coil_radius_metres=0.015,
        max_link_distance_metres=0.3,
    )
