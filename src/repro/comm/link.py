"""Common link abstraction shared by every communication technology.

A :class:`CommTechnology` answers three questions the experiments need:

* how fast can it move bits (``data_rate_bps``),
* what does a bit cost in energy at the transmitter and receiver
  (``tx_energy_per_bit`` / ``rx_energy_per_bit``), and
* what does the link electronics burn while idle or sleeping.

On top of that, :func:`transfer_cost` turns "send N bits" into energy and
latency for both ends of the link, including per-transfer wake-up
overheads — the quantity the offloading and partitioning optimizers in
:mod:`repro.core` minimise.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from ..errors import ConfigurationError, LinkBudgetError
from .. import units


class CommTechnology(abc.ABC):
    """Abstract base class for every modelled link technology.

    Concrete subclasses must provide two attributes in addition to the
    abstract methods below:

    * ``name`` — human-readable technology name (e.g. ``"Wi-R (EQS-HBC)"``);
    * ``body_confined`` — whether the signal is physically confined near
      the body (EQS/NFMI) as opposed to radiated into the room (RF).

    They are declared as bare annotations (no class-level defaults) so
    that dataclass subclasses can declare their own required fields.
    """

    name: str
    body_confined: bool

    @abc.abstractmethod
    def data_rate_bps(self) -> float:
        """Sustained application-level data rate in bits per second."""

    @abc.abstractmethod
    def tx_energy_per_bit(self) -> float:
        """Transmit-side energy per bit in joules/bit."""

    @abc.abstractmethod
    def rx_energy_per_bit(self) -> float:
        """Receive-side energy per bit in joules/bit."""

    @abc.abstractmethod
    def tx_active_power(self) -> float:
        """Transmit-side active power in watts while streaming."""

    @abc.abstractmethod
    def rx_active_power(self) -> float:
        """Receive-side active power in watts while streaming."""

    def sleep_power(self) -> float:
        """Power burnt while the transceiver sleeps (default: zero)."""
        return 0.0

    def wakeup_energy(self) -> float:
        """Energy cost of waking the link for one transfer (default: zero)."""
        return 0.0

    def wakeup_latency(self) -> float:
        """Latency of waking the link for one transfer (default: zero)."""
        return 0.0

    def max_range_metres(self) -> float:
        """Maximum usable link distance in metres."""
        return math.inf

    def average_power_at_rate(self, offered_rate_bps: float,
                              direction: str = "tx") -> float:
        """Average power when carrying *offered_rate_bps* with duty cycling.

        The transceiver streams at its native rate for the duty-cycled
        fraction of time and sleeps otherwise.  Raises
        :class:`LinkBudgetError` if the offered rate exceeds the link rate.
        """
        if offered_rate_bps < 0:
            raise ConfigurationError("offered rate must be non-negative")
        native = self.data_rate_bps()
        if offered_rate_bps > native:
            raise LinkBudgetError(
                f"{self.name}: offered rate {offered_rate_bps:.3g} bit/s exceeds "
                f"link rate {native:.3g} bit/s"
            )
        if direction == "tx":
            active = self.tx_active_power()
        elif direction == "rx":
            active = self.rx_active_power()
        else:
            raise ConfigurationError(f"direction must be 'tx' or 'rx', got {direction!r}")
        if native == 0.0:
            return self.sleep_power()
        duty = offered_rate_bps / native
        return duty * active + (1.0 - duty) * self.sleep_power()

    def describe(self) -> dict[str, float | str | bool]:
        """Summary of the link's headline numbers (for reports)."""
        return {
            "name": self.name,
            "body_confined": self.body_confined,
            "data_rate_bps": self.data_rate_bps(),
            "tx_energy_pj_per_bit": units.to_picojoule_per_bit(self.tx_energy_per_bit()),
            "rx_energy_pj_per_bit": units.to_picojoule_per_bit(self.rx_energy_per_bit()),
            "tx_active_power_uw": units.to_microwatt(self.tx_active_power()),
            "rx_active_power_uw": units.to_microwatt(self.rx_active_power()),
            "sleep_power_uw": units.to_microwatt(self.sleep_power()),
            "max_range_m": self.max_range_metres(),
        }


@dataclass(frozen=True)
class TransferCost:
    """Cost of moving a payload across a link, for both endpoints."""

    technology: str
    payload_bits: float
    tx_energy_joules: float
    rx_energy_joules: float
    latency_seconds: float

    @property
    def total_energy_joules(self) -> float:
        """Combined transmitter + receiver energy."""
        return self.tx_energy_joules + self.rx_energy_joules

    @property
    def tx_energy_per_bit(self) -> float:
        """Effective transmit energy per bit including overheads."""
        if self.payload_bits == 0:
            return 0.0
        return self.tx_energy_joules / self.payload_bits


def transfer_cost(technology: CommTechnology, payload_bits: float,
                  include_wakeup: bool = True) -> TransferCost:
    """Energy and latency to move *payload_bits* across *technology*.

    The transmit energy is ``payload * tx_energy_per_bit`` plus the
    one-time wake-up energy; latency is serialization time plus wake-up
    latency.  Receiver energy is accounted symmetrically (the receiver is
    awake for the same serialization window).
    """
    if payload_bits < 0:
        raise ConfigurationError("payload must be non-negative")
    rate = technology.data_rate_bps()
    if payload_bits > 0 and rate <= 0:
        raise LinkBudgetError(f"{technology.name}: zero data rate cannot carry payload")
    serialization = payload_bits / rate if rate > 0 else 0.0
    tx_energy = payload_bits * technology.tx_energy_per_bit()
    rx_energy = payload_bits * technology.rx_energy_per_bit()
    latency = serialization
    if include_wakeup and payload_bits > 0:
        tx_energy += technology.wakeup_energy()
        rx_energy += technology.wakeup_energy()
        latency += technology.wakeup_latency()
    return TransferCost(
        technology=technology.name,
        payload_bits=payload_bits,
        tx_energy_joules=tx_energy,
        rx_energy_joules=rx_energy,
        latency_seconds=latency,
    )


@dataclass(frozen=True)
class LinkBudgetReport:
    """Side-by-side comparison row produced by :func:`compare_technologies`."""

    name: str
    data_rate_bps: float
    tx_energy_pj_per_bit: float
    tx_active_power_uw: float
    body_confined: bool
    range_metres: float

    def rate_ratio_over(self, other: "LinkBudgetReport") -> float:
        """How many times faster this link is than *other*."""
        if other.data_rate_bps == 0:
            return math.inf
        return self.data_rate_bps / other.data_rate_bps

    def power_ratio_over(self, other: "LinkBudgetReport") -> float:
        """How many times more active power this link burns than *other*."""
        if other.tx_active_power_uw == 0:
            return math.inf
        return self.tx_active_power_uw / other.tx_active_power_uw


def compare_technologies(technologies: list[CommTechnology]) -> list[LinkBudgetReport]:
    """Build comparison rows for a list of technologies (claims table E4)."""
    reports = []
    for tech in technologies:
        reports.append(LinkBudgetReport(
            name=tech.name,
            data_rate_bps=tech.data_rate_bps(),
            tx_energy_pj_per_bit=units.to_picojoule_per_bit(tech.tx_energy_per_bit()),
            tx_active_power_uw=units.to_microwatt(tech.tx_active_power()),
            body_confined=tech.body_confined,
            range_metres=tech.max_range_metres(),
        ))
    return reports
