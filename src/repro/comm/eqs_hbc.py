"""Wi-R / electro-quasistatic human body communication transceivers.

The paper anchors Wi-R on three published operating points:

* Sub-uWrComm (ref [21]): 415 nW at 1--10 kb/s, physically and
  mathematically secure EQS-HBC node.
* BodyWire (ref [20]): 6.3 pJ/bit at 30 Mb/s broadband interference-robust
  HBC transceiver.
* Wi-R commercial implementation (refs [29], [30]): 4 Mb/s at ~100 pJ/bit.

:class:`EQSHBCTransceiver` captures an operating point (rate, energy per
bit, carrier frequency) and layers the sleep/wake behaviour needed for
duty-cycled nodes.  :class:`WiRLink` binds two transceivers to an
:class:`~repro.comm.channel.EQSChannelModel` and a body-channel length,
verifying that the link budget closes before reporting costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError, LinkBudgetError
from .. import units
from .channel import EQSChannelModel, EQS_MAX_FREQUENCY_HZ
from .link import CommTechnology


@dataclass
class EQSHBCTransceiver(CommTechnology):
    """An EQS-HBC transceiver at a fixed operating point.

    Parameters
    ----------
    name:
        Identifier used in reports.
    data_rate:
        Raw link rate in bit/s.
    energy_per_bit:
        Transmit energy per bit in J/bit (the paper's headline metric).
    rx_energy_per_bit_joules:
        Receive energy per bit; defaults to the transmit value (EQS-HBC
        receivers are of comparable complexity to transmitters).
    carrier_frequency_hz:
        Operating carrier; must remain in the EQS regime (<= 30 MHz).
    sleep_power_watts:
        Sleep/standby power of the transceiver.
    wakeup_energy_joules / wakeup_latency_seconds:
        One-time cost of bringing the link up for a transfer.
    tx_swing_volts:
        Electrode drive swing; used with the channel model for link budgets.
    rx_sensitivity_volts:
        Minimum resolvable received swing.
    """

    name: str
    data_rate: float
    energy_per_bit: float
    rx_energy_per_bit_joules: float | None = None
    carrier_frequency_hz: float = 20e6
    sleep_power_watts: float = units.nanowatt(100.0)
    wakeup_energy_joules: float = units.nanojoule(10.0)
    wakeup_latency_seconds: float = units.milliseconds(0.1)
    tx_swing_volts: float = 1.0
    rx_sensitivity_volts: float = 1e-4
    body_confined: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise ConfigurationError("data rate must be positive")
        if self.energy_per_bit < 0:
            raise ConfigurationError("energy per bit must be non-negative")
        if self.carrier_frequency_hz <= 0:
            raise ConfigurationError("carrier frequency must be positive")
        if self.carrier_frequency_hz > EQS_MAX_FREQUENCY_HZ:
            raise ConfigurationError(
                "EQS-HBC transceivers must operate at <= 30 MHz "
                f"(got {self.carrier_frequency_hz:.3g} Hz)"
            )
        if self.rx_energy_per_bit_joules is None:
            self.rx_energy_per_bit_joules = self.energy_per_bit

    # -- CommTechnology interface -------------------------------------------------
    def data_rate_bps(self) -> float:
        return self.data_rate

    def tx_energy_per_bit(self) -> float:
        return self.energy_per_bit

    def rx_energy_per_bit(self) -> float:
        assert self.rx_energy_per_bit_joules is not None
        return self.rx_energy_per_bit_joules

    def tx_active_power(self) -> float:
        return self.energy_per_bit * self.data_rate

    def rx_active_power(self) -> float:
        return self.rx_energy_per_bit() * self.data_rate

    def sleep_power(self) -> float:
        return self.sleep_power_watts

    def wakeup_energy(self) -> float:
        return self.wakeup_energy_joules

    def wakeup_latency(self) -> float:
        return self.wakeup_latency_seconds

    def max_range_metres(self) -> float:
        """EQS fields are confined to the body; range is body-scale."""
        return 2.0


def wir_commercial() -> EQSHBCTransceiver:
    """Wi-R commercial operating point: 4 Mb/s at ~100 pJ/bit (refs [29],[30])."""
    return EQSHBCTransceiver(
        name="Wi-R (EQS-HBC)",
        data_rate=units.megabit_per_second(4.0),
        energy_per_bit=units.picojoule_per_bit(100.0),
        carrier_frequency_hz=units.megahertz(20.0),
    )


def wir_leaf_node() -> EQSHBCTransceiver:
    """Leaf-class Wi-R operating point matching the paper's target spec.

    Section III-B asks for "energy efficiency (<= 100 pJ/bit), low power
    consumption (<= 100s of uW), and high data rates (>= 1 Mbps)"; a
    1 Mb/s, 100 pJ/bit transceiver burns exactly 100 uW while active,
    which is the "Wi-R ~100 uW" block in Fig. 1's human-inspired node.
    """
    return EQSHBCTransceiver(
        name="Wi-R leaf (EQS-HBC)",
        data_rate=units.megabit_per_second(1.0),
        energy_per_bit=units.picojoule_per_bit(100.0),
        carrier_frequency_hz=units.megahertz(20.0),
    )


def wir_downlink_capable() -> EQSHBCTransceiver:
    """A symmetric Wi-R link used for hub-to-leaf actuation traffic."""
    return EQSHBCTransceiver(
        name="Wi-R downlink (EQS-HBC)",
        data_rate=units.megabit_per_second(2.0),
        energy_per_bit=units.picojoule_per_bit(100.0),
        carrier_frequency_hz=units.megahertz(20.0),
    )


def eqs_hbc_sub_uw() -> EQSHBCTransceiver:
    """Sub-uWrComm operating point: 415 nW at 10 kb/s (ref [21])."""
    rate = units.kilobit_per_second(10.0)
    power = units.nanowatt(415.0)
    return EQSHBCTransceiver(
        name="Sub-uWrComm (EQS-HBC)",
        data_rate=rate,
        energy_per_bit=power / rate,
        carrier_frequency_hz=units.megahertz(1.0),
        sleep_power_watts=units.nanowatt(10.0),
    )


def eqs_hbc_bodywire() -> EQSHBCTransceiver:
    """BodyWire operating point: 6.3 pJ/bit at 30 Mb/s (ref [20])."""
    return EQSHBCTransceiver(
        name="BodyWire (EQS-HBC)",
        data_rate=units.megabit_per_second(30.0),
        energy_per_bit=units.picojoule_per_bit(6.3),
        carrier_frequency_hz=units.megahertz(30.0),
    )


@dataclass
class WiRLink:
    """A concrete Wi-R link between two on-body placements.

    Binds a transceiver pair to the EQS channel model and a channel
    length, and checks that the received swing exceeds the receiver
    sensitivity (the link budget) before any transfer is costed.
    """

    transceiver: EQSHBCTransceiver
    channel: EQSChannelModel = field(default_factory=EQSChannelModel)
    channel_length_metres: float = 1.5

    def __post_init__(self) -> None:
        if self.channel_length_metres < 0:
            raise ConfigurationError("channel length must be non-negative")

    def channel_gain_db(self) -> float:
        """Channel gain at the transceiver's carrier (high-Z termination)."""
        return self.channel.channel_gain_db(
            self.channel_length_metres, self.transceiver.carrier_frequency_hz,
        )

    def received_swing_volts(self) -> float:
        """Received electrode swing for the transceiver's drive swing."""
        gain = 10.0 ** (self.channel_gain_db() / 20.0)
        return self.transceiver.tx_swing_volts * gain

    def link_margin_db(self) -> float:
        """Margin of received swing above receiver sensitivity, in dB."""
        import math

        received = self.received_swing_volts()
        if received <= 0:
            return -math.inf
        return 20.0 * math.log10(received / self.transceiver.rx_sensitivity_volts)

    def check_budget(self) -> None:
        """Raise :class:`LinkBudgetError` if the link cannot close."""
        margin = self.link_margin_db()
        if margin < 0:
            raise LinkBudgetError(
                f"Wi-R link budget does not close over "
                f"{self.channel_length_metres} m: margin {margin:.1f} dB"
            )

    def transfer_energy_joules(self, payload_bits: float) -> float:
        """Transmit energy for *payload_bits* after verifying the budget."""
        if payload_bits < 0:
            raise ConfigurationError("payload must be non-negative")
        self.check_budget()
        return payload_bits * self.transceiver.tx_energy_per_bit()

    def transfer_latency_seconds(self, payload_bits: float) -> float:
        """Serialization latency for *payload_bits* after verifying the budget."""
        if payload_bits < 0:
            raise ConfigurationError("payload must be non-negative")
        self.check_budget()
        return payload_bits / self.transceiver.data_rate_bps()
