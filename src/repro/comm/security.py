"""Physical-security (signal leakage) model.

EQS-HBC's selling point beyond energy is physical security: the fields are
"contained around a personal bubble outside the human body" (Section I),
so an eavesdropper must nearly touch the user to intercept data, whereas a
BLE/Wi-Fi packet is decodable across the room.  This module quantifies the
leakage distance for each technology so the claims table can report it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from .link import CommTechnology
from .ble import BLERadio
from .wifi import WiFiRadio
from .eqs_hbc import EQSHBCTransceiver
from .nfmi import NFMIRadio

#: Distance (m) beyond the body surface at which EQS fields have decayed
#: below any practical eavesdropper's noise floor.  Measurements in
#: Das et al. (Scientific Reports 2019, ref [15]) show the signal is not
#: detectable more than ~1 cm away from the skin with capacitive probes;
#: we use 0.15 m as a conservative "personal bubble" bound that includes
#: clothing and instrumentation-grade attackers.
EQS_LEAKAGE_DISTANCE_METRES = 0.15

#: NFMI fields decay as 1/r^3 in amplitude; practical interception range.
NFMI_LEAKAGE_DISTANCE_METRES = 2.0


def leakage_distance_metres(technology: CommTechnology) -> float:
    """Distance at which *technology*'s signal can still be intercepted.

    For radiative technologies this is the free-space decode range at the
    configured transmit power; for body-confined technologies it is the
    empirical containment bound.
    """
    if isinstance(technology, EQSHBCTransceiver):
        return EQS_LEAKAGE_DISTANCE_METRES
    if isinstance(technology, NFMIRadio):
        return NFMI_LEAKAGE_DISTANCE_METRES
    if isinstance(technology, BLERadio):
        return technology.radiation_range_metres()
    if isinstance(technology, WiFiRadio):
        return technology.max_range_metres()
    if technology.body_confined:
        return EQS_LEAKAGE_DISTANCE_METRES
    return technology.max_range_metres()


@dataclass(frozen=True)
class SecurityModel:
    """Evaluates interception risk for a link technology.

    The risk metric is the ratio of the leakage distance to the intended
    channel length: a ratio near 1 means the signal barely escapes the
    intended channel; a ratio of 5--10 (typical for BLE over a 1--2 m body
    channel) means the "attack surface" is a whole room.
    """

    intended_channel_length_metres: float = 1.5

    def __post_init__(self) -> None:
        if self.intended_channel_length_metres <= 0:
            raise ConfigurationError("channel length must be positive")

    def leakage_distance(self, technology: CommTechnology) -> float:
        """Interception distance for *technology*."""
        return leakage_distance_metres(technology)

    def exposure_ratio(self, technology: CommTechnology) -> float:
        """Leakage distance divided by the intended channel length."""
        return self.leakage_distance(technology) / self.intended_channel_length_metres

    def is_physically_secure(self, technology: CommTechnology,
                             threshold_ratio: float = 1.0) -> bool:
        """Whether the signal stays within *threshold_ratio* x channel length."""
        if threshold_ratio <= 0:
            raise ConfigurationError("threshold ratio must be positive")
        return self.exposure_ratio(technology) <= threshold_ratio

    def interception_area_m2(self, technology: CommTechnology) -> float:
        """Ground-plane area within which interception is possible."""
        radius = self.leakage_distance(technology)
        return math.pi * radius * radius


def interception_report(technologies: list[CommTechnology],
                        channel_length_metres: float = 1.5) -> list[dict[str, object]]:
    """Build the security comparison rows used by the claims experiment."""
    model = SecurityModel(intended_channel_length_metres=channel_length_metres)
    rows: list[dict[str, object]] = []
    for tech in technologies:
        rows.append({
            "name": tech.name,
            "body_confined": tech.body_confined,
            "leakage_distance_m": model.leakage_distance(tech),
            "exposure_ratio": model.exposure_ratio(tech),
            "interception_area_m2": model.interception_area_m2(tech),
            "physically_secure": model.is_physically_secure(tech),
        })
    return rows
