"""Medium-access control for the shared body 'bus'.

Section V describes many leaf nodes sharing one on-body hub over Wi-R.
Because the body behaves as a single electrical node in the EQS regime,
all leaves share one broadcast medium and need a MAC.  Two simple,
deterministic schemes are modelled:

* :class:`TDMASchedule` — fixed superframe with per-node slots sized to
  each node's offered rate (what a hub-coordinated Wi-R network would use).
* :class:`PollingMAC` — hub polls each leaf in turn; captures per-poll
  overhead and is the natural fit for very bursty leaves.

Both report per-node goodput, duty cycle and worst-case access latency so
the network-scaling ablation (E8) can sweep the number of leaves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchedulingError


@dataclass(frozen=True)
class SlotAssignment:
    """One node's allocation within a TDMA superframe."""

    node_name: str
    offered_rate_bps: float
    slot_seconds: float
    goodput_bps: float
    duty_cycle: float
    worst_case_latency_seconds: float


@dataclass
class TDMASchedule:
    """A fixed-superframe TDMA schedule over a shared link.

    Parameters
    ----------
    link_rate_bps:
        Raw rate of the shared medium (e.g. 4 Mb/s for Wi-R).
    superframe_seconds:
        Length of one scheduling round.
    guard_seconds:
        Guard/turnaround time charged per slot.
    """

    link_rate_bps: float
    superframe_seconds: float = 0.010
    guard_seconds: float = 50e-6
    _demands: dict[str, float] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.link_rate_bps <= 0:
            raise SchedulingError("link rate must be positive")
        if self.superframe_seconds <= 0:
            raise SchedulingError("superframe must be positive")
        if self.guard_seconds < 0:
            raise SchedulingError("guard time must be non-negative")

    def add_node(self, node_name: str, offered_rate_bps: float) -> None:
        """Register a leaf node with its average offered rate."""
        if offered_rate_bps < 0:
            raise SchedulingError("offered rate must be non-negative")
        if node_name in self._demands:
            raise SchedulingError(f"node {node_name!r} already registered")
        self._demands[node_name] = offered_rate_bps

    def remove_node(self, node_name: str) -> None:
        """Deregister a leaf node."""
        if node_name not in self._demands:
            raise SchedulingError(f"node {node_name!r} is not registered")
        del self._demands[node_name]

    @property
    def node_count(self) -> int:
        """Number of registered nodes."""
        return len(self._demands)

    def total_offered_rate_bps(self) -> float:
        """Sum of all offered rates."""
        return sum(self._demands.values())

    def total_guard_seconds(self) -> float:
        """Guard time consumed per superframe."""
        return self.guard_seconds * self.node_count

    def utilization(self) -> float:
        """Fraction of the superframe needed to serve all demands."""
        payload_time = 0.0
        for rate in self._demands.values():
            bits_per_frame = rate * self.superframe_seconds
            payload_time += bits_per_frame / self.link_rate_bps
        return (payload_time + self.total_guard_seconds()) / self.superframe_seconds

    def is_feasible(self) -> bool:
        """Whether all demands plus guard overhead fit in the superframe."""
        return self.utilization() <= 1.0

    def max_additional_nodes(self, offered_rate_bps: float) -> int:
        """How many more nodes at *offered_rate_bps* the schedule can admit."""
        if offered_rate_bps < 0:
            raise SchedulingError("offered rate must be non-negative")
        per_node_time = (
            offered_rate_bps * self.superframe_seconds / self.link_rate_bps
            + self.guard_seconds
        )
        slack = (1.0 - self.utilization()) * self.superframe_seconds
        if slack <= 0:
            # A saturated superframe admits nobody, whatever they cost.
            return 0
        if per_node_time <= 0:
            raise SchedulingError("per-node time must be positive")
        return int(slack // per_node_time)

    def build(self) -> list[SlotAssignment]:
        """Compute the slot assignment; raises if the schedule is infeasible."""
        if not self.is_feasible():
            raise SchedulingError(
                f"TDMA schedule infeasible: utilization {self.utilization():.2f} "
                f"with {self.node_count} nodes"
            )
        assignments: list[SlotAssignment] = []
        for name, rate in self._demands.items():
            bits_per_frame = rate * self.superframe_seconds
            slot = bits_per_frame / self.link_rate_bps + self.guard_seconds
            goodput = bits_per_frame / self.superframe_seconds
            assignments.append(SlotAssignment(
                node_name=name,
                offered_rate_bps=rate,
                slot_seconds=slot,
                goodput_bps=goodput,
                duty_cycle=slot / self.superframe_seconds,
                worst_case_latency_seconds=self.superframe_seconds,
            ))
        return assignments


@dataclass
class PollingMAC:
    """Hub-driven polling over a shared link.

    Each poll costs ``poll_overhead_bits`` on the downlink plus turnaround
    time; a leaf with data responds with one payload burst.  Used to study
    bursty leaves (e.g. event-driven sensors) where TDMA slots would sit
    mostly idle.
    """

    link_rate_bps: float
    poll_overhead_bits: float = 64.0
    turnaround_seconds: float = 100e-6

    def __post_init__(self) -> None:
        if self.link_rate_bps <= 0:
            raise SchedulingError("link rate must be positive")
        if self.poll_overhead_bits < 0:
            raise SchedulingError("poll overhead must be non-negative")
        if self.turnaround_seconds < 0:
            raise SchedulingError("turnaround must be non-negative")

    def cycle_time_seconds(self, node_count: int,
                           burst_bits: float) -> float:
        """Time to poll *node_count* leaves each sending *burst_bits*."""
        if node_count <= 0:
            raise SchedulingError("node count must be positive")
        if burst_bits < 0:
            raise SchedulingError("burst size must be non-negative")
        per_node = (
            self.poll_overhead_bits / self.link_rate_bps
            + self.turnaround_seconds
            + burst_bits / self.link_rate_bps
        )
        return node_count * per_node

    def per_node_goodput_bps(self, node_count: int, burst_bits: float) -> float:
        """Sustained goodput each leaf achieves under round-robin polling."""
        cycle = self.cycle_time_seconds(node_count, burst_bits)
        if cycle == 0:
            return 0.0
        return burst_bits / cycle

    def max_nodes_for_rate(self, required_rate_bps: float,
                           burst_bits: float) -> int:
        """Largest population for which each leaf still gets *required_rate_bps*."""
        if required_rate_bps <= 0:
            raise SchedulingError("required rate must be positive")
        count = 1
        while self.per_node_goodput_bps(count + 1, burst_bits) >= required_rate_bps:
            count += 1
            if count > 10_000:
                break
        if self.per_node_goodput_bps(1, burst_bits) < required_rate_bps:
            return 0
        return count
