"""Link budgets: channel gain → SNR → BER → packet error rate.

The channel models in :mod:`repro.comm.channel` answer "how much signal
arrives"; this module closes the loop to "how often does a packet get
through".  A :class:`LinkBudget` composes a channel gain with a transmit
level and a noise floor into a signal-to-noise ratio, maps the SNR to a
bit error rate for coherent binary signalling and folds the BER into a
packet error rate for a given packet length — the per-packet erasure
probability the discrete-event simulator draws against (see
:mod:`repro.netsim.reliability`).

Both families of body channel are covered:

* :func:`eqs_link_budget` — voltage-mode EQS-HBC: the electrode swing
  through the capacitive body channel against the receiver's
  input-referred noise.  Posture moves the body-to-ground capacitance
  (see :mod:`repro.body.posture`), so the same transmit swing yields a
  posture-dependent SNR.
* :func:`rf_link_budget` — power-mode radiative RF: transmit power
  through Friis plus body shadowing against the receiver noise floor
  (thermal floor plus whatever interference the environment adds — a
  noisy clinical ward raises the floor, not the path loss).

The BER model is intentionally the textbook coherent-binary curve
``0.5 * erfc(sqrt(SNR / 2))``: it is monotone, parameter-free and spans
the full "perfect link" to "unusable link" range the reliability layer
needs, without pretending to model any particular modem.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ChannelError, LinkBudgetError
from .channel import EQSChannelModel, RFPathLossModel

#: BER below which a link is treated as error-free: at 1e-15 even a
#: maximum-length packet has a sub-1e-10 error probability, far below
#: anything a finite simulation can observe.
NEGLIGIBLE_BER = 1e-15


def snr_to_bit_error_rate(snr_db: float) -> float:
    """Bit error rate of coherent binary signalling at *snr_db*.

    ``BER = 0.5 * erfc(sqrt(SNR / 2))`` — the classic coherent BPSK
    waterfall.  Clamped to [0, 0.5]; 0.5 is a link conveying nothing.
    """
    snr_linear = 10.0 ** (snr_db / 10.0)
    ber = 0.5 * math.erfc(math.sqrt(snr_linear / 2.0))
    if ber < NEGLIGIBLE_BER:
        return 0.0
    return min(ber, 0.5)


def packet_error_rate(bit_error_rate: float, packet_bits: float) -> float:
    """Probability that at least one of *packet_bits* bits is corrupted.

    ``PER = 1 - (1 - BER)^bits``, evaluated via ``expm1``/``log1p`` so
    tiny BERs do not round the PER to zero prematurely.
    """
    if not 0.0 <= bit_error_rate <= 1.0:
        raise LinkBudgetError(
            f"bit error rate must be in [0, 1], got {bit_error_rate}")
    if packet_bits < 0:
        raise LinkBudgetError("packet length must be non-negative")
    if bit_error_rate == 0.0 or packet_bits == 0.0:
        return 0.0
    if bit_error_rate == 1.0:
        return 1.0
    return -math.expm1(packet_bits * math.log1p(-bit_error_rate))


@dataclass(frozen=True)
class LinkBudget:
    """One link's level arithmetic: received level vs noise, in dB.

    All three level parameters share one dB reference — dBV for a
    voltage-mode (EQS) budget, dBm for a power-mode (RF) budget; only
    their differences matter.  ``required_snr_db`` sets the operating
    margin convention: :attr:`margin_db` is how far the SNR sits above
    the level a designer would call "link closes" (the reliability
    experiment sweeps exactly this margin).
    """

    tx_level_db: float
    channel_gain_db: float
    noise_floor_db: float
    required_snr_db: float = 10.0
    implementation_loss_db: float = 0.0

    def __post_init__(self) -> None:
        if self.implementation_loss_db < 0:
            raise LinkBudgetError(
                "implementation loss must be non-negative, got "
                f"{self.implementation_loss_db}")

    @classmethod
    def from_snr_db(cls, snr_db: float,
                    required_snr_db: float = 10.0) -> "LinkBudget":
        """A budget specified directly by its SNR (sweeps, tests)."""
        return cls(tx_level_db=snr_db, channel_gain_db=0.0,
                   noise_floor_db=0.0, required_snr_db=required_snr_db)

    @property
    def received_level_db(self) -> float:
        """Signal level at the receiver input."""
        return (self.tx_level_db + self.channel_gain_db
                - self.implementation_loss_db)

    @property
    def snr_db(self) -> float:
        """Signal-to-noise ratio at the receiver, in dB."""
        return self.received_level_db - self.noise_floor_db

    @property
    def margin_db(self) -> float:
        """SNR headroom above the required detection threshold."""
        return self.snr_db - self.required_snr_db

    def closes(self) -> bool:
        """Whether the link meets its required SNR."""
        return self.margin_db >= 0.0

    def bit_error_rate(self) -> float:
        """BER of the link at its operating SNR."""
        return snr_to_bit_error_rate(self.snr_db)

    def packet_error_rate(self, packet_bits: float) -> float:
        """Probability a *packet_bits*-long packet arrives corrupted."""
        return packet_error_rate(self.bit_error_rate(), packet_bits)


def eqs_link_budget(channel: EQSChannelModel,
                    tx_swing_volts: float,
                    noise_rms_volts: float,
                    distance_metres: float = 1.5,
                    frequency_hz: float = 20e6,
                    termination: str = "high_impedance",
                    required_snr_db: float = 10.0) -> LinkBudget:
    """Voltage-mode budget for a capacitive EQS-HBC link.

    The transmit swing rides the channel's voltage gain; the noise is
    the receiver's input-referred RMS noise.  Swap *channel* for a
    :func:`repro.body.posture.channel_for_posture` result to get the
    posture-dependent budget.
    """
    if tx_swing_volts <= 0:
        raise ChannelError("transmit swing must be positive")
    if noise_rms_volts <= 0:
        raise ChannelError("receiver noise must be positive")
    return LinkBudget(
        tx_level_db=20.0 * math.log10(tx_swing_volts),
        channel_gain_db=channel.channel_gain_db(distance_metres, frequency_hz,
                                                termination),
        noise_floor_db=20.0 * math.log10(noise_rms_volts),
        required_snr_db=required_snr_db,
    )


def power_sum_db(levels_db: list[float] | tuple[float, ...]) -> float:
    """Sum incoherent contributions given in dB: ``10·log10(Σ 10^(x/10))``.

    The multi-body interference primitive: independent transmitters add
    in *power*, so the aggregate level is the dB of the linear sum.  An
    empty (or all ``-inf``) contribution list is no power at all —
    ``-inf`` dB — and adding any contributor can only raise the result,
    which is what makes interference-adjusted noise floors monotone
    non-decreasing in the number of co-located bodies.
    """
    total = 0.0
    for level in levels_db:
        if level == -math.inf:
            continue
        total += 10.0 ** (level / 10.0)
    if total <= 0.0:
        return -math.inf
    return 10.0 * math.log10(total)


def interference_adjusted_noise_floor_dbm(
        noise_floor_dbm: float,
        interference_dbm: float = -math.inf) -> float:
    """Noise floor with an aggregate interference level folded in.

    Power-sums the thermal/ambient floor with the co-channel
    interference arriving from other bodies.  ``-inf`` interference
    (an empty room) returns *noise_floor_dbm* exactly — no float is
    touched, so a one-body environment keeps every golden-hex pin.
    """
    if interference_dbm == -math.inf:
        return noise_floor_dbm
    return power_sum_db([noise_floor_dbm, interference_dbm])


def interference_adjusted_noise_volts(
        noise_rms_volts: float,
        interference_rms_volts: float = 0.0) -> float:
    """Receiver-referred noise with a coupled interference voltage.

    Independent noise voltages add root-sum-square.  Zero interference
    returns *noise_rms_volts* exactly (the EQS side of the one-body
    neutrality contract); any non-zero coupling strictly raises the
    effective noise, preserving monotonicity through the BER waterfall.
    """
    if interference_rms_volts < 0.0:
        raise LinkBudgetError("interference voltage must be non-negative")
    if interference_rms_volts == 0.0:
        return noise_rms_volts
    return math.sqrt(noise_rms_volts * noise_rms_volts
                     + interference_rms_volts * interference_rms_volts)


def rf_link_budget(path_loss: RFPathLossModel,
                   tx_power_dbm: float,
                   noise_floor_dbm: float,
                   distance_metres: float = 1.5,
                   required_snr_db: float = 10.0) -> LinkBudget:
    """Power-mode budget for a radiative RF link (BLE-class).

    ``noise_floor_dbm`` is the in-band noise-plus-interference level —
    raising it is how a scenario models a congested environment without
    touching the propagation model.
    """
    if distance_metres <= 0:
        raise ChannelError("distance must be positive")
    return LinkBudget(
        tx_level_db=tx_power_dbm,
        channel_gain_db=-path_loss.path_loss_db(distance_metres),
        noise_floor_db=noise_floor_dbm,
        required_snr_db=required_snr_db,
    )
