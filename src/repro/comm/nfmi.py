"""Near-field magnetic induction (NFMI) radio model.

The paper names NFMI alongside radio as one of the "popular" body-area
alternatives to EQS communication ("the body ... remains transparent to
magnetic fields"), so it is included as a secondary baseline.  NFMI links
(as used in hearing aids) achieve a few hundred kb/s at single-digit
milliwatts with a ~1 m working range that decays as 1/r^6 in power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .. import units
from .link import CommTechnology


@dataclass
class NFMIRadio(CommTechnology):
    """A near-field magnetic induction transceiver."""

    name: str
    data_rate: float = units.kilobit_per_second(400.0)
    tx_power_watts: float = units.milliwatt(4.0)
    rx_power_watts: float = units.milliwatt(3.0)
    sleep_power_watts: float = units.microwatt(5.0)
    wakeup_energy_joules: float = units.microjoule(10.0)
    wakeup_latency_seconds: float = units.milliseconds(2.0)
    working_range_metres: float = 1.0
    body_confined: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        if self.data_rate <= 0:
            raise ConfigurationError("data rate must be positive")
        if self.working_range_metres <= 0:
            raise ConfigurationError("working range must be positive")

    def data_rate_bps(self) -> float:
        return self.data_rate

    def tx_energy_per_bit(self) -> float:
        return self.tx_power_watts / self.data_rate

    def rx_energy_per_bit(self) -> float:
        return self.rx_power_watts / self.data_rate

    def tx_active_power(self) -> float:
        return self.tx_power_watts

    def rx_active_power(self) -> float:
        return self.rx_power_watts

    def sleep_power(self) -> float:
        return self.sleep_power_watts

    def wakeup_energy(self) -> float:
        return self.wakeup_energy_joules

    def wakeup_latency(self) -> float:
        return self.wakeup_latency_seconds

    def max_range_metres(self) -> float:
        return self.working_range_metres


def nfmi_hearing_aid() -> NFMIRadio:
    """NFMI link typical of hearing-aid ear-to-ear streaming."""
    return NFMIRadio(name="NFMI (hearing aid)")
