"""Physical channel models: EQS body channel and radiative RF path loss.

Two families of models back the paper's "is RF the right technology for
BAN?" argument (Section III-B) and the Wi-R channel description
(Section IV):

* :class:`EQSChannelModel` — a lumped circuit model of capacitive
  electro-quasistatic human body communication.  In the EQS regime
  (<= 30 MHz) a high-impedance (capacitive) termination makes the channel
  gain flat with respect to both frequency and on-body distance, which is
  exactly the property that lets Wi-R treat the whole body as one wire.
  With a low-impedance (50 ohm) termination the same channel shows a
  high-pass response that wastes signal at low frequencies — the model
  exposes both so the termination ablation can be run.
* :class:`RFPathLossModel` — free-space (Friis) path loss with an extra
  body-shadowing loss term for around-the-torso links, used to show why a
  2.4 GHz radio must radiate a room-sized bubble to cover a 1.5 m body
  channel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ChannelError

#: Speed of light in vacuum (m/s).
SPEED_OF_LIGHT = 299_792_458.0

#: Upper edge of the electro-quasistatic regime used by the paper (30 MHz).
EQS_MAX_FREQUENCY_HZ = 30e6

#: Frequency below which body-generated electrophysiological signals live.
ELECTROPHYSIOLOGY_MAX_FREQUENCY_HZ = 10e3


def free_space_path_loss_db(distance_metres: float, frequency_hz: float) -> float:
    """Friis free-space path loss in dB.

    Raises :class:`ChannelError` for non-positive distance or frequency
    (the formula diverges at zero).
    """
    if distance_metres <= 0:
        raise ChannelError(f"distance must be positive, got {distance_metres}")
    if frequency_hz <= 0:
        raise ChannelError(f"frequency must be positive, got {frequency_hz}")
    wavelength = SPEED_OF_LIGHT / frequency_hz
    return 20.0 * math.log10(4.0 * math.pi * distance_metres / wavelength)


@dataclass(frozen=True)
class BodyShadowingModel:
    """Extra loss for RF links whose path is blocked by the torso.

    Measurements of around-the-body 2.4 GHz links report 20--40 dB of
    additional loss for non-line-of-sight placements; we model it as a
    constant penalty plus a per-metre creeping-wave term.  Two devices
    pressed against each other see no torso in the path, so the constant
    penalty ramps in linearly over the first ``ramp_metres`` instead of
    appearing as a step the moment the distance is non-zero — the loss is
    continuous at zero and identical to the historical model beyond the
    ramp.
    """

    base_loss_db: float = 15.0
    per_metre_loss_db: float = 15.0
    ramp_metres: float = 0.05

    def __post_init__(self) -> None:
        if self.ramp_metres < 0:
            raise ChannelError("ramp distance must be non-negative")

    def loss_db(self, around_body_distance_metres: float) -> float:
        """Shadowing loss for a path that hugs the body for *distance*."""
        if around_body_distance_metres < 0:
            raise ChannelError("distance must be non-negative")
        if self.ramp_metres > 0.0:
            ramp = min(around_body_distance_metres / self.ramp_metres, 1.0)
        else:
            ramp = 0.0 if around_body_distance_metres == 0.0 else 1.0
        return (ramp * self.base_loss_db
                + self.per_metre_loss_db * around_body_distance_metres)


@dataclass(frozen=True)
class RFPathLossModel:
    """Radiative RF channel: Friis loss plus optional body shadowing."""

    frequency_hz: float = 2.4e9
    shadowing: BodyShadowingModel = BodyShadowingModel()
    body_worn: bool = True

    def path_loss_db(self, distance_metres: float) -> float:
        """Total path loss at *distance_metres*."""
        loss = free_space_path_loss_db(distance_metres, self.frequency_hz)
        if self.body_worn:
            loss += self.shadowing.loss_db(distance_metres)
        return loss

    def received_power_dbm(self, tx_power_dbm: float,
                           distance_metres: float) -> float:
        """Received power for a given transmit power and distance."""
        return tx_power_dbm - self.path_loss_db(distance_metres)

    #: Shortest distance the range bisection probes.  Friis diverges at
    #: zero, so the search needs a positive floor; 1 mm is far below any
    #: on-body placement and, with the shadowing ramp continuous at zero,
    #: no longer sits on an artificial loss cliff.
    MIN_RANGE_METRES = 1e-3

    def range_for_sensitivity(self, tx_power_dbm: float,
                              sensitivity_dbm: float,
                              max_distance_metres: float = 100.0) -> float:
        """Largest distance at which the link still closes.

        Solved by bisection because the shadowing term makes the loss
        piecewise.  The total loss (Friis plus the ramped shadowing term)
        increases monotonically with distance, so bisection converges on
        the true boundary; returns 0 if the link cannot close even at
        :attr:`MIN_RANGE_METRES` and *max_distance_metres* if it closes
        everywhere in range.
        """
        if self.received_power_dbm(
                tx_power_dbm, self.MIN_RANGE_METRES) < sensitivity_dbm:
            return 0.0
        if self.received_power_dbm(tx_power_dbm, max_distance_metres) >= sensitivity_dbm:
            return max_distance_metres
        low, high = self.MIN_RANGE_METRES, max_distance_metres
        for _ in range(60):
            mid = 0.5 * (low + high)
            if self.received_power_dbm(tx_power_dbm, mid) >= sensitivity_dbm:
                low = mid
            else:
                high = mid
        return low


def eqs_channel_gain_db(
    distance_metres: float,
    frequency_hz: float,
    termination: str = "high_impedance",
) -> float:
    """Convenience wrapper around :class:`EQSChannelModel` defaults."""
    return EQSChannelModel().channel_gain_db(distance_metres, frequency_hz, termination)


@dataclass(frozen=True)
class EQSChannelModel:
    """Lumped circuit model of capacitive EQS human body communication.

    The model follows the bio-physical treatment of Maity et al. (ref
    [17] in the paper): the transmitter couples a voltage onto the body
    through an electrode; the body behaves as a single conductive node
    whose potential is set by the capacitive divider between the
    transmitter's return-path capacitance and the body-to-earth-ground
    capacitance; the receiver picks off a fraction of that potential set
    by its own electrode and load capacitances.

    Parameters (all capacitances in farads)
    ---------------------------------------
    c_return_tx:
        Transmitter return-path capacitance to earth ground (a few
        hundred fF for a small wearable).
    c_body_ground:
        Body-to-earth-ground capacitance (~150 pF for a standing adult).
    c_electrode_rx:
        Receiver electrode coupling capacitance to the body.
    c_load_rx:
        Receiver input/load capacitance (high-impedance termination).
    r_load_ohms:
        Receiver load resistance for the low-impedance (50 ohm) case.
    distance_slope_db_per_m:
        Residual distance dependence of the capacitive channel.  EQS-HBC
        measurements show a nearly flat profile (< a few dB over the whole
        body), so the default is small.
    """

    c_return_tx: float = 300e-15
    c_body_ground: float = 150e-12
    c_electrode_rx: float = 1e-12
    c_load_rx: float = 5e-12
    r_load_ohms: float = 50.0
    distance_slope_db_per_m: float = 1.5

    def body_potential_gain(self) -> float:
        """Voltage division from transmitter swing to whole-body potential."""
        return self.c_return_tx / (self.c_return_tx + self.c_body_ground)

    def receiver_pickup_gain(self) -> float:
        """Voltage division from body potential to a capacitive receiver."""
        return self.c_electrode_rx / (self.c_electrode_rx + self.c_load_rx)

    def channel_gain_db(self, distance_metres: float, frequency_hz: float,
                        termination: str = "high_impedance") -> float:
        """End-to-end voltage gain of the body channel in dB.

        ``termination`` selects the receiver input:

        * ``"high_impedance"`` — capacitive pick-up; the gain is flat with
          frequency throughout the EQS regime and nearly flat with
          distance.  This is the Wi-R operating point.
        * ``"low_impedance"`` — 50 ohm termination; the capacitive source
          impedance forms a high-pass with the load, so low-frequency EQS
          signals are strongly attenuated.
        """
        if distance_metres < 0:
            raise ChannelError("distance must be non-negative")
        if frequency_hz <= 0:
            raise ChannelError("frequency must be positive")
        if frequency_hz > EQS_MAX_FREQUENCY_HZ:
            raise ChannelError(
                "EQS circuit model is only valid up to "
                f"{EQS_MAX_FREQUENCY_HZ:.0f} Hz (electro-quasistatic regime); "
                f"got {frequency_hz:.3g} Hz"
            )
        base_gain = self.body_potential_gain()
        if termination == "high_impedance":
            gain = base_gain * self.receiver_pickup_gain()
        elif termination == "low_impedance":
            # Source capacitance (electrode) against the resistive load
            # forms a first-order high-pass: |H| = wRC / sqrt(1 + (wRC)^2).
            omega = 2.0 * math.pi * frequency_hz
            wrc = omega * self.r_load_ohms * self.c_electrode_rx
            gain = base_gain * (wrc / math.sqrt(1.0 + wrc * wrc))
        else:
            raise ChannelError(
                "termination must be 'high_impedance' or 'low_impedance', "
                f"got {termination!r}"
            )
        gain_db = 20.0 * math.log10(gain)
        gain_db -= self.distance_slope_db_per_m * distance_metres
        return gain_db

    def channel_flatness_db(self, distance_a: float, distance_b: float,
                            frequency_hz: float = 1e6) -> float:
        """Gain variation between two on-body distances (high-Z termination).

        Wi-R's key channel property: the whole body behaves like a single
        node, so this should be only a few dB even finger-to-toe.
        """
        gain_a = self.channel_gain_db(distance_a, frequency_hz)
        gain_b = self.channel_gain_db(distance_b, frequency_hz)
        return abs(gain_a - gain_b)

    def is_quasistatic(self, frequency_hz: float,
                       body_length_metres: float = 2.0) -> bool:
        """Whether *frequency_hz* satisfies the quasistatic criterion.

        The EQS assumption holds when the wavelength is much larger than
        the structure (body) size; the conventional criterion is
        ``wavelength >= 10 x body length``, which puts the ceiling near
        15 MHz for a 2 m body and comfortably contains the paper's
        <= 30 MHz operating region for smaller effective antenna sizes.
        """
        if frequency_hz <= 0:
            raise ChannelError("frequency must be positive")
        wavelength = SPEED_OF_LIGHT / frequency_hz
        return wavelength >= 10.0 * body_length_metres

    def interferes_with_electrophysiology(self, frequency_hz: float) -> bool:
        """Whether a carrier would overlap body-generated signals (<10 kHz)."""
        if frequency_hz <= 0:
            raise ChannelError("frequency must be positive")
        return frequency_hz <= ELECTROPHYSIOLOGY_MAX_FREQUENCY_HZ

    def minimum_detectable_swing(self, receiver_sensitivity_volts: float,
                                 distance_metres: float,
                                 frequency_hz: float = 1e6) -> float:
        """Transmit swing needed for the receiver to resolve the signal."""
        if receiver_sensitivity_volts <= 0:
            raise ChannelError("receiver sensitivity must be positive")
        gain_db = self.channel_gain_db(distance_metres, frequency_hz)
        gain = 10.0 ** (gain_db / 20.0)
        return receiver_sensitivity_volts / gain
