"""Multi-body environments: N scenario bodies sharing one room.

An :class:`EnvironmentSpec` composes N registered scenarios (or inline
:class:`~repro.scenarios.spec.ScenarioSpec` instances) into one shared
RF environment: each body is placed on a floor grid, given an occupancy
window (arrival/departure), optionally handed a per-node controller,
and compiled into a :class:`~repro.netsim.environment.RFEnvironment`
whose interference schedule couples the bodies through their link
budgets (see :mod:`repro.netsim.environment` for the determinism
contract).

What a body *emits* is derived from its spec, not configured by hand:

* its interferer duty factor is the aggregate on-air airtime of its
  leaves (offered air rate over each link's serialisation rate — ARQ
  retries are deliberately not folded in, a documented approximation);
* its RF co-channel level is the loudest RF transmit power on the
  body, discounted by :attr:`EnvironmentSpec.rf_co_channel_fraction`
  (channel hopping means only a fraction of its airtime lands in a
  victim's channel);
* its EQS leakage is the loudest electrode swing times
  :attr:`EnvironmentSpec.eqs_leakage_fraction` — the capacitive body
  channel confines almost everything to the wearer, and only that tiny
  fraction couples outward at the reference metre.

What a body *feels* goes through
:meth:`~repro.scenarios.spec.ReliabilitySpec.node_error_rate_adjusted`:
at every environment epoch (and after every posture event of a
multi-body run) each lossy node's erasure probability is re-derived
from its interference-adjusted link budget, honouring the posture
active at that moment and any transmit-power offset its controller has
actuated.  A one-body environment derives nothing and schedules
nothing — it is bit-identical to running the scenario standalone.

A registry mirroring :mod:`repro.scenarios.registry` names the built-in
environments (``gym_floor``, ``ward_shift``, ``commuter_train``) so the
CLI can list and run them next to the single-body gallery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..comm.eqs_hbc import EQSHBCTransceiver
from ..control import ControllerSpec
from ..errors import ScenarioError
from ..netsim.environment import (
    EnvironmentBody,
    EnvironmentResult,
    InterferenceState,
    RFEnvironment,
)
from ..netsim.simulator import BodyNetworkSimulator
from .registry import get_scenario
from .spec import ScenarioNodeSpec, ScenarioResult, ScenarioSpec, technology_for


def _posture_at(timeline: list[tuple[float, float, str]],
                fraction: float) -> str:
    """The posture active at *fraction* of the run (segments replayed)."""
    for start, end, posture in timeline:
        if start <= fraction < end:
            return posture
    return timeline[-1][2]


@dataclass(frozen=True)
class BodyPlacement:
    """One body (or a replicated group of bodies) in an environment.

    ``scenario`` names a registered scenario or carries an inline spec;
    ``count > 1`` replicates it (``name0..nameN-1``), each replica
    getting its own grid position and derived seed.  The occupancy
    window ``[arrival_fraction, departure_fraction)`` says when the
    body is in the room: outside it the body's nodes sleep and the body
    neither interferes nor is interfered with.  ``controller`` attaches
    a per-node closed-loop controller (one fresh instance per node) to
    every leaf of the body.  ``position_metres`` pins a single body
    explicitly; replicated groups always take grid positions.
    """

    scenario: str | ScenarioSpec
    count: int = 1
    position_metres: tuple[float, float] | None = None
    arrival_fraction: float = 0.0
    departure_fraction: float = 1.0
    controller: ControllerSpec | None = None
    name: str | None = None

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ScenarioError("placement count must be >= 1")
        if self.position_metres is not None and self.count != 1:
            raise ScenarioError(
                "explicit positions are for single bodies; replicated "
                "groups lay out on the environment grid")
        if not (0.0 <= self.arrival_fraction
                <= self.departure_fraction <= 1.0):
            raise ScenarioError(
                "occupancy window must satisfy 0 <= arrival <= departure "
                "<= 1")

    def spec(self) -> ScenarioSpec:
        """Resolve the placed scenario (registry name or inline spec)."""
        if isinstance(self.scenario, ScenarioSpec):
            return self.scenario
        return get_scenario(self.scenario)

    def base_name(self) -> str:
        return self.name if self.name is not None else self.spec().name

    def body_names(self) -> list[str]:
        base = self.base_name()
        if self.count == 1:
            return [base]
        return [f"{base}{index}" for index in range(self.count)]


@dataclass(frozen=True)
class EnvironmentRunResult:
    """Outcome of one environment run: per-body scenario results."""

    environment: str
    duration_seconds: float
    bodies: tuple[ScenarioResult, ...]
    simulated: EnvironmentResult

    def rows(self) -> list[dict[str, object]]:
        """One report row per body (the body name labels the row)."""
        return [body.row() for body in self.bodies]

    @property
    def mean_delivered_fraction(self) -> float:
        return self.simulated.mean_delivered_fraction


@dataclass(frozen=True)
class EnvironmentSpec:
    """N placed scenario bodies sharing one interference budget.

    Bodies lay out on a fixed-width floor grid (``bodies_per_row``
    columns at ``spacing_metres`` pitch) in placement order — the grid
    never re-flows when bodies are added, so every existing body keeps
    its position and its interference can only grow as the room fills
    (the monotonicity contract).  ``duration_seconds`` overrides every
    body's duration; without it all placed scenarios must already agree
    (the environment runs one shared clock).
    """

    name: str
    description: str
    bodies: tuple[BodyPlacement, ...]
    duration_seconds: float | None = None
    spacing_metres: float = 1.5
    bodies_per_row: int = 4
    rf_reference_loss_db: float = 55.0
    rf_path_loss_exponent: float = 3.0
    #: Fraction of an interferer's airtime landing in a victim's
    #: channel (frequency hopping / channelisation discount).
    rf_co_channel_fraction: float = 0.05
    #: Fraction of an EQS electrode swing that escapes the wearer and
    #: couples outward at the reference metre.  Calibrated so a packed
    #: room of Wi-R bodies (gym mats, train seats) raises a victim's
    #: receiver-referred noise by a measurable but survivable margin.
    eqs_leakage_fraction: float = 4e-4
    eqs_coupling_exponent: float = 3.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("environment name must be non-empty")
        if not self.bodies:
            raise ScenarioError(
                f"environment {self.name!r} places no bodies")
        if self.spacing_metres <= 0:
            raise ScenarioError("body spacing must be positive")
        if self.bodies_per_row < 1:
            raise ScenarioError("bodies per row must be >= 1")
        if not 0.0 < self.rf_co_channel_fraction <= 1.0:
            raise ScenarioError("co-channel fraction must be in (0, 1]")
        if not 0.0 <= self.eqs_leakage_fraction <= 1.0:
            raise ScenarioError("EQS leakage fraction must be in [0, 1]")
        seen: set[str] = set()
        for placement in self.bodies:
            for body_name in placement.body_names():
                if body_name in seen:
                    raise ScenarioError(
                        f"environment {self.name!r}: duplicate body "
                        f"{body_name!r}")
                seen.add(body_name)
        self.resolved_duration()  # raises on disagreeing durations

    # -- derived views -----------------------------------------------------

    @property
    def body_count(self) -> int:
        return sum(placement.count for placement in self.bodies)

    def resolved_duration(self) -> float:
        """The shared run duration (override or the bodies' agreement)."""
        if self.duration_seconds is not None:
            if self.duration_seconds <= 0:
                raise ScenarioError("environment duration must be positive")
            return self.duration_seconds
        durations = {placement.spec().duration_seconds
                     for placement in self.bodies}
        if len(durations) != 1:
            raise ScenarioError(
                f"environment {self.name!r}: bodies disagree on duration "
                f"({sorted(durations)}); set duration_seconds to override")
        return next(iter(durations))

    def grid_position(self, index: int) -> tuple[float, float]:
        """Floor position of the *index*-th body (fixed-width grid)."""
        column = index % self.bodies_per_row
        row = index // self.bodies_per_row
        return (column * self.spacing_metres, row * self.spacing_metres)

    def capabilities(self) -> tuple[str, ...]:
        """Capability tags: ``multi-body`` plus the bodies' union."""
        tags = {"multi-body"} if self.body_count > 1 else set()
        for placement in self.bodies:
            tags.update(placement.spec().capabilities())
        return tuple(sorted(tags))

    def describe(self) -> dict[str, object]:
        """Summary row for ``repro scenarios list`` (scenario-shaped)."""
        specs = [placement.spec() for placement in self.bodies]
        boundaries = {placement.arrival_fraction for placement in self.bodies
                      if 0.0 < placement.arrival_fraction < 1.0}
        boundaries |= {placement.departure_fraction
                       for placement in self.bodies
                       if 0.0 < placement.departure_fraction < 1.0}
        return {
            "scenario": self.name,
            "nodes": sum(placement.count * spec.leaf_count
                         for placement, spec in zip(self.bodies, specs)),
            "mac": ",".join(sorted({spec.arbitration for spec in specs})),
            "technologies": ",".join(sorted(
                {key for spec in specs for key in spec.technologies()})),
            "offered_kbps": sum(placement.count * spec.offered_rate_bps()
                                for placement, spec
                                in zip(self.bodies, specs)) / 1e3,
            "sim_seconds": self.resolved_duration(),
            "events": len(boundaries),
            "description": self.description,
            "capabilities": ",".join(self.capabilities()) or "-",
        }

    # -- emission model ----------------------------------------------------

    def body_emissions(self, spec: ScenarioSpec
                       ) -> tuple[float, float, float]:
        """``(airtime, rf_level_dbm, eqs_level_volts)`` one body emits.

        Airtime is the aggregate serialisation duty of the body's
        leaves (first-attempt traffic only); the RF level is the
        loudest RF transmitter discounted by the co-channel fraction;
        the EQS level is the loudest electrode swing scaled by the
        leakage fraction.
        """
        airtime = 0.0
        rf_level = -math.inf
        eqs_swing = 0.0
        for node in spec.nodes:
            technology = technology_for(node.technology)
            airtime += (node.count * node.air_rate_bps()
                        / technology.data_rate_bps())
            if isinstance(technology, EQSHBCTransceiver):
                eqs_swing = max(eqs_swing, technology.tx_swing_volts)
            elif hasattr(technology, "tx_power_dbm"):
                rf_level = max(rf_level, technology.tx_power_dbm)
        if rf_level != -math.inf:
            rf_level += 10.0 * math.log10(self.rf_co_channel_fraction)
        return (min(airtime, 1.0), rf_level,
                eqs_swing * self.eqs_leakage_fraction)

    # -- compilation -------------------------------------------------------

    def _make_apply(self, spec: ScenarioSpec,
                    simulator: BodyNetworkSimulator,
                    body: EnvironmentBody, duration: float
                    ) -> Callable[[InterferenceState], None] | None:
        """Closure re-deriving one body's erasure rates for a state.

        Evaluated at environment epochs (and after posture events of a
        multi-body run): every lossy node gets the PER of its link
        budget under the given interference, the posture active *now*,
        and whatever transmit offset its controller holds.
        """
        if spec.reliability is None:
            return None
        spec_of: dict[str, ScenarioNodeSpec] = {
            concrete: node for node in spec.nodes
            for concrete in node.expanded_names()}
        timelines = {concrete: spec.node_posture_timeline(concrete, node)
                     for concrete, node in spec_of.items()}
        reliability = spec.reliability

        def apply(state: InterferenceState) -> None:
            fraction = min(simulator.queue.now / duration, 1.0)
            for concrete, node in spec_of.items():
                runtime = simulator.controllers.get(concrete)
                offset = runtime.offset_db if runtime is not None else 0.0
                simulator.set_node_error_rate(
                    concrete,
                    reliability.node_error_rate_adjusted(
                        node,
                        posture=_posture_at(timelines[concrete], fraction),
                        rf_interference_dbm=state.rf_dbm,
                        eqs_interference_volts=state.eqs_volts,
                        tx_power_offset_db=offset))
        return apply

    def _make_error_fn(self, spec: ScenarioSpec,
                       simulator: BodyNetworkSimulator,
                       body: EnvironmentBody, node: ScenarioNodeSpec,
                       timeline: list[tuple[float, float, str]],
                       duration: float) -> Callable[[float], float]:
        """Per-node rate function a controller runtime actuates through.

        Composes the controller's transmit offset with the room's
        current interference and the posture active at evaluation time,
        so a boost re-derivation never forgets the environment.
        """
        reliability = spec.reliability

        def error_rate(offset_db: float) -> float:
            fraction = min(simulator.queue.now / duration, 1.0)
            state = body.current_interference
            return reliability.node_error_rate_adjusted(
                node,
                posture=_posture_at(timeline, fraction),
                rf_interference_dbm=state.rf_dbm,
                eqs_interference_volts=state.eqs_volts,
                tx_power_offset_db=offset_db)
        return error_rate

    def build(self, seed: int = 0,
              duration_seconds: float | None = None) -> RFEnvironment:
        """Compile every placed body and couple them in an environment.

        Body *i* builds with seed ``seed + i`` (body 0 gets the plain
        seed, so a one-body environment reproduces the standalone run
        exactly).  Posture events of a multi-body (or controller-
        carrying) lossy body get correction events scheduled *after*
        the spec's own swap at the same timestamp, re-applying the
        interference-adjusted rates the plain swap does not know about.
        """
        duration = (duration_seconds if duration_seconds is not None
                    else self.resolved_duration())
        if duration <= 0:
            raise ScenarioError("environment duration must be positive")
        multi = self.body_count > 1
        env_bodies: list[EnvironmentBody] = []
        index = 0
        for placement in self.bodies:
            spec = placement.spec()
            for body_name in placement.body_names():
                simulator = spec.build(seed=seed + index,
                                       duration_seconds=duration)
                airtime, rf_level, eqs_level = self.body_emissions(spec)
                position = (placement.position_metres
                            if placement.position_metres is not None
                            else self.grid_position(index))
                body = EnvironmentBody(
                    name=body_name,
                    simulator=simulator,
                    duration_seconds=duration,
                    airtime_fraction=airtime,
                    rf_level_dbm=rf_level,
                    eqs_level_volts=eqs_level,
                    position_metres=position,
                    arrival_fraction=placement.arrival_fraction,
                    departure_fraction=placement.departure_fraction,
                )
                body.apply_interference = self._make_apply(
                    spec, simulator, body, duration)
                if placement.controller is not None:
                    timelines = (
                        {concrete: spec.node_posture_timeline(concrete, node)
                         for node in spec.nodes
                         for concrete in node.expanded_names()}
                        if spec.reliability is not None else {})
                    for node in spec.nodes:
                        for concrete in node.expanded_names():
                            error_fn = (
                                self._make_error_fn(
                                    spec, simulator, body, node,
                                    timelines[concrete], duration)
                                if spec.reliability is not None else None)
                            simulator.attach_controller(
                                concrete, placement.controller,
                                error_rate_fn=error_fn)
                if (spec.reliability is not None
                        and body.apply_interference is not None
                        and (multi or simulator.controllers)):
                    # Same timestamp, later sequence: these run *after*
                    # the spec's own posture swaps and overwrite the
                    # interference-blind rates they install.
                    for event in spec.events:
                        if event.action != "posture":
                            continue
                        simulator.queue.schedule_at(
                            event.at_fraction * duration,
                            lambda body=body: body.apply_interference(
                                body.current_interference))
                env_bodies.append(body)
                index += 1
        return RFEnvironment(
            env_bodies,
            rf_reference_loss_db=self.rf_reference_loss_db,
            rf_path_loss_exponent=self.rf_path_loss_exponent,
            eqs_coupling_exponent=self.eqs_coupling_exponent,
        )

    def run(self, seed: int = 0,
            duration_seconds: float | None = None,
            fast_path: str | None = None) -> EnvironmentRunResult:
        """Compile and execute; returns per-body scenario results."""
        duration = (duration_seconds if duration_seconds is not None
                    else self.resolved_duration())
        environment = self.build(seed=seed, duration_seconds=duration)
        simulated = environment.run(fast_path=fast_path)
        bodies: list[ScenarioResult] = []
        specs = [placement.spec() for placement in self.bodies
                 for _ in range(placement.count)]
        for spec, (body_name, result) in zip(specs, simulated):
            bodies.append(ScenarioResult(
                scenario=body_name,
                duration_seconds=duration,
                arbitration=spec.arbitration,
                node_count=spec.leaf_count,
                technologies=spec.technologies(),
                simulated=result,
            ))
        return EnvironmentRunResult(
            environment=self.name,
            duration_seconds=duration,
            bodies=tuple(bodies),
            simulated=simulated,
        )


# -- registry ---------------------------------------------------------------

EnvironmentFactory = Callable[[], EnvironmentSpec]

_ENVIRONMENT_SPECS: dict[str, EnvironmentFactory] = {}


def register_environment(factory: EnvironmentFactory) -> EnvironmentFactory:
    """Register an environment factory under its spec's name.

    Mirrors :func:`repro.scenarios.registry.register_scenario`; the
    factory runs once at registration to validate the spec and learn
    its name.  Environment names share the CLI namespace with scenario
    names, so collisions are rejected here.
    """
    from .registry import scenario_names

    spec = factory()
    if not isinstance(spec, EnvironmentSpec):
        raise ScenarioError(
            f"environment factory {factory!r} did not return an "
            "EnvironmentSpec")
    if spec.name in scenario_names():
        raise ScenarioError(
            f"environment {spec.name!r} collides with a scenario name")
    existing = _ENVIRONMENT_SPECS.get(spec.name)
    if existing is not None and existing is not factory:
        raise ScenarioError(f"environment {spec.name!r} registered twice")
    _ENVIRONMENT_SPECS[spec.name] = factory
    return factory


def environment_names() -> list[str]:
    """Sorted names of all registered environments."""
    return sorted(_ENVIRONMENT_SPECS)


def get_environment(name: str) -> EnvironmentSpec:
    """Build the environment spec registered under *name*."""
    try:
        factory = _ENVIRONMENT_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(_ENVIRONMENT_SPECS))
        raise ScenarioError(
            f"unknown environment {name!r} (known: {known})") from None
    return factory()


def all_environments() -> list[EnvironmentSpec]:
    """Every registered environment spec, sorted by name."""
    return [get_environment(name) for name in environment_names()]


# -- built-in environments --------------------------------------------------

@register_environment
def gym_floor() -> EnvironmentSpec:
    """Eight yoga bodies on one studio floor: EQS leakage coupling.

    Every body runs ``barefoot_yoga`` — a lossy EQS scenario whose
    barefoot phase already sits at the worst-case posture — packed on a
    1.5 m mat grid.  The aggregate electrode leakage of seven
    neighbours raises each body's receiver noise enough to measurably
    deepen the barefoot erasure dip.
    """
    return EnvironmentSpec(
        name="gym_floor",
        description="8 yoga bodies on a mat grid, EQS leakage coupling",
        bodies=(BodyPlacement(scenario="barefoot_yoga", count=8),),
        spacing_metres=1.5,
        bodies_per_row=4,
    )


@register_environment
def ward_shift() -> EnvironmentSpec:
    """A six-bed ward across a shift change: staggered occupancy.

    Every bed runs ``noisy_ward`` (Wi-R vitals plus a BLE island on a
    raised noise floor).  Two beds are occupied all along, two patients
    leave at 60 % of the run and two arrive at 40 % — so the room's
    co-channel pressure steps through three epochs and each BLE
    island's erasure rate steps with it.
    """
    return EnvironmentSpec(
        name="ward_shift",
        description="6 noisy-ward beds, staggered arrivals and departures",
        bodies=(
            BodyPlacement(scenario="noisy_ward", count=2, name="bed"),
            BodyPlacement(scenario="noisy_ward", count=2, name="bed_out",
                          departure_fraction=0.6),
            BodyPlacement(scenario="noisy_ward", count=2, name="bed_in",
                          arrival_fraction=0.4),
        ),
        spacing_metres=2.5,
        bodies_per_row=3,
    )


@register_environment
def commuter_train() -> EnvironmentSpec:
    """Twelve commuters packed in one train car, closed loop engaged.

    Every body runs ``commute_walk`` — the posture-cycling EQS
    commute — at seat pitch (0.8 m, two per row), which compounds the
    sitting posture's already-weak channel with eleven neighbours'
    leakage: uncontrolled, the car loses roughly half its packets.
    Each node therefore carries a :class:`~repro.control.
    PERBackoffController` that watches its windowed PER and steps its
    transmit swing up (and back down when the channel heals across the
    walk/platform transitions) — the gallery's standing demonstration
    of the per-node closed loop recovering a crowded room.
    """
    return EnvironmentSpec(
        name="commuter_train",
        description="12 commute bodies at seat pitch, PER-backoff control",
        bodies=(BodyPlacement(scenario="commute_walk", count=12,
                              name="commuter",
                              controller=ControllerSpec(
                                  kind="per_backoff",
                                  cadence_seconds=5.0)),),
        spacing_metres=0.8,
        bodies_per_row=2,
        eqs_leakage_fraction=2e-4,
    )
