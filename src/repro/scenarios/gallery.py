"""The built-in scenario gallery: one body-network workload per use case.

Each factory compiles a paper-flavoured situation — a night of sleep
monitoring, a workout, a clinical ward patient, a stress-test body with
50 leaves, an implant-carrying user, a body with legacy BLE islands —
into a :class:`~repro.scenarios.spec.ScenarioSpec`.  Durations are a
representative slice of the real situation (an hour of the night, half
an hour of workout) so every scenario runs in seconds of wall time while
still exercising the streaming-statistics and arbitration machinery.
"""

from __future__ import annotations

from .. import units
from ..coding import CodingSpec
from ..sensors.catalog import SensorModality
from .registry import register_scenario
from .spec import (
    ReliabilitySpec,
    ScenarioEvent,
    ScenarioNodeSpec,
    ScenarioSpec,
)


@register_scenario
def sleep_night() -> ScenarioSpec:
    """Overnight monitoring: sparse clinical streams, hub polls the body.

    The IMU wristband only matters during restless phases: it sleeps for
    the quiet middle of the night and wakes towards morning.
    """
    return ScenarioSpec(
        name="sleep_night",
        description="overnight vitals, duty-cycled IMU, hub polling",
        duration_seconds=units.hours(1.0),
        arbitration="polling",
        nodes=(
            ScenarioNodeSpec(name="ecg_patch", modality=SensorModality.ECG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="temp_core", modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0)),
            ScenarioNodeSpec(name="ppg_ring", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
            ScenarioNodeSpec(name="imu_wrist", modality=SensorModality.IMU,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
        ),
        events=(
            ScenarioEvent(at_fraction=0.10, action="sleep",
                          node_prefixes=("imu_wrist",)),
            ScenarioEvent(at_fraction=0.85, action="wake",
                          node_prefixes=("imu_wrist",)),
        ),
    )


@register_scenario
def workout() -> ScenarioSpec:
    """A training session: limb IMUs, EMG sleeves, voice coach on TDMA."""
    return ScenarioSpec(
        name="workout",
        description="limb IMUs + EMG + PPG + voice coaching, TDMA slots",
        duration_seconds=30.0 * 60.0,
        arbitration="tdma",
        nodes=(
            ScenarioNodeSpec(name="imu_limb", modality=SensorModality.IMU,
                             count=4, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
            ScenarioNodeSpec(name="emg_sleeve", modality=SensorModality.EMG,
                             count=2,
                             sensing_power_watts=units.microwatt(60.0)),
            ScenarioNodeSpec(name="ppg_chest", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
            ScenarioNodeSpec(name="audio_coach", modality=SensorModality.AUDIO,
                             sensing_power_watts=units.microwatt(140.0),
                             isa_power_watts=units.microwatt(50.0)),
        ),
        events=(
            # Voice coaching only during the second half of the session.
            ScenarioEvent(at_fraction=0.0, action="sleep",
                          node_prefixes=("audio_coach",)),
            ScenarioEvent(at_fraction=0.5, action="wake",
                          node_prefixes=("audio_coach",)),
        ),
    )


@register_scenario
def clinical_ward() -> ScenarioSpec:
    """A monitored ward patient: continuous clinical-grade streams, FIFO."""
    return ScenarioSpec(
        name="clinical_ward",
        description="continuous EEG/ECG/EMG clinical monitoring",
        duration_seconds=15.0 * 60.0,
        arbitration="fifo",
        nodes=(
            ScenarioNodeSpec(name="eeg_band", modality=SensorModality.EEG,
                             sensing_power_watts=units.microwatt(200.0),
                             isa_power_watts=units.microwatt(40.0)),
            ScenarioNodeSpec(name="ecg_lead", modality=SensorModality.ECG,
                             count=3, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="emg_probe", modality=SensorModality.EMG,
                             sensing_power_watts=units.microwatt(60.0)),
            ScenarioNodeSpec(name="temp_axilla",
                             modality=SensorModality.TEMPERATURE,
                             count=2, bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0)),
        ),
    )


@register_scenario
def dense_50_leaf() -> ScenarioSpec:
    """The stress test: 50 featherweight leaves on one hub, TDMA slots.

    An hour of simulated time delivers ~180k packets — well past the
    exact window of the latency accumulator, so this scenario is the
    standing proof that long runs stay flat in memory.
    """
    return ScenarioSpec(
        name="dense_50_leaf",
        description="50 x 8 kb/s leaves saturating one hub's schedule",
        duration_seconds=units.hours(1.0),
        arbitration="tdma",
        nodes=(
            ScenarioNodeSpec(name="leaf", rate_bps=units.kilobit_per_second(8.0),
                             count=50, bits_per_packet=8192.0,
                             sensing_power_watts=units.microwatt(20.0)),
        ),
    )


@register_scenario
def implant_mix() -> ScenarioSpec:
    """Wearables plus implants: MQS pacemaker telemetry joins the body bus."""
    return ScenarioSpec(
        name="implant_mix",
        description="Wi-R wearables + MQS implant + sub-uW EQS node, polling",
        duration_seconds=15.0 * 60.0,
        arbitration="polling",
        nodes=(
            ScenarioNodeSpec(name="ppg_watch", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
            ScenarioNodeSpec(name="imu_watch", modality=SensorModality.IMU,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
            ScenarioNodeSpec(name="pacemaker",
                             rate_bps=units.kilobit_per_second(2.0),
                             bits_per_packet=2048.0,
                             technology="mqs_implant", traffic="poisson",
                             sensing_power_watts=units.microwatt(5.0)),
            ScenarioNodeSpec(name="glucose_implant",
                             rate_bps=units.kilobit_per_second(1.0),
                             bits_per_packet=1024.0,
                             technology="mqs_implant", traffic="poisson",
                             sensing_power_watts=units.microwatt(8.0)),
            ScenarioNodeSpec(name="temp_pill",
                             modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             technology="sub_uw",
                             sensing_power_watts=units.nanowatt(500.0)),
        ),
    )


@register_scenario
def harvester_patch() -> ScenarioSpec:
    """Perpetual-operation showcase: harvested vitals patch next to a
    battery-only peer.

    The ECG patch pairs a CR2032 with indoor photovoltaic + body TEG
    harvesting (the paper's Section V recipe); the temperature pill has
    only its cell.  Over the hour neither node should die — the patch
    because harvesting out-earns its ~31 uW load, the pill because even
    a small cell carries its 2 uW for weeks — but their state-of-charge
    trajectories diverge, which is exactly what the lifetime experiment
    (E15) cross-validates against the closed-form projections.
    """
    return ScenarioSpec(
        name="harvester_patch",
        description="CR2032 ECG patch with indoor PV + TEG harvesting",
        duration_seconds=units.hours(1.0),
        arbitration="fifo",
        environment="indoor_office",
        nodes=(
            ScenarioNodeSpec(name="ecg_patch", modality=SensorModality.ECG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0),
                             battery="cr2032",
                             harvester="indoor_pv"),
            ScenarioNodeSpec(name="teg_band", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0),
                             battery="cr2032",
                             harvester="teg"),
            ScenarioNodeSpec(name="temp_pill",
                             modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0),
                             battery="cr2032"),
        ),
    )


@register_scenario
def week_wear() -> ScenarioSpec:
    """A week of wear compressed into one simulated hour.

    Battery capacities are scaled by 1/168 (hours per week), so one
    hour of simulated drain traces the same state-of-charge trajectory
    a real CR2032-powered body would follow over a week.  The hungry
    audio pendant starts the week nearly flat and browns out mid-run,
    the IMU pods sit just above their low-battery threshold and halve
    their traffic when they cross it, the harvested ECG patch banks a
    TEG surplus, and the frugal vitals nodes coast — the standing proof
    that the energy runtime closes the loop and that the streaming
    ledger stays flat over a dense, battery-constrained hour.
    """
    week_scale = 1.0 / 168.0
    return ScenarioSpec(
        name="week_wear",
        description="dense body on 1/168-scaled cells: brownouts + adaptation",
        duration_seconds=units.hours(1.0),
        arbitration="tdma",
        environment="indoor_office",
        nodes=(
            # ~196 uW load on a 3%-charged scaled cell: dead in ~0.6 h.
            ScenarioNodeSpec(name="audio_pendant", modality=SensorModality.AUDIO,
                             sensing_power_watts=units.microwatt(140.0),
                             isa_power_watts=units.microwatt(50.0),
                             battery="cr2032", battery_scale=week_scale,
                             initial_charge_fraction=0.03),
            # ~15.6 uW load drains ~0.4% of the scaled cell per hour:
            # starting at 35.2% crosses the 35% threshold mid-run.
            ScenarioNodeSpec(name="imu_pod", modality=SensorModality.IMU,
                             count=4, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0),
                             battery="cr2032", battery_scale=week_scale,
                             low_battery_fraction=0.35,
                             initial_charge_fraction=0.352),
            ScenarioNodeSpec(name="ecg_patch", modality=SensorModality.ECG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0),
                             battery="cr2032", battery_scale=week_scale,
                             harvester="teg"),
            ScenarioNodeSpec(name="ppg_ring", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0),
                             battery="cr2032", battery_scale=week_scale),
            ScenarioNodeSpec(name="temp_core",
                             modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0),
                             battery="cr2032", battery_scale=week_scale),
        ),
    )


@register_scenario
def commute_walk() -> ScenarioSpec:
    """A commute with a posture-cycling lossy body channel.

    The capacitive EQS return path moves with posture: sitting on the
    train couples the body hardest to ground (lowest channel gain, ~18 %
    packet erasures at this receiver noise), the walking transfers are
    nearly clean, and the platform wait sits in between.  Stop-and-wait
    ARQ turns the erasures into retransmission energy and latency
    instead of silent loss — the dynamic counterpart of the paper's
    worst-case posture margining.
    """
    return ScenarioSpec(
        name="commute_walk",
        description="posture-cycling EQS channel: train, walk, platform",
        duration_seconds=20.0 * 60.0,
        arbitration="tdma",
        reliability=ReliabilitySpec(
            posture="sitting_office_chair",
            eqs_noise_rms_volts=5.5e-5,
            arq_retry_limit=3,
        ),
        nodes=(
            ScenarioNodeSpec(name="ecg_patch", modality=SensorModality.ECG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="ppg_watch", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
            ScenarioNodeSpec(name="imu_shoe", modality=SensorModality.IMU,
                             count=2, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
        ),
        events=(
            # Train ride (sitting) -> walk to the office -> platform wait
            # -> second leg seated.
            ScenarioEvent(at_fraction=0.35, action="posture",
                          node_prefixes=("",), posture="walking"),
            ScenarioEvent(at_fraction=0.55, action="posture",
                          node_prefixes=("",), posture="standing_shoes"),
            ScenarioEvent(at_fraction=0.70, action="posture",
                          node_prefixes=("",),
                          posture="sitting_office_chair"),
        ),
    )


@register_scenario
def noisy_ward() -> ScenarioSpec:
    """A clinical ward whose 2.4 GHz band is saturated with interference.

    The Wi-R leaves ride the body channel and barely notice; the legacy
    BLE island (infusion pump telemetry, a SpO2 clip) fights a noise
    floor raised ~18 dB above thermal and erases roughly one packet in
    five, recovering through ARQ at the cost of airtime and energy —
    the degraded-SNR flip side of the ``legacy_ble_island`` migration
    story.
    """
    return ScenarioSpec(
        name="noisy_ward",
        description="Wi-R vitals + BLE island under a raised noise floor",
        duration_seconds=15.0 * 60.0,
        arbitration="fifo",
        reliability=ReliabilitySpec(
            rf_noise_floor_dbm=-92.5,
            arq_retry_limit=3,
        ),
        nodes=(
            ScenarioNodeSpec(name="ecg_lead", modality=SensorModality.ECG,
                             count=2, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="temp_axilla",
                             modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0)),
            # Periodic status beacons (not Poisson bursts): infusion
            # telemetry is a heartbeat, and deterministic arrivals keep
            # the scenario's energy dominated by the erasure process
            # rather than arrival-count noise.
            ScenarioNodeSpec(name="ble_pump",
                             rate_bps=units.kilobit_per_second(4.0),
                             bits_per_packet=2048.0,
                             technology="ble",
                             sensing_power_watts=units.microwatt(25.0)),
            ScenarioNodeSpec(name="ble_spo2",
                             modality=SensorModality.PPG,
                             bits_per_packet=2048.0,
                             technology="ble",
                             sensing_power_watts=units.microwatt(80.0)),
        ),
    )


@register_scenario
def barefoot_yoga() -> ScenarioSpec:
    """A yoga session: the barefoot floor phase degrades the EQS link.

    Standing barefoot on a conductive floor maximises the body-to-ground
    return capacitance — the worst-case posture of the link-budget
    analysis.  The limb IMUs erase ~25 % of their packets during the
    standing flow, then the channel heals for the lying relaxation.
    """
    return ScenarioSpec(
        name="barefoot_yoga",
        description="IMU flow with a barefoot worst-case channel phase",
        duration_seconds=30.0 * 60.0,
        arbitration="fifo",
        reliability=ReliabilitySpec(
            posture="standing_shoes",
            eqs_noise_rms_volts=4.5e-5,
            arq_retry_limit=3,
        ),
        nodes=(
            ScenarioNodeSpec(name="imu_limb", modality=SensorModality.IMU,
                             count=4, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
            ScenarioNodeSpec(name="ppg_chest", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
        ),
        events=(
            ScenarioEvent(at_fraction=0.20, action="posture",
                          node_prefixes=("",),
                          posture="standing_barefoot"),
            ScenarioEvent(at_fraction=0.80, action="posture",
                          node_prefixes=("",), posture="lying_on_bed"),
        ),
    )


@register_scenario
def coded_ward() -> ScenarioSpec:
    """The noisy ward again, with source coders in the BLE island.

    Same raised 2.4 GHz noise floor as ``noisy_ward``, but the legacy
    BLE devices — whose ~27 nJ/bit radios dominate their budget — run
    the rate-adaptive source coder near its energy-optimal rate (the
    E17 sweep): packets shrink, the erasure probability drops with
    them, and the ARQ retries that plagued the uncoded ward fade.  The
    Wi-R vitals stay uncoded — at ~100 pJ/bit their radio is too cheap
    for a sub-threshold encoder to beat.
    """
    ble_coding = CodingSpec(rate=0.7, correlation=0.5,
                            energy_per_source_bit_joules=1e-9)
    return ScenarioSpec(
        name="coded_ward",
        description="noisy ward with rate-adaptive coding on the BLE island",
        duration_seconds=15.0 * 60.0,
        arbitration="fifo",
        reliability=ReliabilitySpec(
            rf_noise_floor_dbm=-92.5,
            arq_retry_limit=3,
        ),
        nodes=(
            ScenarioNodeSpec(name="ecg_lead", modality=SensorModality.ECG,
                             count=2, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="temp_axilla",
                             modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0)),
            ScenarioNodeSpec(name="ble_pump",
                             rate_bps=units.kilobit_per_second(4.0),
                             bits_per_packet=2048.0,
                             technology="ble",
                             sensing_power_watts=units.microwatt(25.0),
                             coding=ble_coding),
            ScenarioNodeSpec(name="ble_spo2",
                             modality=SensorModality.PPG,
                             bits_per_packet=2048.0,
                             technology="ble",
                             sensing_power_watts=units.microwatt(80.0),
                             coding=ble_coding),
        ),
    )


@register_scenario
def legacy_ble_island() -> ScenarioSpec:
    """Migration reality: new Wi-R leaves coexist with legacy BLE devices."""
    return ScenarioSpec(
        name="legacy_ble_island",
        description="Wi-R leaves + legacy BLE earbud and scale island",
        duration_seconds=10.0 * 60.0,
        arbitration="fifo",
        nodes=(
            ScenarioNodeSpec(name="ecg_patch", modality=SensorModality.ECG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="imu_shoe", modality=SensorModality.IMU,
                             count=2, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
            ScenarioNodeSpec(name="ble_earbud", modality=SensorModality.AUDIO,
                             technology="ble",
                             sensing_power_watts=units.microwatt(140.0)),
            ScenarioNodeSpec(name="ble_scale",
                             rate_bps=units.kilobit_per_second(4.0),
                             bits_per_packet=2048.0,
                             technology="ble", traffic="poisson",
                             sensing_power_watts=units.microwatt(25.0)),
        ),
    )

