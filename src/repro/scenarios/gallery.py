"""The built-in scenario gallery: one body-network workload per use case.

Each factory compiles a paper-flavoured situation — a night of sleep
monitoring, a workout, a clinical ward patient, a stress-test body with
50 leaves, an implant-carrying user, a body with legacy BLE islands —
into a :class:`~repro.scenarios.spec.ScenarioSpec`.  Durations are a
representative slice of the real situation (an hour of the night, half
an hour of workout) so every scenario runs in seconds of wall time while
still exercising the streaming-statistics and arbitration machinery.
"""

from __future__ import annotations

from .. import units
from ..sensors.catalog import SensorModality
from .registry import register_scenario
from .spec import ScenarioEvent, ScenarioNodeSpec, ScenarioSpec


@register_scenario
def sleep_night() -> ScenarioSpec:
    """Overnight monitoring: sparse clinical streams, hub polls the body.

    The IMU wristband only matters during restless phases: it sleeps for
    the quiet middle of the night and wakes towards morning.
    """
    return ScenarioSpec(
        name="sleep_night",
        description="overnight vitals, duty-cycled IMU, hub polling",
        duration_seconds=units.hours(1.0),
        arbitration="polling",
        nodes=(
            ScenarioNodeSpec(name="ecg_patch", modality=SensorModality.ECG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="temp_core", modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0)),
            ScenarioNodeSpec(name="ppg_ring", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
            ScenarioNodeSpec(name="imu_wrist", modality=SensorModality.IMU,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
        ),
        events=(
            ScenarioEvent(at_fraction=0.10, action="sleep",
                          node_prefixes=("imu_wrist",)),
            ScenarioEvent(at_fraction=0.85, action="wake",
                          node_prefixes=("imu_wrist",)),
        ),
    )


@register_scenario
def workout() -> ScenarioSpec:
    """A training session: limb IMUs, EMG sleeves, voice coach on TDMA."""
    return ScenarioSpec(
        name="workout",
        description="limb IMUs + EMG + PPG + voice coaching, TDMA slots",
        duration_seconds=30.0 * 60.0,
        arbitration="tdma",
        nodes=(
            ScenarioNodeSpec(name="imu_limb", modality=SensorModality.IMU,
                             count=4, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
            ScenarioNodeSpec(name="emg_sleeve", modality=SensorModality.EMG,
                             count=2,
                             sensing_power_watts=units.microwatt(60.0)),
            ScenarioNodeSpec(name="ppg_chest", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
            ScenarioNodeSpec(name="audio_coach", modality=SensorModality.AUDIO,
                             sensing_power_watts=units.microwatt(140.0),
                             isa_power_watts=units.microwatt(50.0)),
        ),
        events=(
            # Voice coaching only during the second half of the session.
            ScenarioEvent(at_fraction=0.0, action="sleep",
                          node_prefixes=("audio_coach",)),
            ScenarioEvent(at_fraction=0.5, action="wake",
                          node_prefixes=("audio_coach",)),
        ),
    )


@register_scenario
def clinical_ward() -> ScenarioSpec:
    """A monitored ward patient: continuous clinical-grade streams, FIFO."""
    return ScenarioSpec(
        name="clinical_ward",
        description="continuous EEG/ECG/EMG clinical monitoring",
        duration_seconds=15.0 * 60.0,
        arbitration="fifo",
        nodes=(
            ScenarioNodeSpec(name="eeg_band", modality=SensorModality.EEG,
                             sensing_power_watts=units.microwatt(200.0),
                             isa_power_watts=units.microwatt(40.0)),
            ScenarioNodeSpec(name="ecg_lead", modality=SensorModality.ECG,
                             count=3, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="emg_probe", modality=SensorModality.EMG,
                             sensing_power_watts=units.microwatt(60.0)),
            ScenarioNodeSpec(name="temp_axilla",
                             modality=SensorModality.TEMPERATURE,
                             count=2, bits_per_packet=128.0,
                             sensing_power_watts=units.microwatt(2.0)),
        ),
    )


@register_scenario
def dense_50_leaf() -> ScenarioSpec:
    """The stress test: 50 featherweight leaves on one hub, TDMA slots.

    An hour of simulated time delivers ~180k packets — well past the
    exact window of the latency accumulator, so this scenario is the
    standing proof that long runs stay flat in memory.
    """
    return ScenarioSpec(
        name="dense_50_leaf",
        description="50 x 8 kb/s leaves saturating one hub's schedule",
        duration_seconds=units.hours(1.0),
        arbitration="tdma",
        nodes=(
            ScenarioNodeSpec(name="leaf", rate_bps=units.kilobit_per_second(8.0),
                             count=50, bits_per_packet=8192.0,
                             sensing_power_watts=units.microwatt(20.0)),
        ),
    )


@register_scenario
def implant_mix() -> ScenarioSpec:
    """Wearables plus implants: MQS pacemaker telemetry joins the body bus."""
    return ScenarioSpec(
        name="implant_mix",
        description="Wi-R wearables + MQS implant + sub-uW EQS node, polling",
        duration_seconds=15.0 * 60.0,
        arbitration="polling",
        nodes=(
            ScenarioNodeSpec(name="ppg_watch", modality=SensorModality.PPG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(80.0)),
            ScenarioNodeSpec(name="imu_watch", modality=SensorModality.IMU,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
            ScenarioNodeSpec(name="pacemaker",
                             rate_bps=units.kilobit_per_second(2.0),
                             bits_per_packet=2048.0,
                             technology="mqs_implant", traffic="poisson",
                             sensing_power_watts=units.microwatt(5.0)),
            ScenarioNodeSpec(name="glucose_implant",
                             rate_bps=units.kilobit_per_second(1.0),
                             bits_per_packet=1024.0,
                             technology="mqs_implant", traffic="poisson",
                             sensing_power_watts=units.microwatt(8.0)),
            ScenarioNodeSpec(name="temp_pill",
                             modality=SensorModality.TEMPERATURE,
                             bits_per_packet=128.0,
                             technology="sub_uw",
                             sensing_power_watts=units.nanowatt(500.0)),
        ),
    )


@register_scenario
def legacy_ble_island() -> ScenarioSpec:
    """Migration reality: new Wi-R leaves coexist with legacy BLE devices."""
    return ScenarioSpec(
        name="legacy_ble_island",
        description="Wi-R leaves + legacy BLE earbud and scale island",
        duration_seconds=10.0 * 60.0,
        arbitration="fifo",
        nodes=(
            ScenarioNodeSpec(name="ecg_patch", modality=SensorModality.ECG,
                             bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(30.0)),
            ScenarioNodeSpec(name="imu_shoe", modality=SensorModality.IMU,
                             count=2, bits_per_packet=4096.0,
                             sensing_power_watts=units.microwatt(15.0)),
            ScenarioNodeSpec(name="ble_earbud", modality=SensorModality.AUDIO,
                             technology="ble",
                             sensing_power_watts=units.microwatt(140.0)),
            ScenarioNodeSpec(name="ble_scale",
                             rate_bps=units.kilobit_per_second(4.0),
                             bits_per_packet=2048.0,
                             technology="ble", traffic="poisson",
                             sensing_power_watts=units.microwatt(25.0)),
        ),
    )

