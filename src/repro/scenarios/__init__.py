"""Declarative scenarios: named body-network workloads for the simulator.

This package turns the discrete-event simulator from a single-figure prop
into a load-testing engine: a :class:`ScenarioSpec` declares the leaf
population (sensor-catalog modalities or explicit rates), per-node link
technologies, the MAC arbitration policy and duty-cycle events, and
compiles to a ready-to-run simulator.  A registry of named scenarios
(``sleep_night``, ``workout``, ``clinical_ward``, ``dense_50_leaf``,
``implant_mix``, ``legacy_ble_island``, plus the lifetime pair
``harvester_patch`` and ``week_wear``) backs ``repro scenarios
list/run``, the ``scenario_gallery`` experiment and the DES benchmarks.
Nodes may carry batteries and harvesters (see
:mod:`repro.energy.runtime`); defaults compile bit-identically to the
pre-energy-runtime kernel.

Multi-body environments (:mod:`repro.scenarios.environment`) compose N
scenario bodies into one shared RF room: ``gym_floor``, ``ward_shift``
and ``commuter_train`` join the gallery with co-channel interference,
occupancy schedules and optional per-node controllers.
"""

from .spec import (
    BATTERY_FACTORIES,
    ENVIRONMENTS,
    HARVESTER_FACTORIES,
    POSTURES,
    TECHNOLOGY_FACTORIES,
    ReliabilitySpec,
    ScenarioEvent,
    ScenarioNodeSpec,
    ScenarioResult,
    ScenarioSpec,
    battery_for,
    environment_for,
    harvester_for,
    posture_for,
    technology_for,
)
from .registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from .environment import (
    BodyPlacement,
    EnvironmentRunResult,
    EnvironmentSpec,
    all_environments,
    environment_names,
    get_environment,
    register_environment,
)

__all__ = [
    "BodyPlacement",
    "EnvironmentRunResult",
    "EnvironmentSpec",
    "all_environments",
    "environment_names",
    "get_environment",
    "register_environment",
    "BATTERY_FACTORIES",
    "ENVIRONMENTS",
    "HARVESTER_FACTORIES",
    "POSTURES",
    "TECHNOLOGY_FACTORIES",
    "ReliabilitySpec",
    "battery_for",
    "environment_for",
    "harvester_for",
    "posture_for",
    "technology_for",
    "ScenarioNodeSpec",
    "ScenarioEvent",
    "ScenarioResult",
    "ScenarioSpec",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "all_scenarios",
]
