"""Declarative scenarios: named body-network workloads for the simulator.

This package turns the discrete-event simulator from a single-figure prop
into a load-testing engine: a :class:`ScenarioSpec` declares the leaf
population (sensor-catalog modalities or explicit rates), per-node link
technologies, the MAC arbitration policy and duty-cycle events, and
compiles to a ready-to-run simulator.  A registry of named scenarios
(``sleep_night``, ``workout``, ``clinical_ward``, ``dense_50_leaf``,
``implant_mix``, ``legacy_ble_island``, plus the lifetime pair
``harvester_patch`` and ``week_wear``) backs ``repro scenarios
list/run``, the ``scenario_gallery`` experiment and the DES benchmarks.
Nodes may carry batteries and harvesters (see
:mod:`repro.energy.runtime`); defaults compile bit-identically to the
pre-energy-runtime kernel.
"""

from .spec import (
    BATTERY_FACTORIES,
    ENVIRONMENTS,
    HARVESTER_FACTORIES,
    POSTURES,
    TECHNOLOGY_FACTORIES,
    ReliabilitySpec,
    ScenarioEvent,
    ScenarioNodeSpec,
    ScenarioResult,
    ScenarioSpec,
    battery_for,
    environment_for,
    harvester_for,
    posture_for,
    technology_for,
)
from .registry import (
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)

__all__ = [
    "BATTERY_FACTORIES",
    "ENVIRONMENTS",
    "HARVESTER_FACTORIES",
    "POSTURES",
    "TECHNOLOGY_FACTORIES",
    "ReliabilitySpec",
    "battery_for",
    "environment_for",
    "harvester_for",
    "posture_for",
    "technology_for",
    "ScenarioNodeSpec",
    "ScenarioEvent",
    "ScenarioResult",
    "ScenarioSpec",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "all_scenarios",
]
