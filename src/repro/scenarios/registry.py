"""Named-scenario registry.

Scenario builders register a zero-argument factory under a short name;
the CLI (``repro scenarios list/run``), the ``scenario_gallery``
experiment and the benchmarks all resolve scenarios here, so there is
exactly one code path from "scenario name" to "ready-to-run simulator".

To add a scenario: write a factory returning a
:class:`~repro.scenarios.spec.ScenarioSpec` and decorate it with
:func:`register_scenario` (see :mod:`repro.scenarios.gallery` for the
built-in set), or call :func:`register_scenario` directly with a factory.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ScenarioError
from .spec import ScenarioSpec

ScenarioFactory = Callable[[], ScenarioSpec]

_SCENARIOS: dict[str, ScenarioFactory] = {}


def register_scenario(factory: ScenarioFactory) -> ScenarioFactory:
    """Register a scenario factory under the name of the spec it builds.

    Usable as a decorator.  The factory is invoked once at registration
    to validate the spec and learn its name; scenarios must therefore be
    cheap to construct (they are — construction never runs a simulation).
    """
    spec = factory()
    if not isinstance(spec, ScenarioSpec):
        raise ScenarioError(
            f"scenario factory {factory!r} did not return a ScenarioSpec")
    existing = _SCENARIOS.get(spec.name)
    if existing is not None and existing is not factory:
        raise ScenarioError(f"scenario {spec.name!r} registered twice")
    _SCENARIOS[spec.name] = factory
    return factory


def scenario_names() -> list[str]:
    """Sorted names of all registered scenarios."""
    _ensure_loaded()
    return sorted(_SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Build the spec registered under *name*."""
    _ensure_loaded()
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(_SCENARIOS))
        raise ScenarioError(
            f"unknown scenario {name!r} (known: {known})") from None
    return factory()


def all_scenarios() -> list[ScenarioSpec]:
    """Every registered scenario spec, sorted by name."""
    return [get_scenario(name) for name in scenario_names()]


def _ensure_loaded() -> None:
    from . import gallery  # noqa: F401  (registers the built-in set)
