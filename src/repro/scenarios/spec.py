"""Declarative scenario specifications for the body-network simulator.

A :class:`ScenarioSpec` describes a whole on-body workload — which leaf
nodes exist (compiled from :mod:`repro.sensors.catalog` modalities or
explicit rates), which link technology each one carries (mixed Wi-R /
MQS implant / BLE legacy populations), how the medium is arbitrated
(FIFO, TDMA, hub polling) and which duty-cycle events fire during the
run — and compiles it into a ready-to-run
:class:`~repro.netsim.simulator.BodyNetworkSimulator`.

Specs are plain frozen dataclasses: they can be defined in one
expression, registered under a name (see :mod:`repro.scenarios.registry`)
and reproduced exactly from their parameters.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Callable

from ..body.posture import Posture, channel_for_posture
from ..comm.ble import ble_1m_phy, ble_2m_phy
from ..comm.budget import (eqs_link_budget,
                           interference_adjusted_noise_floor_dbm,
                           interference_adjusted_noise_volts,
                           rf_link_budget)
from ..comm.eqs_hbc import (
    EQSHBCTransceiver,
    eqs_hbc_sub_uw,
    wir_commercial,
    wir_leaf_node,
)
from ..comm.link import CommTechnology
from ..comm.mqs_hbc import mqs_implant_link, mqs_wearable_relay
from ..comm.nfmi import nfmi_hearing_aid
from ..energy.battery import (
    BatterySpec,
    coin_cell_cr2032,
    coin_cell_high_capacity,
    lipo_smartwatch,
)
from ..energy.harvester import (
    EnergyHarvester,
    HarvestingEnvironment,
    indoor_photovoltaic,
    kinetic_wrist,
    outdoor_photovoltaic,
    rf_ambient,
    thermoelectric_body,
)
from ..coding import CodingSpec
from ..errors import ScenarioError
from ..netsim.arbitration import POLICY_FACTORIES, TDMAArbitration
from ..netsim.reliability import DEFAULT_ACK_BITS, ARQPolicy, LinkReliability
from ..netsim.config import NodeConfig
from ..netsim.packet import Packet
from ..netsim.simulator import BodyNetworkSimulator, SimulationResult
from ..netsim.traffic import PeriodicSource, PoissonSource, TrafficSource
from ..sensors.catalog import SensorModality, modality_spec

#: Link technologies a scenario node may carry, by short name.
TECHNOLOGY_FACTORIES: dict[str, Callable[[], CommTechnology]] = {
    "wir": wir_commercial,
    "wir_leaf": wir_leaf_node,
    "sub_uw": eqs_hbc_sub_uw,
    "mqs_implant": mqs_implant_link,
    "mqs_relay": mqs_wearable_relay,
    "ble": ble_1m_phy,
    "ble_2m": ble_2m_phy,
    "nfmi": nfmi_hearing_aid,
}

#: Battery cells a scenario node may carry, by short name.
BATTERY_FACTORIES: dict[str, Callable[[], BatterySpec]] = {
    "cr2032": coin_cell_cr2032,
    "coin_1000mah": coin_cell_high_capacity,
    "lipo_watch": lipo_smartwatch,
}

#: Harvesters a scenario node may carry, by short name.
HARVESTER_FACTORIES: dict[str, Callable[[], EnergyHarvester]] = {
    "indoor_pv": indoor_photovoltaic,
    "outdoor_pv": outdoor_photovoltaic,
    "teg": thermoelectric_body,
    "kinetic": kinetic_wrist,
    "rf": rf_ambient,
}

#: Harvesting environments, by short name.
ENVIRONMENTS: dict[str, HarvestingEnvironment] = {
    environment.value: environment for environment in HarvestingEnvironment
}


#: Process-local cache of compiled per-spec tables (serialisation times
#: and TDMA slot windows), keyed on the spec itself — specs are frozen,
#: hashable dataclasses, so equal specs share one compilation.  Sweep
#: grid points that vary only seed or runtime knobs re-derive nothing;
#: pool workers warm it once per topology and reuse it for every task
#: they execute.  The cached floats are exactly the ones a cold build
#: would compute, so warmed simulators stay bit-identical.
_COMPILE_CACHE: dict["ScenarioSpec", dict[str, object]] = {}

#: Cache bound; a sweep rarely spans more distinct topologies than this,
#: and the whole cache is dropped rather than LRU-tracked when exceeded.
_COMPILE_CACHE_LIMIT = 128


def technology_for(key: str) -> CommTechnology:
    """Instantiate the link technology registered under *key*."""
    try:
        return TECHNOLOGY_FACTORIES[key]()
    except KeyError:
        known = ", ".join(sorted(TECHNOLOGY_FACTORIES))
        raise ScenarioError(
            f"unknown technology {key!r} (known: {known})") from None


def battery_for(key: str, scale: float = 1.0) -> BatterySpec:
    """Instantiate the battery registered under *key*, capacity-scaled.

    ``scale`` shrinks (or grows) the cell's capacity, which is how a
    scenario compresses a week of battery trajectory into an hour of
    simulated time (see the ``week_wear`` gallery scenario).
    """
    try:
        spec = BATTERY_FACTORIES[key]()
    except KeyError:
        known = ", ".join(sorted(BATTERY_FACTORIES))
        raise ScenarioError(
            f"unknown battery {key!r} (known: {known})") from None
    if scale == 1.0:
        return spec
    return dataclasses.replace(spec, capacity_mah=spec.capacity_mah * scale)


def harvester_for(key: str) -> EnergyHarvester:
    """Instantiate the harvester registered under *key*."""
    try:
        return HARVESTER_FACTORIES[key]()
    except KeyError:
        known = ", ".join(sorted(HARVESTER_FACTORIES))
        raise ScenarioError(
            f"unknown harvester {key!r} (known: {known})") from None


def environment_for(key: str) -> HarvestingEnvironment:
    """Resolve a harvesting-environment short name."""
    try:
        return ENVIRONMENTS[key]
    except KeyError:
        known = ", ".join(sorted(ENVIRONMENTS))
        raise ScenarioError(
            f"unknown environment {key!r} (known: {known})") from None


#: Whole-body postures, by short name (see :mod:`repro.body.posture`).
POSTURES: dict[str, Posture] = {posture.value: posture for posture in Posture}


def posture_for(key: str) -> Posture:
    """Resolve a posture short name."""
    try:
        return POSTURES[key]
    except KeyError:
        known = ", ".join(sorted(POSTURES))
        raise ScenarioError(
            f"unknown posture {key!r} (known: {known})") from None


@dataclass(frozen=True)
class ReliabilitySpec:
    """Lossy-link configuration of a scenario.

    Turns the scenario's per-node link budgets into per-packet erasure
    probabilities and arms the medium's ARQ.  The physical story:

    * EQS (Wi-R family) nodes ride the capacitive body channel, whose
      gain depends on ``posture`` (ground coupling) — swap postures with
      ``action="posture"`` :class:`ScenarioEvent`s.  The receiver's
      input-referred noise is ``eqs_noise_rms_volts``.
    * RF (BLE/Wi-Fi family) nodes pay Friis plus body shadowing against
      ``rf_noise_floor_dbm`` — raise the floor to model an
      interference-heavy environment (a noisy clinical ward).
    * Technologies with no modelled channel (MQS implants, NFMI) fall
      back to ``default_error_rate``.

    ``arq=False`` makes the medium a pure erasure channel (every
    corrupted packet is lost); otherwise a stop-and-wait ARQ retries up
    to ``arq_retry_limit`` times with ``ack_bits``-long acks.
    """

    posture: str = "standing_shoes"
    eqs_noise_rms_volts: float = 1e-6
    rf_noise_floor_dbm: float = -94.0
    default_error_rate: float = 0.0
    arq: bool = True
    arq_retry_limit: int | None = 3
    ack_bits: float = DEFAULT_ACK_BITS

    def __post_init__(self) -> None:
        posture_for(self.posture)  # raises with the known list
        if self.eqs_noise_rms_volts <= 0:
            raise ScenarioError("EQS noise must be positive")
        if not 0.0 <= self.default_error_rate <= 1.0:
            raise ScenarioError("default error rate must be in [0, 1]")
        if self.arq_retry_limit is not None and self.arq_retry_limit < 0:
            raise ScenarioError("ARQ retry limit must be >= 0 (or None)")
        if self.ack_bits < 0:
            raise ScenarioError("ack length must be non-negative")

    def arq_policy(self) -> ARQPolicy | None:
        """The medium-level ARQ policy this spec compiles to."""
        if not self.arq:
            return None
        return ARQPolicy(retry_limit=self.arq_retry_limit,
                         ack_bits=self.ack_bits)

    def node_error_rate(self, node: "ScenarioNodeSpec",
                        posture: str | None = None) -> float:
        """Per-packet erasure probability of one leaf population.

        *posture* overrides the spec's initial posture (posture events
        re-derive rates mid-run).  Only EQS nodes feel the posture; RF
        nodes feel the noise floor; everything else gets the default.
        """
        technology = technology_for(node.technology)
        if isinstance(technology, EQSHBCTransceiver):
            channel = channel_for_posture(
                posture_for(posture if posture is not None else self.posture))
            budget = eqs_link_budget(
                channel,
                tx_swing_volts=technology.tx_swing_volts,
                noise_rms_volts=self.eqs_noise_rms_volts,
                distance_metres=node.channel_distance_metres,
                frequency_hz=technology.carrier_frequency_hz,
            )
        elif hasattr(technology, "path_loss") and \
                hasattr(technology, "tx_power_dbm"):
            budget = rf_link_budget(
                technology.path_loss,
                tx_power_dbm=technology.tx_power_dbm,
                noise_floor_dbm=self.rf_noise_floor_dbm,
                distance_metres=node.channel_distance_metres,
            )
        else:
            return self.default_error_rate
        # Coded nodes put shorter packets on the air, so the same BER
        # corrupts fewer of them — the PER side of the coding trade.
        return budget.packet_error_rate(node.coded_bits_per_packet())

    def node_error_rate_adjusted(self, node: "ScenarioNodeSpec",
                                 posture: str | None = None,
                                 rf_interference_dbm: float = -math.inf,
                                 eqs_interference_volts: float = 0.0,
                                 tx_power_offset_db: float = 0.0) -> float:
        """Erasure probability under interference and a tx-power boost.

        The multi-body/controller entry point: *rf_interference_dbm* is
        the aggregate co-channel power other bodies put on the air
        (power-summed onto the thermal floor for RF nodes),
        *eqs_interference_volts* the receiver-referred voltage their
        EQS activity couples onto this body (root-sum-squared onto the
        input noise), and *tx_power_offset_db* a controller's transmit
        boost (voltage swing for EQS, radiated power for RF).  At the
        neutral arguments every branch reproduces
        :meth:`node_error_rate` exactly — same floats, same PER — which
        is what keeps a one-body environment and a static controller
        bit-identical to a standalone run.
        """
        technology = technology_for(node.technology)
        if isinstance(technology, EQSHBCTransceiver):
            swing = technology.tx_swing_volts
            if tx_power_offset_db != 0.0:
                swing = swing * 10.0 ** (tx_power_offset_db / 20.0)
            channel = channel_for_posture(
                posture_for(posture if posture is not None else self.posture))
            budget = eqs_link_budget(
                channel,
                tx_swing_volts=swing,
                noise_rms_volts=interference_adjusted_noise_volts(
                    self.eqs_noise_rms_volts, eqs_interference_volts),
                distance_metres=node.channel_distance_metres,
                frequency_hz=technology.carrier_frequency_hz,
            )
        elif hasattr(technology, "path_loss") and \
                hasattr(technology, "tx_power_dbm"):
            tx_power = technology.tx_power_dbm
            if tx_power_offset_db != 0.0:
                tx_power = tx_power + tx_power_offset_db
            budget = rf_link_budget(
                technology.path_loss,
                tx_power_dbm=tx_power,
                noise_floor_dbm=interference_adjusted_noise_floor_dbm(
                    self.rf_noise_floor_dbm, rf_interference_dbm),
                distance_metres=node.channel_distance_metres,
            )
        else:
            return self.default_error_rate
        return budget.packet_error_rate(node.coded_bits_per_packet())


@dataclass(frozen=True)
class ScenarioNodeSpec:
    """One leaf population in a scenario.

    Either ``modality`` (rate taken from the sensor catalog's compressed
    rate) or an explicit ``rate_bps`` must be given.  ``count > 1``
    replicates the node as ``name0..nameN-1``.

    ``battery`` (a :data:`BATTERY_FACTORIES` key) gives the node a finite
    cell whose capacity is multiplied by ``battery_scale`` — scaling a
    cell down compresses days of battery trajectory into a short run.
    ``harvester`` (a :data:`HARVESTER_FACTORIES` key) credits energy back
    in the scenario's environment, and ``low_battery_fraction`` arms the
    simulator's duty-cycle adaptation.  All default to off, which keeps
    the node's compiled behaviour bit-identical to the pre-energy-runtime
    kernel.

    ``coding`` (a :class:`~repro.coding.CodingSpec`) puts a rate-adaptive
    source coder between the sensor and the radio: packets keep their
    generation cadence but carry ``coded_bits_per_packet()`` on the air,
    the link budget sees the shorter packets (lower PER), and the
    encoder's power draw (:meth:`coding_power_watts`) is charged to the
    ``"coding"`` ledger component.  ``coding=None`` (the default) leaves
    every compiled float bit-identical to the pre-coding layer.
    """

    name: str
    modality: SensorModality | None = None
    rate_bps: float | None = None
    bits_per_packet: float = 8192.0
    technology: str = "wir"
    traffic: str = "periodic"
    count: int = 1
    sensing_power_watts: float = 30e-6
    isa_power_watts: float = 0.0
    battery: str | None = None
    battery_scale: float = 1.0
    initial_charge_fraction: float = 1.0
    harvester: str | None = None
    low_battery_fraction: float | None = None
    #: On-body channel length to the hub (wrist-to-chest scale); feeds
    #: the node's link budget when the scenario is lossy.
    channel_distance_metres: float = 1.5
    #: Optional rate-adaptive source coder (see :mod:`repro.coding`).
    coding: CodingSpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("node name must be non-empty")
        if self.channel_distance_metres <= 0:
            raise ScenarioError(
                f"node {self.name!r} channel distance must be positive")
        if self.modality is None and self.rate_bps is None:
            raise ScenarioError(
                f"node {self.name!r} needs a modality or an explicit rate")
        if self.rate_bps is not None and self.rate_bps <= 0:
            raise ScenarioError(f"node {self.name!r} rate must be positive")
        if self.bits_per_packet <= 0:
            raise ScenarioError(
                f"node {self.name!r} packet size must be positive")
        if self.count < 1:
            raise ScenarioError(f"node {self.name!r} count must be >= 1")
        if self.traffic not in ("periodic", "poisson"):
            raise ScenarioError(
                f"node {self.name!r} traffic must be 'periodic' or 'poisson'")
        if self.technology not in TECHNOLOGY_FACTORIES:
            technology_for(self.technology)  # raises with the known list
        if self.sensing_power_watts < 0 or self.isa_power_watts < 0:
            raise ScenarioError(
                f"node {self.name!r} powers must be non-negative")
        if self.battery_scale <= 0:
            raise ScenarioError(
                f"node {self.name!r} battery scale must be positive")
        if not 0.0 < self.initial_charge_fraction <= 1.0:
            raise ScenarioError(
                f"node {self.name!r} initial charge must be in (0, 1]")
        if self.low_battery_fraction is not None and not (
                0.0 < self.low_battery_fraction < 1.0):
            raise ScenarioError(
                f"node {self.name!r} low-battery fraction must be in (0, 1)")
        if self.battery is not None:
            battery_for(self.battery)  # raises with the known list
        if self.harvester is not None:
            harvester_for(self.harvester)  # raises with the known list

    def resolved_rate_bps(self) -> float:
        """The offered rate: explicit override, else catalog compressed rate."""
        if self.rate_bps is not None:
            return self.rate_bps
        return modality_spec(self.modality).compressed_data_rate_bps

    def expanded_names(self) -> list[str]:
        """Concrete node names after replication."""
        if self.count == 1:
            return [self.name]
        return [f"{self.name}{index}" for index in range(self.count)]

    # -- source coding -----------------------------------------------------
    #
    # When ``coding is None`` every method below returns the plain
    # attribute (or a literal 0.0 / 1.0) with no arithmetic applied, so
    # the compiled simulator and the cohort fast path stay bit-identical
    # to the pre-coding layer.

    def coded_bits_per_packet(self) -> float:
        """On-air payload per packet (source bits when uncoded)."""
        if self.coding is None:
            return self.bits_per_packet
        return self.coding.coded_bits(self.bits_per_packet, self.modality)

    def effective_coding_rate(self) -> float:
        """Achieved coded bits per source bit (1.0 when uncoded)."""
        if self.coding is None:
            return 1.0
        return self.coding.effective_rate(self.modality)

    def coding_power_watts(self) -> float:
        """Average encoder draw for this node's stream (0.0 uncoded)."""
        if self.coding is None:
            return 0.0
        return self.coding.encode_power_watts(self.resolved_rate_bps(),
                                              self.modality)

    def air_rate_bps(self) -> float:
        """Average on-air rate after coding.

        Mirrors the attached source's ``average_rate_bps()`` arithmetic
        exactly (coded payload over the uncoded generation period), so
        analytic slot sizing agrees bit-for-bit with what the simulator
        registers on its medium.
        """
        if self.coding is None:
            return self.resolved_rate_bps()
        return self.coded_bits_per_packet() \
            / (self.bits_per_packet / self.resolved_rate_bps())

    def make_source(self) -> TrafficSource:
        """Build this node's traffic source.

        A coded node keeps the *generation* cadence of its source stream
        (one packet per ``bits_per_packet`` source bits) but each packet
        carries the coded payload — the bit-reduction factor the kernel's
        service/energy tables fold in.
        """
        rate = self.resolved_rate_bps()
        if self.coding is not None:
            coded_bits = self.coded_bits_per_packet()
            if self.traffic == "periodic":
                return PeriodicSource(
                    period_seconds=self.bits_per_packet / rate,
                    bits_per_packet=coded_bits,
                )
            return PoissonSource(
                mean_interarrival_seconds=self.bits_per_packet / rate,
                mean_bits_per_packet=coded_bits,
            )
        if self.traffic == "periodic":
            return PeriodicSource.from_rate(rate,
                                            bits_per_packet=self.bits_per_packet)
        return PoissonSource(
            mean_interarrival_seconds=self.bits_per_packet / rate,
            mean_bits_per_packet=self.bits_per_packet,
        )


@dataclass(frozen=True)
class ScenarioEvent:
    """A duty-cycle or posture event during the run.

    Fires at ``at_fraction`` of the simulated duration and either puts
    every node whose name starts with one of the ``node_prefixes`` to
    sleep (``action="sleep"``) / wakes it back up (``action="wake"``),
    or — ``action="posture"`` with the ``posture`` field set — swaps the
    active body channel for the matching nodes, re-deriving their
    packet-erasure probabilities through :class:`ReliabilitySpec` and
    :func:`repro.body.posture.channel_for_posture`.  A whole-body
    posture change uses the match-everything prefix ``("",)``.
    """

    at_fraction: float
    action: str
    node_prefixes: tuple[str, ...]
    posture: str | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.at_fraction <= 1.0:
            raise ScenarioError("event fraction must be in [0, 1]")
        if self.action not in ("sleep", "wake", "posture"):
            raise ScenarioError(
                "event action must be 'sleep', 'wake' or 'posture'")
        if not self.node_prefixes:
            raise ScenarioError("event needs at least one node prefix")
        if self.action == "posture":
            if self.posture is None:
                raise ScenarioError("posture event needs a posture")
            posture_for(self.posture)  # raises with the known list
        elif self.posture is not None:
            raise ScenarioError(
                "only posture events may carry a posture")


@dataclass(frozen=True)
class ScenarioResult:
    """One scenario execution: the spec's identity plus the sim outcome."""

    scenario: str
    duration_seconds: float
    arbitration: str
    node_count: int
    technologies: tuple[str, ...]
    simulated: SimulationResult

    def row(self) -> dict[str, object]:
        """One report-table row for this scenario run.

        The lifetime columns only appear for battery-carrying scenarios,
        so the historical gallery rows are byte-identical to before the
        energy runtime existed.
        """
        sim = self.simulated
        row: dict[str, object] = {
            "scenario": self.scenario,
            "nodes": self.node_count,
            "mac": self.arbitration,
            "technologies": len(self.technologies),
            "sim_seconds": self.duration_seconds,
            "delivered": sim.delivered_packets,
            "delivered_fraction": round(sim.delivered_fraction, 4),
            "mean_latency_ms": sim.mean_latency_seconds * 1e3,
            "p99_latency_ms": sim.p99_latency_seconds * 1e3,
            "bus_utilization": round(sim.bus_utilization, 4),
            "leaf_power_uw": sim.total_leaf_power_watts * 1e6,
            "hub_power_uw": sim.hub_average_power_watts * 1e6,
        }
        if sim.per_node_state_of_charge:
            row["min_soc"] = round(
                min(sim.per_node_state_of_charge.values()), 4)
            row["dead_nodes"] = sim.dead_node_count
            row["first_death_s"] = (
                round(sim.first_death_seconds, 2)
                if math.isfinite(sim.first_death_seconds) else float("inf"))
        if sim.per_node_state_of_charge or sim.harvested_joules > 0.0:
            # Harvester-only nodes (no battery) still bank income.
            row["harvested_j"] = round(sim.harvested_joules, 6)
        if sim.reliability_enabled:
            # Only lossy scenarios grow these columns, so the historical
            # gallery rows stay byte-identical.
            row["erased"] = sim.erased_attempts
            row["retx"] = sim.retransmissions
            row["lost"] = sim.lost_packets
            row["attempts_per_pkt"] = round(sim.attempts_per_delivered, 4)
            row["retx_energy_uj"] = round(
                sim.retransmission_energy_joules * 1e6, 3)
        if sim.coding_enabled:
            # Coding columns only appear for coded scenarios, keeping the
            # historical gallery rows byte-identical (same pattern as the
            # reliability columns above).
            row["bit_reduction"] = round(sim.bit_reduction_factor, 4)
            row["encode_energy_fraction"] = round(
                sim.encode_energy_fraction, 4)
        return row


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, named body-network workload."""

    name: str
    description: str
    duration_seconds: float
    nodes: tuple[ScenarioNodeSpec, ...]
    arbitration: str = "fifo"
    hub_technology: str = "wir"
    events: tuple[ScenarioEvent, ...] = ()
    per_packet_overhead_seconds: float = 100e-6
    environment: str = "indoor_office"
    energy_update_interval_seconds: float = 1.0
    reliability: ReliabilitySpec | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.duration_seconds <= 0:
            raise ScenarioError("scenario duration must be positive")
        if not self.nodes:
            raise ScenarioError(f"scenario {self.name!r} has no nodes")
        if self.arbitration not in POLICY_FACTORIES:
            known = ", ".join(sorted(POLICY_FACTORIES))
            raise ScenarioError(
                f"scenario {self.name!r}: unknown arbitration "
                f"{self.arbitration!r} (known: {known})")
        technology_for(self.hub_technology)
        environment_for(self.environment)
        if self.energy_update_interval_seconds <= 0:
            raise ScenarioError(
                f"scenario {self.name!r}: energy update interval must be "
                "positive")
        seen: set[str] = set()
        for node in self.nodes:
            for concrete in node.expanded_names():
                if concrete in seen:
                    raise ScenarioError(
                        f"scenario {self.name!r}: duplicate node "
                        f"{concrete!r}")
                seen.add(concrete)
            # A node faster than its own link can never drain its queue.
            link_rate = technology_for(node.technology).data_rate_bps()
            if node.resolved_rate_bps() > link_rate:
                raise ScenarioError(
                    f"scenario {self.name!r}: node {node.name!r} offers "
                    f"{node.resolved_rate_bps():.3g} bit/s over a "
                    f"{link_rate:.3g} bit/s link")
        for event in self.events:
            prefixes = tuple(event.node_prefixes)
            if not any(concrete.startswith(prefix)
                       for prefix in prefixes
                       for node in self.nodes
                       for concrete in node.expanded_names()):
                raise ScenarioError(
                    f"scenario {self.name!r}: event prefixes {prefixes!r} "
                    "match no node")
            if event.action == "posture" and self.reliability is None:
                raise ScenarioError(
                    f"scenario {self.name!r}: posture events need a "
                    "reliability spec (the posture only matters through "
                    "the link budget)")

    # -- derived views -----------------------------------------------------

    @property
    def leaf_count(self) -> int:
        """Total concrete leaf nodes after replication."""
        return sum(node.count for node in self.nodes)

    def offered_rate_bps(self) -> float:
        """Aggregate offered rate of all leaves."""
        return sum(node.resolved_rate_bps() * node.count
                   for node in self.nodes)

    def technologies(self) -> tuple[str, ...]:
        """Sorted set of technology keys used by the leaves."""
        return tuple(sorted({node.technology for node in self.nodes}))

    @property
    def has_energy_runtime(self) -> bool:
        """Whether any leaf carries a battery or a harvester."""
        return any(node.battery is not None or node.harvester is not None
                   for node in self.nodes)

    @property
    def has_coding(self) -> bool:
        """Whether any leaf runs a source coder."""
        return any(node.coding is not None for node in self.nodes)

    def capabilities(self) -> tuple[str, ...]:
        """Capability tags (``lossy`` / ``coded`` / ``battery``).

        The navigation column of ``repro scenarios list``: which
        subsystems a scenario exercises — a reliability spec (lossy
        links), source coders, or batteries/harvesters.  Multi-body
        environments add their own ``multi-body`` tag on top (see
        :meth:`repro.scenarios.environment.EnvironmentSpec.capabilities`).
        """
        tags = []
        if self.reliability is not None:
            tags.append("lossy")
        if self.has_coding:
            tags.append("coded")
        if self.has_energy_runtime:
            tags.append("battery")
        return tuple(tags)

    def node_posture_timeline(self, concrete: str,
                              node: "ScenarioNodeSpec"
                              ) -> list[tuple[float, float, str]]:
        """``(start, end, posture)`` segments one concrete node sees.

        Replays the scenario's posture events in the simulator's order
        (schedule order at equal fractions).  Requires a reliability
        spec (which provides the initial posture).
        """
        if self.reliability is None:
            raise ScenarioError(
                f"scenario {self.name!r} has no reliability spec")
        segments: list[tuple[float, float, str]] = []
        current = self.reliability.posture
        last = 0.0
        ordered = sorted(enumerate(self.events),
                         key=lambda pair: (pair[1].at_fraction, pair[0]))
        for _, event in ordered:
            if event.action != "posture":
                continue
            if not any(concrete.startswith(prefix)
                       for prefix in event.node_prefixes):
                continue
            if event.at_fraction > last:
                segments.append((last, event.at_fraction, current))
            last = event.at_fraction
            current = event.posture
        if last < 1.0 or not segments:
            segments.append((last, 1.0, current))
        return segments

    def node_awake_intervals(self, concrete: str
                             ) -> list[tuple[float, float]]:
        """``(start, end)`` fractions during which one node generates.

        The same sleep/wake replay :func:`repro.cohort.analytic.
        active_fractions` integrates, kept here as intervals so posture
        segments can be weighted by the traffic that actually flowed in
        them.
        """
        ordered = sorted(enumerate(self.events),
                         key=lambda pair: (pair[1].at_fraction, pair[0]))
        intervals: list[tuple[float, float]] = []
        active = True
        last = 0.0
        for _, event in ordered:
            if event.action not in ("sleep", "wake"):
                continue
            if not any(concrete.startswith(prefix)
                       for prefix in event.node_prefixes):
                continue
            if active and event.at_fraction > last:
                intervals.append((last, event.at_fraction))
            last = event.at_fraction
            active = event.action == "wake"
        if active and last < 1.0:
            intervals.append((last, 1.0))
        return intervals

    def reliability_profile(self) -> dict[str, tuple[float, float]]:
        """Per-packet ``(delivery probability, expected attempts)``
        averaged over each concrete node's posture schedule.

        The closed-form counterpart of the DES erasure process, used by
        the cohort analytic fast path: each posture segment contributes
        its ARQ delivery probability and truncated-geometric attempt
        count (see :class:`~repro.netsim.reliability.ARQPolicy`),
        weighted by the node's *awake* time inside the segment — a
        posture the node slept through offered no packets and must not
        tilt the average.  Without ARQ a corrupted packet is lost, so
        delivery probability is ``1 - PER`` and every packet is
        attempted exactly once.
        """
        return self.reliability_profile_adjusted()

    def reliability_profile_adjusted(
            self, rf_interference_dbm: float = -math.inf,
            eqs_interference_volts: float = 0.0
    ) -> dict[str, tuple[float, float]]:
        """:meth:`reliability_profile` under ambient interference.

        The closed-form interference correction the cohort analytic
        applies to multi-body members: every posture segment's erasure
        probability is re-derived through
        :meth:`ReliabilitySpec.node_error_rate_adjusted` with the given
        aggregate co-channel power (RF nodes) and coupled voltage (EQS
        nodes).  At the neutral arguments every segment computes
        exactly the floats of the plain profile — which is why
        :meth:`reliability_profile` simply delegates here, and why
        one-body cohorts stay bit-identical.
        """
        if self.reliability is None:
            return {concrete: (1.0, 1.0) for node in self.nodes
                    for concrete in node.expanded_names()}
        arq = self.reliability.arq_policy()
        profile: dict[str, tuple[float, float]] = {}
        for node in self.nodes:
            for concrete in node.expanded_names():
                awake = self.node_awake_intervals(concrete)
                delivered = 0.0
                attempts = 0.0
                total_weight = 0.0
                for start, end, posture in \
                        self.node_posture_timeline(concrete, node):
                    weight = sum(min(end, high) - max(start, low)
                                 for low, high in awake
                                 if min(end, high) > max(start, low))
                    if weight == 0.0:
                        continue
                    total_weight += weight
                    error_rate = self.reliability.node_error_rate_adjusted(
                        node, posture,
                        rf_interference_dbm=rf_interference_dbm,
                        eqs_interference_volts=eqs_interference_volts)
                    if arq is None:
                        delivered += weight * (1.0 - error_rate)
                        attempts += weight
                    else:
                        delivered += weight \
                            * arq.delivery_probability(error_rate)
                        attempts += weight \
                            * arq.expected_attempts(error_rate)
                if total_weight == 0.0:
                    profile[concrete] = (1.0, 1.0)  # never awake: no packets
                else:
                    profile[concrete] = (delivered / total_weight,
                                         attempts / total_weight)
        return profile

    # -- compilation -------------------------------------------------------

    def build(self, seed: int = 0,
              duration_seconds: float | None = None,
              latency_exact_capacity: int | None = None
              ) -> BodyNetworkSimulator:
        """Compile the spec into a configured simulator.

        Duty-cycle events are pre-scheduled on the simulator's queue
        against the resolved duration; call :meth:`run` (or
        ``simulator.run`` with the same duration) to execute.
        """
        duration = (duration_seconds if duration_seconds is not None
                    else self.duration_seconds)
        if duration <= 0:
            raise ScenarioError("duration must be positive")
        hub_technology = technology_for(self.hub_technology)
        link_reliability = None
        if self.reliability is not None:
            link_reliability = LinkReliability(
                seed=seed,
                arq=self.reliability.arq_policy(),
                default_error_rate=self.reliability.default_error_rate,
            )
        simulator = BodyNetworkSimulator(
            hub_technology,
            rng=seed,
            per_packet_overhead_seconds=self.per_packet_overhead_seconds,
            arbitration=self.arbitration,
            latency_exact_capacity=latency_exact_capacity,
            energy_update_interval_seconds=self.energy_update_interval_seconds,
            harvest_environment=environment_for(self.environment),
            reliability=link_reliability,
        )
        spec_of: dict[str, ScenarioNodeSpec] = {}
        for node in self.nodes:
            technology = (None if node.technology == self.hub_technology
                          else technology_for(node.technology))
            battery = (battery_for(node.battery, node.battery_scale)
                       if node.battery is not None else None)
            for concrete in node.expanded_names():
                spec_of[concrete] = node
                simulator.attach(NodeConfig(
                    concrete,
                    node.make_source(),
                    sensing_power_watts=node.sensing_power_watts,
                    isa_power_watts=node.isa_power_watts,
                    technology=technology,
                    battery=battery,
                    harvester=(harvester_for(node.harvester)
                               if node.harvester is not None else None),
                    initial_charge_fraction=node.initial_charge_fraction,
                    low_battery_fraction=node.low_battery_fraction,
                    coding_power_watts=node.coding_power_watts(),
                    coding_rate=node.effective_coding_rate(),
                ))
                if link_reliability is not None:
                    link_reliability.set_error_rate(
                        concrete,
                        self.reliability.node_error_rate(node))
        self._warm_compiled_tables(simulator)
        for event in self.events:
            targets = [name for name in simulator.nodes
                       if any(name.startswith(prefix)
                              for prefix in event.node_prefixes)]
            if event.action == "posture":
                def swap_posture(targets=targets, posture=event.posture):
                    for name in targets:
                        simulator.set_node_error_rate(
                            name, self.reliability.node_error_rate(
                                spec_of[name], posture))
                simulator.queue.schedule_at(
                    event.at_fraction * duration, swap_posture)
                continue
            active = event.action == "wake"
            simulator.queue.schedule_at(
                event.at_fraction * duration,
                lambda targets=targets, active=active: [
                    simulator.set_node_active(name, active)
                    for name in targets
                ],
            )
        return simulator

    def _warm_compiled_tables(self,
                              simulator: BodyNetworkSimulator) -> None:
        """Reuse (or compile and cache) the spec's derived tables.

        Service times and TDMA slot windows depend only on the spec's
        topology, never on seed or duration, so repeated builds of an
        equal spec — every sweep grid point sharing a topology — copy
        them from :data:`_COMPILE_CACHE` instead of re-deriving them.
        """
        try:
            cached = _COMPILE_CACHE.get(self)
        except TypeError:  # unhashable spec subclass: skip caching
            return
        bus = simulator.bus
        policy = bus.policy
        if cached is not None:
            bus._service_cache.update(cached["service"])
            windows = cached["windows"]
            if windows is not None and isinstance(policy, TDMAArbitration):
                policy._windows = dict(windows)
                policy._build_ring(policy._windows)
            return
        for name, node in simulator.nodes.items():
            bits = getattr(node.source, "bits_per_packet", None)
            if bits is not None:
                bus.service_time_seconds(Packet(name, "hub", bits, 0.0))
        windows = None
        if isinstance(policy, TDMAArbitration):
            windows = dict(policy._slot_table())
        if len(_COMPILE_CACHE) >= _COMPILE_CACHE_LIMIT:
            _COMPILE_CACHE.clear()
        _COMPILE_CACHE[self] = {"service": dict(bus._service_cache),
                                "windows": windows}

    def run(self, seed: int = 0,
            duration_seconds: float | None = None,
            latency_exact_capacity: int | None = None,
            fast_path: str | None = None) -> ScenarioResult:
        """Compile and execute; returns the scenario-labelled result.

        ``fast_path`` is forwarded to
        :meth:`~repro.netsim.simulator.BodyNetworkSimulator.run`:
        ``"hybrid"`` enables the macro-tick steady-state fast path,
        ``None``/``"exact"`` keep the bit-exact kernel.
        """
        duration = (duration_seconds if duration_seconds is not None
                    else self.duration_seconds)
        simulator = self.build(seed=seed, duration_seconds=duration,
                               latency_exact_capacity=latency_exact_capacity)
        simulated = simulator.run(duration, fast_path=fast_path)
        return ScenarioResult(
            scenario=self.name,
            duration_seconds=duration,
            arbitration=self.arbitration,
            node_count=self.leaf_count,
            technologies=self.technologies(),
            simulated=simulated,
        )

    def describe(self) -> dict[str, object]:
        """Summary row for ``repro scenarios list``."""
        return {
            "scenario": self.name,
            "nodes": self.leaf_count,
            "mac": self.arbitration,
            "technologies": ",".join(self.technologies()),
            "offered_kbps": self.offered_rate_bps() / 1e3,
            "sim_seconds": self.duration_seconds,
            "events": len(self.events),
            "description": self.description,
            "capabilities": ",".join(self.capabilities()) or "-",
        }
