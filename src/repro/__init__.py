"""repro — Human-Inspired Distributed Wearable AI (DAC 2024) reproduction.

A simulation framework for the Internet of Bodies architecture proposed by
Sen and Datta: ultra-low-power leaf nodes (sensors, in-sensor analytics,
Wi-R transceivers) distributed over the body, connected to a single
on-body hub ("wearable brain") by electro-quasistatic human body
communication, with heavy DNN inference partitioned between leaf and hub.

Top-level subpackages
---------------------
``repro.core``
    The paper's contribution: node architectures, power budgets,
    battery-life projection, offloading and DNN partitioning, the
    end-to-end network designer.
``repro.comm``
    Link technologies: Wi-R / EQS-HBC, BLE, Wi-Fi, NFMI; channel,
    security and MAC models.
``repro.energy``
    Batteries, energy harvesters, converters, energy accounting.
``repro.sensors``
    Sensing modalities, the AFE power survey, synthetic signal generators.
``repro.isa``
    In-sensor analytics: compression and feature extraction.
``repro.nn``
    From-scratch numpy DNN inference engine, profiler and model zoo.
``repro.netsim``
    Discrete-event body-area-network simulator.
``repro.body``
    Body graph, landmarks and on-body channel lengths.
``repro.analysis``
    Commercial device survey and report formatting.
``repro.experiments``
    One driver per reproduced figure/table (E1-E11).

Quick start
-----------
>>> from repro.experiments import fig3_battery_projection
>>> result = fig3_battery_projection.run(n_points=13)
>>> result.bands_match_paper()
True
"""

from . import units
from .errors import ReproError

__version__ = "1.0.0"

__all__ = ["units", "ReproError", "__version__"]
