"""Catalog of wearable sensing modalities and their data rates.

The modalities are the ones the paper names explicitly: biopotential
signals (ECG, EMG, EEG), photoplethysmography and other fitness-tracking
channels, inertial motion, audio for voice interfaces, and first-person
video.  Each entry records the native sampling parameters from which the
raw data rate follows, plus a typical compressed rate when in-sensor
analytics (ISA) or codec compression is applied — the two x-axis
positions a device class occupies in Fig. 3.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError


class SensorModality(enum.Enum):
    """Sensing modalities considered by the experiments."""

    TEMPERATURE = "temperature"
    PPG = "ppg"
    ECG = "ecg"
    EMG = "emg"
    EEG = "eeg"
    IMU = "imu"
    AUDIO = "audio"
    VIDEO_QVGA = "video_qvga"
    VIDEO_720P = "video_720p"


@dataclass(frozen=True)
class ModalitySpec:
    """Sampling parameters and rates for one sensing modality."""

    modality: SensorModality
    description: str
    sample_rate_hz: float
    bits_per_sample: int
    channels: int
    compressed_rate_fraction: float

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        if self.bits_per_sample <= 0:
            raise ConfigurationError("bits per sample must be positive")
        if self.channels <= 0:
            raise ConfigurationError("channel count must be positive")
        if not 0.0 < self.compressed_rate_fraction <= 1.0:
            raise ConfigurationError("compressed fraction must be in (0, 1]")

    @property
    def raw_data_rate_bps(self) -> float:
        """Uncompressed data rate in bits per second."""
        return self.sample_rate_hz * self.bits_per_sample * self.channels

    @property
    def compressed_data_rate_bps(self) -> float:
        """Data rate after typical ISA / codec compression."""
        return self.raw_data_rate_bps * self.compressed_rate_fraction


#: The survey catalog.  Sample rates and resolutions follow common
#: clinical/consumer practice; video uses 8 bit/pixel luma-equivalent with
#: the compression fraction standing in for MJPEG (~10:1) and the audio
#: fraction for a speech codec (~4:1).
MODALITY_CATALOG: dict[SensorModality, ModalitySpec] = {
    SensorModality.TEMPERATURE: ModalitySpec(
        modality=SensorModality.TEMPERATURE,
        description="skin temperature (1 sample/s, 16 bit)",
        sample_rate_hz=1.0,
        bits_per_sample=16,
        channels=1,
        compressed_rate_fraction=1.0,
    ),
    SensorModality.PPG: ModalitySpec(
        modality=SensorModality.PPG,
        description="photoplethysmogram for heart rate / SpO2",
        sample_rate_hz=100.0,
        bits_per_sample=16,
        channels=2,
        compressed_rate_fraction=0.5,
    ),
    SensorModality.ECG: ModalitySpec(
        modality=SensorModality.ECG,
        description="single-lead electrocardiogram patch",
        sample_rate_hz=250.0,
        bits_per_sample=12,
        channels=1,
        compressed_rate_fraction=0.5,
    ),
    SensorModality.EMG: ModalitySpec(
        modality=SensorModality.EMG,
        description="surface electromyogram (gesture sensing)",
        sample_rate_hz=1000.0,
        bits_per_sample=12,
        channels=4,
        compressed_rate_fraction=0.5,
    ),
    SensorModality.EEG: ModalitySpec(
        modality=SensorModality.EEG,
        description="electroencephalogram headband",
        sample_rate_hz=256.0,
        bits_per_sample=16,
        channels=8,
        compressed_rate_fraction=0.5,
    ),
    SensorModality.IMU: ModalitySpec(
        modality=SensorModality.IMU,
        description="6-axis inertial measurement unit",
        sample_rate_hz=100.0,
        bits_per_sample=16,
        channels=6,
        compressed_rate_fraction=0.5,
    ),
    SensorModality.AUDIO: ModalitySpec(
        modality=SensorModality.AUDIO,
        description="single microphone voice capture (16 kHz, 16 bit)",
        sample_rate_hz=16_000.0,
        bits_per_sample=16,
        channels=1,
        compressed_rate_fraction=0.25,
    ),
    SensorModality.VIDEO_QVGA: ModalitySpec(
        modality=SensorModality.VIDEO_QVGA,
        description="QVGA first-person video, 15 fps, MJPEG-class compression",
        sample_rate_hz=320.0 * 240.0 * 15.0,
        bits_per_sample=8,
        channels=1,
        compressed_rate_fraction=0.1,
    ),
    SensorModality.VIDEO_720P: ModalitySpec(
        modality=SensorModality.VIDEO_720P,
        description="720p first-person video, 30 fps, MJPEG-class compression",
        sample_rate_hz=1280.0 * 720.0 * 30.0,
        bits_per_sample=8,
        channels=1,
        compressed_rate_fraction=0.1,
    ),
}


def modality_spec(modality: SensorModality) -> ModalitySpec:
    """Look up the catalog entry for *modality*."""
    try:
        return MODALITY_CATALOG[modality]
    except KeyError as exc:
        raise ConfigurationError(f"unknown modality: {modality!r}") from exc


def modality_data_rate_bps(modality: SensorModality,
                           compressed: bool = False) -> float:
    """Raw or compressed data rate for *modality* in bit/s."""
    spec = modality_spec(modality)
    if compressed:
        return spec.compressed_data_rate_bps
    return spec.raw_data_rate_bps
