"""Synthetic audio generator for voice-interface workloads.

Voice-based wearable AI (AI pins, pocket assistants, pendants) streams
microphone audio — or features extracted from it — to the hub.  The
generator synthesises formant-like voiced segments separated by silence so
keyword-spotting style workloads see realistic voice activity patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass
class AudioGenerator:
    """Synthetic speech-like audio.

    The waveform alternates silence and "utterances".  Each utterance is a
    harmonic series at a randomised fundamental (approximating voiced
    speech) shaped by an envelope; background noise is added throughout.
    """

    sample_rate_hz: float = 16_000.0
    utterance_rate_hz: float = 0.2
    utterance_duration_seconds: float = 1.0
    fundamental_hz: float = 160.0
    noise_level: float = 0.01

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        if self.utterance_rate_hz < 0:
            raise ConfigurationError("utterance rate must be non-negative")
        if self.utterance_duration_seconds <= 0:
            raise ConfigurationError("utterance duration must be positive")
        if self.fundamental_hz <= 0:
            raise ConfigurationError("fundamental must be positive")
        if self.noise_level < 0:
            raise ConfigurationError("noise level must be non-negative")

    def generate(self, duration_seconds: float,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate *duration_seconds* of mono audio in [-1, 1]."""
        if duration_seconds <= 0:
            raise ConfigurationError("duration must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        n_samples = int(round(duration_seconds * self.sample_rate_hz))
        t = np.arange(n_samples) / self.sample_rate_hz
        signal = rng.standard_normal(n_samples) * self.noise_level

        n_utterances = rng.poisson(self.utterance_rate_hz * duration_seconds)
        for _ in range(n_utterances):
            start = rng.uniform(
                0.0, max(duration_seconds - self.utterance_duration_seconds, 0.0)
            )
            mask = (t >= start) & (t < start + self.utterance_duration_seconds)
            local_t = t[mask] - start
            fundamental = self.fundamental_hz * (1.0 + 0.2 * rng.standard_normal())
            fundamental = max(fundamental, 60.0)
            envelope = np.sin(np.pi * local_t / self.utterance_duration_seconds) ** 2
            utterance = np.zeros_like(local_t)
            for harmonic, weight in ((1, 1.0), (2, 0.6), (3, 0.4), (4, 0.2)):
                phase = rng.uniform(0.0, 2.0 * np.pi)
                utterance += weight * np.sin(
                    2.0 * np.pi * harmonic * fundamental * local_t + phase
                )
            signal[mask] += 0.3 * envelope * utterance
        return np.clip(signal, -1.0, 1.0)

    def voice_activity(self, signal: np.ndarray,
                       frame_seconds: float = 0.02,
                       threshold: float = 0.02) -> np.ndarray:
        """Simple energy-based voice-activity decision per frame."""
        if frame_seconds <= 0:
            raise ConfigurationError("frame length must be positive")
        frame = max(int(round(frame_seconds * self.sample_rate_hz)), 1)
        n_frames = len(signal) // frame
        if n_frames == 0:
            return np.zeros(0, dtype=bool)
        trimmed = np.asarray(signal[: n_frames * frame], dtype=float)
        energy = np.sqrt(np.mean(trimmed.reshape(n_frames, frame) ** 2, axis=1))
        return energy > threshold

    def data_rate_bps(self, bits_per_sample: int = 16) -> float:
        """Raw PCM data rate of the microphone stream."""
        if bits_per_sample <= 0:
            raise ConfigurationError("bits per sample must be positive")
        return self.sample_rate_hz * bits_per_sample
