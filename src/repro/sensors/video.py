"""Synthetic first-person video generator.

Image/video wearable AI (smart glasses, AI pins with cameras, headsets)
streams frames to the hub for vision models.  The generator produces
greyscale frames containing moving geometric objects over a textured
background, so the MJPEG-style compressor and the vision inference
workloads operate on frames with realistic spatial structure and
frame-to-frame correlation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass
class VideoGenerator:
    """Synthetic greyscale video generator."""

    width: int = 160
    height: int = 120
    frame_rate_hz: float = 15.0
    object_count: int = 3
    noise_level: float = 2.0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ConfigurationError("frame dimensions must be positive")
        if self.frame_rate_hz <= 0:
            raise ConfigurationError("frame rate must be positive")
        if self.object_count < 0:
            raise ConfigurationError("object count must be non-negative")
        if self.noise_level < 0:
            raise ConfigurationError("noise level must be non-negative")

    def generate(self, duration_seconds: float,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate frames of shape ``(frames, height, width)`` as uint8."""
        if duration_seconds <= 0:
            raise ConfigurationError("duration must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        n_frames = max(int(round(duration_seconds * self.frame_rate_hz)), 1)

        yy, xx = np.mgrid[0:self.height, 0:self.width]
        background = (
            96.0
            + 32.0 * np.sin(2.0 * np.pi * xx / self.width)
            + 16.0 * np.sin(2.0 * np.pi * yy / (self.height / 2.0))
        )

        positions = rng.uniform(0.0, 1.0, size=(self.object_count, 2))
        velocities = rng.uniform(-0.02, 0.02, size=(self.object_count, 2))
        radii = rng.uniform(0.05, 0.15, size=self.object_count)
        intensities = rng.uniform(150.0, 255.0, size=self.object_count)

        frames = np.empty((n_frames, self.height, self.width), dtype=np.uint8)
        for index in range(n_frames):
            frame = background.copy()
            for obj in range(self.object_count):
                positions[obj] = (positions[obj] + velocities[obj]) % 1.0
                cx = positions[obj, 0] * self.width
                cy = positions[obj, 1] * self.height
                radius = radii[obj] * min(self.width, self.height)
                mask = (xx - cx) ** 2 + (yy - cy) ** 2 <= radius ** 2
                frame[mask] = intensities[obj]
            frame += rng.standard_normal(frame.shape) * self.noise_level
            frames[index] = np.clip(frame, 0, 255).astype(np.uint8)
        return frames

    def frame_bits(self, bits_per_pixel: int = 8) -> float:
        """Raw size of one frame in bits."""
        if bits_per_pixel <= 0:
            raise ConfigurationError("bits per pixel must be positive")
        return float(self.width * self.height * bits_per_pixel)

    def data_rate_bps(self, bits_per_pixel: int = 8) -> float:
        """Raw (uncompressed) video data rate."""
        return self.frame_bits(bits_per_pixel) * self.frame_rate_hz
