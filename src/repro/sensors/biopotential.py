"""Synthetic biopotential signal generators (ECG, EMG, EEG).

The paper's leaf nodes stream biopotential signals (ECG near the chest,
EMG on the limbs, EEG/ECoG on the head) to the hub.  Clinical recordings
are not redistributable offline, so these generators synthesise signals
with the right morphology, bandwidth and amplitude statistics: a PQRST
template train for ECG, burst-modulated coloured noise for EMG, and a
band-mixed oscillation model for EEG.  They are used by the examples, the
ISA feature extractors and the end-to-end network simulation workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


def _require_positive(value: float, name: str) -> float:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return float(value)


def _make_rng(rng: np.random.Generator | int | None) -> np.random.Generator:
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


@dataclass
class ECGGenerator:
    """Synthetic single-lead ECG with PQRST morphology.

    The waveform is a sum of Gaussian bumps per beat (P, Q, R, S, T waves)
    placed on a beat grid with configurable heart rate and heart-rate
    variability, plus baseline wander and measurement noise.  Amplitudes
    are in millivolts, matching skin-electrode levels.
    """

    sample_rate_hz: float = 250.0
    heart_rate_bpm: float = 70.0
    heart_rate_variability: float = 0.03
    noise_mv: float = 0.02
    baseline_wander_mv: float = 0.05

    #: (delay fraction of beat, width fraction of beat, amplitude mV)
    _WAVES = (
        ("P", -0.25, 0.035, 0.12),
        ("Q", -0.05, 0.012, -0.15),
        ("R", 0.0, 0.015, 1.0),
        ("S", 0.05, 0.012, -0.25),
        ("T", 0.30, 0.060, 0.30),
    )

    def __post_init__(self) -> None:
        _require_positive(self.sample_rate_hz, "sample rate")
        _require_positive(self.heart_rate_bpm, "heart rate")
        if self.heart_rate_variability < 0 or self.heart_rate_variability >= 0.5:
            raise ConfigurationError("heart rate variability must be in [0, 0.5)")
        if self.noise_mv < 0 or self.baseline_wander_mv < 0:
            raise ConfigurationError("noise amplitudes must be non-negative")

    def beat_interval_seconds(self) -> float:
        """Mean interval between R peaks."""
        return 60.0 / self.heart_rate_bpm

    def generate(self, duration_seconds: float,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate *duration_seconds* of ECG in millivolts."""
        _require_positive(duration_seconds, "duration")
        rng = _make_rng(rng)
        n_samples = int(round(duration_seconds * self.sample_rate_hz))
        t = np.arange(n_samples) / self.sample_rate_hz
        signal = np.zeros(n_samples)

        r_peak_times = self.r_peak_times(duration_seconds, rng)
        mean_interval = self.beat_interval_seconds()
        for r_time in r_peak_times:
            for _name, delay, width, amplitude in self._WAVES:
                center = r_time + delay * mean_interval
                sigma = width * mean_interval
                signal += amplitude * np.exp(-0.5 * ((t - center) / sigma) ** 2)

        if self.baseline_wander_mv > 0:
            wander_freq = 0.3
            phase = rng.uniform(0.0, 2.0 * np.pi)
            signal += self.baseline_wander_mv * np.sin(
                2.0 * np.pi * wander_freq * t + phase
            )
        if self.noise_mv > 0:
            signal += rng.normal(0.0, self.noise_mv, size=n_samples)
        return signal

    def r_peak_times(self, duration_seconds: float,
                     rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Ground-truth R-peak times for a *duration_seconds* recording."""
        _require_positive(duration_seconds, "duration")
        rng = _make_rng(rng)
        mean_interval = self.beat_interval_seconds()
        times = []
        current = mean_interval * 0.5
        while current < duration_seconds:
            times.append(current)
            jitter = 1.0 + self.heart_rate_variability * rng.standard_normal()
            current += mean_interval * max(jitter, 0.5)
        return np.asarray(times)

    def data_rate_bps(self, bits_per_sample: int = 12) -> float:
        """Raw output data rate of the digitised lead."""
        if bits_per_sample <= 0:
            raise ConfigurationError("bits per sample must be positive")
        return self.sample_rate_hz * bits_per_sample


@dataclass
class EMGGenerator:
    """Synthetic surface EMG: burst-modulated band-limited noise.

    Muscle activations are modelled as random bursts whose envelope
    modulates zero-mean noise band-passed to the 20--450 Hz EMG band.
    """

    sample_rate_hz: float = 1000.0
    channels: int = 4
    burst_rate_hz: float = 0.5
    burst_duration_seconds: float = 0.4
    rest_amplitude_mv: float = 0.01
    burst_amplitude_mv: float = 0.5

    def __post_init__(self) -> None:
        _require_positive(self.sample_rate_hz, "sample rate")
        if self.channels <= 0:
            raise ConfigurationError("channel count must be positive")
        _require_positive(self.burst_rate_hz, "burst rate")
        _require_positive(self.burst_duration_seconds, "burst duration")
        if self.rest_amplitude_mv < 0 or self.burst_amplitude_mv < 0:
            raise ConfigurationError("amplitudes must be non-negative")

    def generate(self, duration_seconds: float,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate EMG of shape ``(channels, samples)`` in millivolts."""
        _require_positive(duration_seconds, "duration")
        rng = _make_rng(rng)
        n_samples = int(round(duration_seconds * self.sample_rate_hz))
        t = np.arange(n_samples) / self.sample_rate_hz

        envelope = np.full(n_samples, self.rest_amplitude_mv)
        n_bursts = rng.poisson(self.burst_rate_hz * duration_seconds)
        for _ in range(n_bursts):
            start = rng.uniform(0.0, max(duration_seconds - self.burst_duration_seconds, 0.0))
            mask = (t >= start) & (t < start + self.burst_duration_seconds)
            ramp = np.sin(
                np.pi * (t[mask] - start) / self.burst_duration_seconds
            ) ** 2
            envelope[mask] = np.maximum(
                envelope[mask], self.rest_amplitude_mv + self.burst_amplitude_mv * ramp
            )

        signal = rng.standard_normal((self.channels, n_samples)) * envelope
        # Crude band-pass: difference filter removes DC, moving average caps HF.
        signal = np.diff(signal, axis=1, prepend=signal[:, :1])
        kernel = np.ones(3) / 3.0
        for ch in range(self.channels):
            signal[ch] = np.convolve(signal[ch], kernel, mode="same")
        return signal

    def data_rate_bps(self, bits_per_sample: int = 12) -> float:
        """Raw output data rate across all channels."""
        if bits_per_sample <= 0:
            raise ConfigurationError("bits per sample must be positive")
        return self.sample_rate_hz * bits_per_sample * self.channels


@dataclass
class EEGGenerator:
    """Synthetic multi-channel EEG as a mixture of canonical bands.

    Each channel mixes delta/theta/alpha/beta oscillations with 1/f
    background noise; the alpha-band weight can be modulated to emulate
    eyes-open/eyes-closed state changes used by the example applications.
    """

    sample_rate_hz: float = 256.0
    channels: int = 8
    alpha_power: float = 1.0
    noise_uv: float = 2.0

    _BANDS = (
        ("delta", 2.0, 4.0),
        ("theta", 6.0, 2.0),
        ("alpha", 10.0, 5.0),
        ("beta", 20.0, 1.0),
    )

    def __post_init__(self) -> None:
        _require_positive(self.sample_rate_hz, "sample rate")
        if self.channels <= 0:
            raise ConfigurationError("channel count must be positive")
        if self.alpha_power < 0:
            raise ConfigurationError("alpha power must be non-negative")
        if self.noise_uv < 0:
            raise ConfigurationError("noise must be non-negative")

    def generate(self, duration_seconds: float,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate EEG of shape ``(channels, samples)`` in microvolts."""
        _require_positive(duration_seconds, "duration")
        rng = _make_rng(rng)
        n_samples = int(round(duration_seconds * self.sample_rate_hz))
        t = np.arange(n_samples) / self.sample_rate_hz
        signal = np.zeros((self.channels, n_samples))
        for ch in range(self.channels):
            for name, freq, amplitude in self._BANDS:
                if name == "alpha":
                    amplitude = amplitude * self.alpha_power
                phase = rng.uniform(0.0, 2.0 * np.pi)
                drift = 1.0 + 0.05 * rng.standard_normal()
                signal[ch] += amplitude * np.sin(2.0 * np.pi * freq * drift * t + phase)
            signal[ch] += rng.standard_normal(n_samples) * self.noise_uv
        return signal

    def data_rate_bps(self, bits_per_sample: int = 16) -> float:
        """Raw output data rate across all channels."""
        if bits_per_sample <= 0:
            raise ConfigurationError("bits per sample must be positive")
        return self.sample_rate_hz * bits_per_sample * self.channels
