"""Synthetic photoplethysmogram (PPG) generator.

PPG is the optical heart-rate channel in smart rings and fitness trackers
— the device classes the paper places in the "perpetually operable" region
of Fig. 3.  The generator produces a pulse waveform with a systolic peak
and dicrotic notch per cardiac cycle plus respiration-coupled baseline
modulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError


@dataclass
class PPGGenerator:
    """Synthetic reflective PPG signal."""

    sample_rate_hz: float = 100.0
    heart_rate_bpm: float = 70.0
    respiration_rate_bpm: float = 15.0
    noise_level: float = 0.01

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        if self.heart_rate_bpm <= 0:
            raise ConfigurationError("heart rate must be positive")
        if self.respiration_rate_bpm <= 0:
            raise ConfigurationError("respiration rate must be positive")
        if self.noise_level < 0:
            raise ConfigurationError("noise level must be non-negative")

    def generate(self, duration_seconds: float,
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate *duration_seconds* of normalised PPG."""
        if duration_seconds <= 0:
            raise ConfigurationError("duration must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        n_samples = int(round(duration_seconds * self.sample_rate_hz))
        t = np.arange(n_samples) / self.sample_rate_hz
        cardiac_hz = self.heart_rate_bpm / 60.0
        respiration_hz = self.respiration_rate_bpm / 60.0

        cardiac_phase = 2.0 * np.pi * cardiac_hz * t
        # Systolic upstroke plus a smaller dicrotic component one half-cycle later.
        pulse = (
            np.maximum(np.sin(cardiac_phase), 0.0) ** 3
            + 0.3 * np.maximum(np.sin(cardiac_phase - np.pi / 2.0), 0.0) ** 3
        )
        respiration = 0.1 * np.sin(2.0 * np.pi * respiration_hz * t)
        signal = pulse + respiration
        signal += rng.standard_normal(n_samples) * self.noise_level
        return signal

    def estimate_heart_rate_bpm(self, signal: np.ndarray) -> float:
        """Estimate heart rate from a PPG segment via its spectrum."""
        signal = np.asarray(signal, dtype=float)
        if signal.size < int(2 * self.sample_rate_hz):
            raise ConfigurationError("need at least two seconds of signal")
        centred = signal - np.mean(signal)
        spectrum = np.abs(np.fft.rfft(centred))
        freqs = np.fft.rfftfreq(centred.size, d=1.0 / self.sample_rate_hz)
        band = (freqs >= 0.7) & (freqs <= 4.0)
        if not np.any(band):
            raise ConfigurationError("sample rate too low to resolve cardiac band")
        peak_freq = freqs[band][np.argmax(spectrum[band])]
        return float(peak_freq * 60.0)

    def data_rate_bps(self, bits_per_sample: int = 16, channels: int = 2) -> float:
        """Raw data rate of the PPG channel(s)."""
        if bits_per_sample <= 0 or channels <= 0:
            raise ConfigurationError("bits per sample and channels must be positive")
        return self.sample_rate_hz * bits_per_sample * channels
