"""Sensor substrate: modalities, analog front ends, synthetic signals.

Fig. 3 of the paper plots battery life against node data rate, with the
sensing power "characterized as a function of data rate with a survey of
past literature and commercially available analog front-ends".  This
package provides that survey model (:mod:`repro.sensors.frontend`), a
catalog of the sensing modalities the paper names
(:mod:`repro.sensors.catalog`), and synthetic signal generators used by
the examples and the network simulator.
"""

from .catalog import (
    SensorModality,
    ModalitySpec,
    MODALITY_CATALOG,
    modality_spec,
    modality_data_rate_bps,
)
from .frontend import (
    AFESurveyModel,
    AFESurveyPoint,
    sensing_power_watts,
    DEFAULT_SURVEY_POINTS,
)
from .biopotential import ECGGenerator, EMGGenerator, EEGGenerator
from .imu import IMUGenerator
from .audio import AudioGenerator
from .video import VideoGenerator
from .ppg import PPGGenerator

__all__ = [
    "SensorModality",
    "ModalitySpec",
    "MODALITY_CATALOG",
    "modality_spec",
    "modality_data_rate_bps",
    "AFESurveyModel",
    "AFESurveyPoint",
    "sensing_power_watts",
    "DEFAULT_SURVEY_POINTS",
    "ECGGenerator",
    "EMGGenerator",
    "EEGGenerator",
    "IMUGenerator",
    "AudioGenerator",
    "VideoGenerator",
    "PPGGenerator",
]
