"""Synthetic inertial measurement unit (IMU) signals.

IMU nodes on the limbs feed gesture and activity recognition models; the
generator synthesises 6-axis (3 accelerometer + 3 gyroscope) traces for a
handful of activity classes so that the human-activity-recognition example
and the partitioned-inference workloads have structured input.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

#: Gravitational acceleration (m/s^2), present on the accelerometer z axis.
GRAVITY = 9.81

#: Supported activity classes and their dominant motion parameters
#: (fundamental frequency Hz, acceleration amplitude m/s^2, gyro amplitude rad/s).
ACTIVITY_PROFILES: dict[str, tuple[float, float, float]] = {
    "rest": (0.0, 0.05, 0.01),
    "walking": (1.8, 3.0, 1.0),
    "running": (2.8, 8.0, 2.5),
    "typing": (4.0, 0.4, 0.1),
    "gesturing": (1.0, 2.0, 1.5),
}


@dataclass
class IMUGenerator:
    """Synthetic 6-axis IMU trace generator."""

    sample_rate_hz: float = 100.0
    noise_accel: float = 0.05
    noise_gyro: float = 0.01

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ConfigurationError("sample rate must be positive")
        if self.noise_accel < 0 or self.noise_gyro < 0:
            raise ConfigurationError("noise levels must be non-negative")

    def activities(self) -> list[str]:
        """Supported activity class names."""
        return list(ACTIVITY_PROFILES)

    def generate(self, duration_seconds: float, activity: str = "walking",
                 rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Generate a trace of shape ``(6, samples)``.

        Rows 0--2 are accelerometer x/y/z in m/s^2 (gravity on z), rows
        3--5 are gyroscope x/y/z in rad/s.
        """
        if duration_seconds <= 0:
            raise ConfigurationError("duration must be positive")
        if activity not in ACTIVITY_PROFILES:
            raise ConfigurationError(
                f"unknown activity {activity!r}; choose from {sorted(ACTIVITY_PROFILES)}"
            )
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        freq, accel_amp, gyro_amp = ACTIVITY_PROFILES[activity]
        n_samples = int(round(duration_seconds * self.sample_rate_hz))
        t = np.arange(n_samples) / self.sample_rate_hz
        trace = np.zeros((6, n_samples))

        for axis in range(3):
            phase = rng.uniform(0.0, 2.0 * np.pi)
            harmonic_phase = rng.uniform(0.0, 2.0 * np.pi)
            if freq > 0:
                trace[axis] = accel_amp * (
                    np.sin(2.0 * np.pi * freq * t + phase)
                    + 0.3 * np.sin(2.0 * np.pi * 2.0 * freq * t + harmonic_phase)
                )
                trace[axis + 3] = gyro_amp * np.sin(
                    2.0 * np.pi * freq * t + phase + np.pi / 4.0
                )
        trace[2] += GRAVITY
        trace[:3] += rng.standard_normal((3, n_samples)) * self.noise_accel
        trace[3:] += rng.standard_normal((3, n_samples)) * self.noise_gyro
        return trace

    def generate_labelled_windows(
        self, window_seconds: float, windows_per_class: int,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Build a small labelled dataset of fixed-length windows.

        Returns ``(features, labels, class_names)`` where ``features`` has
        shape ``(n_windows, 6, samples_per_window)`` and ``labels`` holds
        integer class indices.
        """
        if window_seconds <= 0:
            raise ConfigurationError("window length must be positive")
        if windows_per_class <= 0:
            raise ConfigurationError("windows per class must be positive")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        class_names = self.activities()
        features = []
        labels = []
        for class_index, activity in enumerate(class_names):
            for _ in range(windows_per_class):
                features.append(self.generate(window_seconds, activity, rng))
                labels.append(class_index)
        return np.asarray(features), np.asarray(labels), class_names

    def data_rate_bps(self, bits_per_sample: int = 16) -> float:
        """Raw output data rate of the 6-axis stream."""
        if bits_per_sample <= 0:
            raise ConfigurationError("bits per sample must be positive")
        return self.sample_rate_hz * bits_per_sample * 6
