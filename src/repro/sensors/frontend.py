"""Analog-front-end (AFE) sensing-power survey model.

The paper's Fig. 3 needs "sensing power ... characterized as a function of
data rate with a survey of past literature and commercially available
analog front-ends" (ref [29]).  We reproduce that survey with a set of
published/representative design points spanning skin-temperature sensors
(bits per second, microwatts) up to 720p camera modules (hundreds of
megabits per second, hundreds of milliwatts), and fit a log-log linear
(power-law) model

    P_sense(R) = coefficient * R ** exponent

so battery-life projections can evaluate sensing power at any data rate.

Two kinds of survey points coexist:

* ``"afe"`` — bare analog front ends (instrumentation amplifier + ADC),
  the lower envelope of sensing power at a given rate.
* ``"subsystem"`` — complete commercial sensing subsystems (LED drivers
  for PPG, microphone arrays with always-on codecs for AI pins, camera
  modules with ISPs), which is what the paper's device classes actually
  ship and what places audio nodes at all-week and video nodes at all-day
  battery life in Fig. 3.

The default fit uses all points; callers can restrict to either category
to obtain optimistic (bare AFE) or conservative (full subsystem) curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from .. import units


@dataclass(frozen=True)
class AFESurveyPoint:
    """One surveyed sensing design point."""

    name: str
    data_rate_bps: float
    sensing_power_watts: float
    category: str = "afe"

    def __post_init__(self) -> None:
        if self.data_rate_bps <= 0:
            raise ConfigurationError("survey data rate must be positive")
        if self.sensing_power_watts <= 0:
            raise ConfigurationError("survey sensing power must be positive")
        if self.category not in ("afe", "subsystem"):
            raise ConfigurationError(
                f"category must be 'afe' or 'subsystem', got {self.category!r}"
            )


#: Survey of sensing power versus output data rate.  Bare-AFE entries
#: follow ultra-low-power biopotential/IMU front ends from the literature;
#: subsystem entries follow the sensing blocks of commercial wearables
#: (PPG optical chains, AI-pin microphone arrays, camera modules).
DEFAULT_SURVEY_POINTS: tuple[AFESurveyPoint, ...] = (
    AFESurveyPoint("skin temperature sensor", 16.0, units.microwatt(2.0), "afe"),
    AFESurveyPoint("single-lead ECG AFE", 3_000.0, units.microwatt(20.0), "afe"),
    AFESurveyPoint("galvanic skin response AFE", 256.0, units.microwatt(5.0), "afe"),
    AFESurveyPoint("PPG optical front end", 3_200.0, units.microwatt(150.0), "subsystem"),
    AFESurveyPoint("6-axis IMU (low-power mode)", 9_600.0, units.microwatt(300.0), "afe"),
    AFESurveyPoint("8-channel EEG AFE", 32_768.0, units.microwatt(250.0), "afe"),
    AFESurveyPoint("4-channel EMG AFE", 48_000.0, units.microwatt(400.0), "afe"),
    AFESurveyPoint("MEMS microphone + codec", 256_000.0, units.milliwatt(2.0), "afe"),
    AFESurveyPoint("AI-pin microphone array + always-on audio", 1_000_000.0,
                   units.milliwatt(15.0), "subsystem"),
    AFESurveyPoint("QVGA camera module (15 fps)", 9_216_000.0,
                   units.milliwatt(60.0), "subsystem"),
    AFESurveyPoint("720p camera module + ISP (30 fps)", 221_184_000.0,
                   units.milliwatt(300.0), "subsystem"),
)


class AFESurveyModel:
    """Power-law fit of sensing power versus data rate.

    Parameters
    ----------
    points:
        Survey points to fit.  Defaults to :data:`DEFAULT_SURVEY_POINTS`.
    category:
        Restrict the fit to ``"afe"`` or ``"subsystem"`` points, or use
        ``None`` (default) to fit everything.
    """

    def __init__(self, points: Sequence[AFESurveyPoint] | None = None,
                 category: str | None = None) -> None:
        if points is None:
            points = DEFAULT_SURVEY_POINTS
        if category is not None:
            points = [p for p in points if p.category == category]
        if len(points) < 2:
            raise ConfigurationError(
                "at least two survey points are required to fit the model"
            )
        self.points: tuple[AFESurveyPoint, ...] = tuple(points)
        log_rate = np.log10([p.data_rate_bps for p in self.points])
        log_power = np.log10([p.sensing_power_watts for p in self.points])
        slope, intercept = np.polyfit(log_rate, log_power, deg=1)
        self._exponent = float(slope)
        self._coefficient = float(10.0 ** intercept)

    @property
    def exponent(self) -> float:
        """Fitted power-law exponent (dimensionless, typically 0.6--0.8)."""
        return self._exponent

    @property
    def coefficient(self) -> float:
        """Fitted power-law coefficient in W / (bit/s)^exponent."""
        return self._coefficient

    def sensing_power_watts(self, data_rate_bps: float) -> float:
        """Predicted sensing power at *data_rate_bps*."""
        if data_rate_bps < 0:
            raise ConfigurationError("data rate must be non-negative")
        if data_rate_bps == 0.0:
            return 0.0
        return self._coefficient * data_rate_bps ** self._exponent

    def sensing_power_curve(self, data_rates_bps: Iterable[float]) -> np.ndarray:
        """Vectorised prediction over a sweep of data rates."""
        rates = np.asarray(list(data_rates_bps), dtype=float)
        if np.any(rates < 0):
            raise ConfigurationError("data rates must be non-negative")
        powers = np.where(
            rates == 0.0,
            0.0,
            self._coefficient * np.power(rates, self._exponent,
                                         where=rates > 0, out=np.ones_like(rates)),
        )
        return powers

    def residuals_db(self) -> np.ndarray:
        """Fit residuals per survey point in dB (10*log10 predicted/actual)."""
        residuals = []
        for point in self.points:
            predicted = self.sensing_power_watts(point.data_rate_bps)
            residuals.append(10.0 * np.log10(predicted / point.sensing_power_watts))
        return np.asarray(residuals)

    def describe(self) -> dict[str, float | int]:
        """Summary of the fit for reports."""
        residuals = self.residuals_db()
        return {
            "points": len(self.points),
            "exponent": self.exponent,
            "coefficient_w_per_bps_exp": self.coefficient,
            "max_abs_residual_db": float(np.max(np.abs(residuals))),
            "rms_residual_db": float(np.sqrt(np.mean(residuals ** 2))),
        }


_DEFAULT_MODEL: AFESurveyModel | None = None


def sensing_power_watts(data_rate_bps: float) -> float:
    """Sensing power at *data_rate_bps* using the default survey fit."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = AFESurveyModel()
    return _DEFAULT_MODEL.sensing_power_watts(data_rate_bps)
