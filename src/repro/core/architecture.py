"""Architecture comparison: today's IoB node versus human-inspired IoB node.

This module regenerates the two stacked power breakdowns of the paper's
Fig. 1:

* **Today's IoB node** — every wearable carries a sensor front end, an
  on-board CPU that must process the data locally (because the radio is
  too expensive to ship raw data), and an RF radio.  Active powers land at
  ~100s of uW (sensor), ~mW (CPU) and ~10s of mW (radio).
* **Human-inspired IoB node** — a leaf node carries only the sensor, an
  optional in-sensor-analytics block, and a Wi-R transceiver; the heavy
  computation happens on the on-body hub.  Active powers land at 10--50 uW
  (sensor), ~100 uW (ISA) and ~100 uW (Wi-R).

Both *active* budgets (what the figure annotates) and *average* budgets
(duty-cycled at the node's offered data rate, what battery life depends
on) are produced, so E1 can report the figure's numbers and E3 can reuse
the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..isa.pipeline import ISAPipeline
from ..sensors.frontend import AFESurveyModel
from .node import ConventionalNodeSpec, LeafNodeSpec
from .power_budget import PowerBudget

#: Default local-processing intensity of a conventional wearable's CPU:
#: operations executed per raw sensor bit (signal conditioning, feature
#: extraction, application logic).
DEFAULT_CPU_OPS_PER_BIT = 50.0

#: Fraction of the raw sensor rate a conventional node actually radios out
#: after local processing (results, summaries, sync bursts).
DEFAULT_LOCAL_REDUCTION = 0.05


def _sensing_power(spec_power: float | None, data_rate_bps: float,
                   survey: AFESurveyModel | None) -> float:
    if spec_power is not None:
        return spec_power
    survey = survey or AFESurveyModel()
    return survey.sensing_power_watts(data_rate_bps)


def conventional_node_budget(
    spec: ConventionalNodeSpec,
    mode: str = "active",
    cpu_ops_per_bit: float = DEFAULT_CPU_OPS_PER_BIT,
    local_reduction: float = DEFAULT_LOCAL_REDUCTION,
    survey: AFESurveyModel | None = None,
) -> PowerBudget:
    """Power budget of a today's-architecture wearable.

    ``mode="active"`` reports each block's active power (Fig. 1's labels);
    ``mode="average"`` duty-cycles the CPU and radio for the node's actual
    workload (local processing of the raw stream at *cpu_ops_per_bit*,
    radio carrying ``local_reduction`` of the raw rate).
    """
    if mode not in ("active", "average"):
        raise ConfigurationError(f"mode must be 'active' or 'average', got {mode!r}")
    if cpu_ops_per_bit < 0:
        raise ConfigurationError("cpu_ops_per_bit must be non-negative")
    if not 0.0 < local_reduction <= 1.0:
        raise ConfigurationError("local_reduction must be in (0, 1]")

    raw_rate = spec.sensors.raw_data_rate_bps()
    sensing = _sensing_power(spec.sensors.sensing_power_watts, raw_rate, survey)
    budget = PowerBudget(node_name=spec.name)
    budget.add("sensor", sensing, category="sensing")

    if mode == "active":
        cpu_power = spec.cpu.energy_per_mac_joules * spec.cpu.macs_per_second
        cpu_power += spec.cpu.idle_power_watts
        radio_power = spec.radio.tx_active_power()
    else:
        mac_rate = cpu_ops_per_bit * raw_rate
        cpu_power = mac_rate * spec.cpu.energy_per_mac_joules + spec.cpu.idle_power_watts
        radio_power = spec.radio.average_power_at_rate(
            min(raw_rate * local_reduction, spec.radio.data_rate_bps())
        )
    budget.add("cpu", cpu_power, category="compute")
    budget.add("radio", radio_power, category="communication")
    return budget


def human_inspired_node_budget(
    spec: LeafNodeSpec,
    mode: str = "active",
    isa_pipeline: ISAPipeline | None = None,
    survey: AFESurveyModel | None = None,
) -> PowerBudget:
    """Power budget of a human-inspired leaf node.

    The leaf senses, optionally reduces the stream with its ISA block, and
    ships the (possibly reduced) stream to the hub over Wi-R.  In
    ``"active"`` mode the ISA and Wi-R blocks are reported at their active
    power; in ``"average"`` mode both are duty-cycled for the node's
    offered data rate.
    """
    if mode not in ("active", "average"):
        raise ConfigurationError(f"mode must be 'active' or 'average', got {mode!r}")

    raw_rate = spec.sensors.raw_data_rate_bps()
    sensing = _sensing_power(spec.sensors.sensing_power_watts, raw_rate, survey)
    budget = PowerBudget(node_name=spec.name)
    budget.add("sensor", sensing, category="sensing")

    if isa_pipeline is not None:
        isa_power = isa_pipeline.compute_power_watts(raw_rate)
        offered_rate = isa_pipeline.output_rate_bps(raw_rate)
    else:
        isa_power = 0.0
        offered_rate = raw_rate

    if mode == "active":
        isa_active = spec.isa.energy_per_mac_joules * spec.isa.macs_per_second
        isa_active += spec.isa.idle_power_watts
        budget.add("isa", max(isa_power, isa_active) if isa_pipeline else isa_active,
                   category="compute")
        budget.add("wi-r", spec.link.tx_active_power(), category="communication")
    else:
        budget.add("isa", isa_power + spec.isa.idle_power_watts, category="compute")
        link_rate = spec.link.data_rate_bps()
        budget.add(
            "wi-r",
            spec.link.average_power_at_rate(min(offered_rate, link_rate)),
            category="communication",
        )
    return budget


@dataclass(frozen=True)
class ArchitectureComparison:
    """Side-by-side result of the Fig. 1 reproduction for one node pair."""

    conventional: PowerBudget
    human_inspired: PowerBudget

    @property
    def power_reduction_factor(self) -> float:
        """How many times lower the human-inspired node's total power is."""
        return self.conventional.ratio_over(self.human_inspired)

    @property
    def communication_reduction_factor(self) -> float:
        """Reduction factor of the communication block alone."""
        conventional_radio = self.conventional.category_power("communication")
        human_radio = self.human_inspired.category_power("communication")
        if human_radio == 0.0:
            return float("inf")
        return conventional_radio / human_radio

    def as_rows(self) -> list[dict[str, object]]:
        """Rows for the report formatter (both budgets plus the ratio)."""
        rows = self.conventional.as_rows() + self.human_inspired.as_rows()
        rows.append({
            "node": f"{self.conventional.node_name} / {self.human_inspired.node_name}",
            "component": "power reduction",
            "category": "ratio",
            "power_uw": self.power_reduction_factor,
        })
        return rows


def compare_architectures(
    conventional: ConventionalNodeSpec,
    human_inspired: LeafNodeSpec,
    mode: str = "active",
    isa_pipeline: ISAPipeline | None = None,
    cpu_ops_per_bit: float = DEFAULT_CPU_OPS_PER_BIT,
    local_reduction: float = DEFAULT_LOCAL_REDUCTION,
    survey: AFESurveyModel | None = None,
) -> ArchitectureComparison:
    """Build both budgets for the same sensing task and compare them."""
    conventional_budget = conventional_node_budget(
        conventional,
        mode=mode,
        cpu_ops_per_bit=cpu_ops_per_bit,
        local_reduction=local_reduction,
        survey=survey,
    )
    human_budget = human_inspired_node_budget(
        human_inspired,
        mode=mode,
        isa_pipeline=isa_pipeline,
        survey=survey,
    )
    return ArchitectureComparison(
        conventional=conventional_budget,
        human_inspired=human_budget,
    )
