"""Compute-device energy models.

The paper's architectural argument rests on the relative energy of
computing versus communicating a bit: "the energy consumption for radio
communication per bit far exceeds that of computing per bit by several
orders of magnitude" (Section I, citing refs [13], [14]).  To make that
argument quantitative — and to drive the DNN partitioner — we model each
compute tier as a device with an energy per multiply-accumulate, a
sustained MAC throughput and an idle power:

* leaf MCU: a Cortex-M-class microcontroller in a conventional wearable,
  ~100 pJ/MAC effective and a few MHz-equivalent of sustained ML throughput;
* ISA accelerator: a near-threshold fixed-point block inside a
  human-inspired leaf node, ~1 pJ/MAC but only suitable for small kernels;
* hub SoC: the smartphone/headset-class application processor with an NPU,
  ~5 pJ/MAC effective at orders of magnitude higher throughput;
* cloud server: effectively unlimited throughput reached through the
  hub's uplink.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .. import units


@dataclass(frozen=True)
class ComputeDevice:
    """A compute tier available to run (part of) a workload.

    Parameters
    ----------
    name:
        Identifier used in reports.
    energy_per_mac_joules:
        Marginal energy of one multiply-accumulate, including memory access.
    macs_per_second:
        Sustained ML throughput.
    idle_power_watts:
        Power burnt while the device is on but not computing.
    wakeup_energy_joules / wakeup_latency_seconds:
        One-time cost of bringing the device out of sleep for a burst.
    """

    name: str
    energy_per_mac_joules: float
    macs_per_second: float
    idle_power_watts: float = 0.0
    wakeup_energy_joules: float = 0.0
    wakeup_latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.energy_per_mac_joules < 0:
            raise ConfigurationError("energy per MAC must be non-negative")
        if self.macs_per_second <= 0:
            raise ConfigurationError("MAC throughput must be positive")
        for attr in ("idle_power_watts", "wakeup_energy_joules",
                     "wakeup_latency_seconds"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")

    def compute_energy_joules(self, macs: float,
                              include_wakeup: bool = False) -> float:
        """Energy to execute *macs* multiply-accumulates."""
        if macs < 0:
            raise ConfigurationError("MAC count must be non-negative")
        energy = macs * self.energy_per_mac_joules
        if include_wakeup and macs > 0:
            energy += self.wakeup_energy_joules
        return energy

    def compute_latency_seconds(self, macs: float,
                                include_wakeup: bool = False) -> float:
        """Time to execute *macs* multiply-accumulates."""
        if macs < 0:
            raise ConfigurationError("MAC count must be non-negative")
        latency = macs / self.macs_per_second
        if include_wakeup and macs > 0:
            latency += self.wakeup_latency_seconds
        return latency

    def average_power_watts(self, macs_per_inference: float,
                            inferences_per_second: float) -> float:
        """Average power for a periodic inference workload."""
        if inferences_per_second < 0:
            raise ConfigurationError("inference rate must be non-negative")
        dynamic = (
            self.compute_energy_joules(macs_per_inference) * inferences_per_second
        )
        return dynamic + self.idle_power_watts

    def sustainable_inference_rate_hz(self, macs_per_inference: float) -> float:
        """Maximum inference rate the device can sustain."""
        if macs_per_inference <= 0:
            raise ConfigurationError("MACs per inference must be positive")
        return self.macs_per_second / macs_per_inference


def leaf_mcu() -> ComputeDevice:
    """Cortex-M-class MCU in a conventional wearable (mW when active)."""
    return ComputeDevice(
        name="leaf MCU",
        energy_per_mac_joules=units.picojoule(100.0),
        macs_per_second=50e6,
        idle_power_watts=units.microwatt(50.0),
        wakeup_energy_joules=units.microjoule(5.0),
        wakeup_latency_seconds=units.milliseconds(1.0),
    )


def isa_accelerator() -> ComputeDevice:
    """Near-threshold fixed-point ISA block in a human-inspired leaf node."""
    return ComputeDevice(
        name="ISA accelerator",
        energy_per_mac_joules=units.picojoule(2.0),
        macs_per_second=50e6,
        idle_power_watts=units.microwatt(2.0),
        wakeup_energy_joules=units.nanojoule(100.0),
        wakeup_latency_seconds=units.milliseconds(0.1),
    )


def hub_soc() -> ComputeDevice:
    """Smartphone/headset application processor with an NPU."""
    return ComputeDevice(
        name="hub SoC",
        energy_per_mac_joules=units.picojoule(5.0),
        macs_per_second=2e12,
        idle_power_watts=units.milliwatt(30.0),
        wakeup_energy_joules=units.millijoule(1.0),
        wakeup_latency_seconds=units.milliseconds(5.0),
    )


def cloud_server() -> ComputeDevice:
    """Cloud inference reached through the hub's uplink.

    The energy per MAC here is the energy *billed to the wearable system*
    (zero — the datacentre pays), so only latency and the uplink transfer
    matter when the designer considers a cloud tier.
    """
    return ComputeDevice(
        name="cloud server",
        energy_per_mac_joules=0.0,
        macs_per_second=100e12,
        idle_power_watts=0.0,
        wakeup_latency_seconds=units.milliseconds(50.0),
    )
