"""Node specifications: leaves, hubs, and today's conventional wearables.

The paper's Fig. 1 distinguishes three kinds of on-body devices:

* today's IoB node — sensor + on-board CPU + radio, every device an island;
* the human-inspired leaf node — sensor + optional ISA + Wi-R, no CPU;
* the on-body hub ("wearable brain") — the one daily-charged device that
  hosts edge intelligence and gateways to the cloud.

These dataclasses bundle the substrate models needed to evaluate each kind
of node: the sensing suite, the compute device (if any), the link
technology and the battery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..body.landmarks import BodyLandmark
from ..comm.link import CommTechnology
from ..energy.battery import BatterySpec, coin_cell_high_capacity, lipo_smartphone
from ..sensors.catalog import SensorModality, modality_spec
from .compute import ComputeDevice, hub_soc, isa_accelerator, leaf_mcu


class NodeRole(enum.Enum):
    """Role a node plays in the body network."""

    CONVENTIONAL = "conventional"
    LEAF = "leaf"
    HUB = "hub"


@dataclass(frozen=True)
class SensorSuite:
    """The sensing modalities carried by one node."""

    modalities: tuple[SensorModality, ...]
    sensing_power_watts: float | None = None

    def __post_init__(self) -> None:
        if not self.modalities:
            raise ConfigurationError("a sensor suite needs at least one modality")
        if self.sensing_power_watts is not None and self.sensing_power_watts < 0:
            raise ConfigurationError("sensing power must be non-negative")

    def raw_data_rate_bps(self) -> float:
        """Combined raw data rate of all modalities."""
        return sum(
            modality_spec(modality).raw_data_rate_bps for modality in self.modalities
        )

    def compressed_data_rate_bps(self) -> float:
        """Combined data rate after typical per-modality compression."""
        return sum(
            modality_spec(modality).compressed_data_rate_bps
            for modality in self.modalities
        )


@dataclass
class LeafNodeSpec:
    """A human-inspired ultra-low-power leaf node."""

    name: str
    sensors: SensorSuite
    placement: BodyLandmark
    link: CommTechnology
    isa: ComputeDevice = field(default_factory=isa_accelerator)
    battery: BatterySpec = field(default_factory=coin_cell_high_capacity)
    role: NodeRole = field(default=NodeRole.LEAF, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node name must be non-empty")


@dataclass
class ConventionalNodeSpec:
    """A today's-architecture wearable: sensor + CPU + radio in one device."""

    name: str
    sensors: SensorSuite
    placement: BodyLandmark
    radio: CommTechnology
    cpu: ComputeDevice = field(default_factory=leaf_mcu)
    battery: BatterySpec = field(default_factory=coin_cell_high_capacity)
    role: NodeRole = field(default=NodeRole.CONVENTIONAL, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node name must be non-empty")


@dataclass
class HubNodeSpec:
    """The on-body hub: wearable brain and gateway to fog/cloud."""

    name: str
    placement: BodyLandmark
    body_link: CommTechnology
    uplink: CommTechnology | None = None
    soc: ComputeDevice = field(default_factory=hub_soc)
    battery: BatterySpec = field(default_factory=lipo_smartphone)
    role: NodeRole = field(default=NodeRole.HUB, init=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("node name must be non-empty")
