"""Hub-side analysis: can one daily-charged 'wearable brain' carry the load?

The paper's architecture concentrates all heavy computation on the on-body
hub, which "requires daily charging, akin to current practices".  That is
a real constraint: the hub must absorb every leaf's offloaded MACs, the
body-bus receive energy, its own uplink traffic to fog/cloud and its idle
platform power, all from a smartphone-class battery in a day.  This module
checks it, per :class:`~repro.core.designer.NetworkPlan`:

* the hub's average power broken down into idle, body-bus receive,
  offloaded compute and cloud uplink;
* the projected hub battery life and whether it clears the configured
  charging interval (one day by default);
* the compute headroom — how many times the current offloaded load the
  hub's SoC could absorb before saturating its sustained throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..comm.link import CommTechnology
from ..comm.wifi import wifi_hub_uplink
from ..energy.battery import BatterySpec, battery_life_seconds, lipo_smartphone
from .. import units
from .compute import ComputeDevice, hub_soc
from .designer import NetworkPlan


@dataclass(frozen=True)
class HubLoadReport:
    """The hub's energy situation for one network plan."""

    idle_power_watts: float
    body_rx_power_watts: float
    offloaded_compute_power_watts: float
    uplink_power_watts: float
    battery: BatterySpec
    charging_interval_seconds: float
    offered_macs_per_second: float
    soc_macs_per_second: float

    @property
    def total_power_watts(self) -> float:
        """Average hub platform power."""
        return (
            self.idle_power_watts
            + self.body_rx_power_watts
            + self.offloaded_compute_power_watts
            + self.uplink_power_watts
        )

    @property
    def battery_life_seconds(self) -> float:
        """Projected hub battery life at the total average power."""
        return battery_life_seconds(self.battery, self.total_power_watts)

    @property
    def battery_life_hours(self) -> float:
        """Projected hub battery life in hours."""
        return units.to_hours(self.battery_life_seconds)

    @property
    def survives_charging_interval(self) -> bool:
        """Whether the hub lasts until its next charge."""
        return self.battery_life_seconds >= self.charging_interval_seconds

    @property
    def compute_headroom(self) -> float:
        """SoC sustained throughput divided by the offered offloaded MACs."""
        if self.offered_macs_per_second == 0.0:
            return float("inf")
        return self.soc_macs_per_second / self.offered_macs_per_second

    @property
    def offload_share_of_power(self) -> float:
        """Fraction of hub power spent on the leaves' offloaded work."""
        total = self.total_power_watts
        if total == 0.0:
            return 0.0
        return (self.offloaded_compute_power_watts + self.body_rx_power_watts) / total

    def as_rows(self) -> list[dict[str, object]]:
        """Rows for the report formatter."""
        return [
            {"component": "idle platform",
             "power_mw": units.to_milliwatt(self.idle_power_watts)},
            {"component": "body-bus receive",
             "power_mw": units.to_milliwatt(self.body_rx_power_watts)},
            {"component": "offloaded leaf compute",
             "power_mw": units.to_milliwatt(self.offloaded_compute_power_watts)},
            {"component": "cloud uplink",
             "power_mw": units.to_milliwatt(self.uplink_power_watts)},
            {"component": "TOTAL",
             "power_mw": units.to_milliwatt(self.total_power_watts)},
        ]


def analyse_hub_load(
    plan: NetworkPlan,
    hub_device: ComputeDevice | None = None,
    body_link: CommTechnology | None = None,
    uplink: CommTechnology | None = None,
    uplink_fraction: float = 0.1,
    battery: BatterySpec | None = None,
    charging_interval_seconds: float = units.days(1.0),
) -> HubLoadReport:
    """Evaluate the hub's power budget for a planned body network.

    Parameters
    ----------
    plan:
        The :class:`NetworkPlan` produced by the designer.
    hub_device:
        The hub SoC (defaults to :func:`~repro.core.compute.hub_soc`).
    body_link:
        Technology used on the body bus for receive-energy accounting; if
        omitted, receive energy is approximated from each node's offload
        decision (which already carries the link's rx energy).
    uplink:
        Hub-to-cloud link (defaults to Wi-Fi).
    uplink_fraction:
        Fraction of the aggregate leaf traffic the hub forwards to the
        cloud after edge processing (results and summaries, not raw data).
    battery:
        Hub battery (defaults to a smartphone pack).
    charging_interval_seconds:
        The paper's assumption is daily charging (the default).
    """
    if not 0.0 <= uplink_fraction <= 1.0:
        raise ConfigurationError("uplink fraction must be in [0, 1]")
    if charging_interval_seconds <= 0:
        raise ConfigurationError("charging interval must be positive")
    hub_device = hub_device or hub_soc()
    uplink = uplink or wifi_hub_uplink()
    battery = battery or lipo_smartphone()

    offloaded_macs_per_second = 0.0
    compute_power = 0.0
    rx_power = 0.0
    for node in plan.nodes:
        rate = node.application.inference_rate_hz
        chosen = node.offload.chosen
        if chosen.partition is not None:
            hub_macs = chosen.partition.best.hub_macs
        elif chosen.strategy.value in ("offload_raw", "offload_features"):
            hub_macs = node.profile.total_macs
        else:
            hub_macs = 0
        offloaded_macs_per_second += hub_macs * rate
        compute_power += hub_device.compute_energy_joules(hub_macs) * rate
        if body_link is not None:
            rx_power += body_link.rx_energy_per_bit() * node.streaming_rate_bps
        else:
            rx_power += chosen.hub_energy_joules * rate - \
                hub_device.compute_energy_joules(hub_macs) * rate

    total_leaf_rate = sum(node.streaming_rate_bps for node in plan.nodes)
    uplink_rate = min(total_leaf_rate * uplink_fraction, uplink.data_rate_bps())
    uplink_power = uplink.average_power_at_rate(uplink_rate)

    return HubLoadReport(
        idle_power_watts=hub_device.idle_power_watts,
        body_rx_power_watts=max(rx_power, 0.0),
        offloaded_compute_power_watts=compute_power,
        uplink_power_watts=uplink_power,
        battery=battery,
        charging_interval_seconds=charging_interval_seconds,
        offered_macs_per_second=offloaded_macs_per_second,
        soc_macs_per_second=hub_device.macs_per_second,
    )
