"""Core library: the human-inspired distributed wearable AI architecture.

This package implements the paper's contribution on top of the substrates
(:mod:`repro.comm`, :mod:`repro.energy`, :mod:`repro.sensors`,
:mod:`repro.isa`, :mod:`repro.nn`, :mod:`repro.netsim`, :mod:`repro.body`):

* :mod:`repro.core.compute` — compute-device energy models (leaf MCU,
  in-sensor analytics block, hub SoC).
* :mod:`repro.core.node` — leaf / hub / conventional node descriptions.
* :mod:`repro.core.power_budget` — per-component power budgets (Fig. 1).
* :mod:`repro.core.architecture` — today's standalone architecture versus
  the human-inspired leaf+hub architecture.
* :mod:`repro.core.battery_life` — battery-life projection versus data
  rate (Fig. 3), including the "perpetually operable" classification.
* :mod:`repro.core.offload` — where should a workload run: entirely on the
  leaf, shipped raw to the hub, reduced by ISA first, or partitioned?
* :mod:`repro.core.partition` — the DNN partitioner that chooses the
  layer at which to split a profiled model between leaf and hub.
* :mod:`repro.core.feasibility` — perpetual-operation feasibility under
  energy harvesting.
* :mod:`repro.core.designer` — end-to-end body-network designer combining
  all of the above for a set of wearable applications.
"""

from .compute import ComputeDevice, leaf_mcu, isa_accelerator, hub_soc, cloud_server
from .node import (
    NodeRole,
    SensorSuite,
    LeafNodeSpec,
    HubNodeSpec,
    ConventionalNodeSpec,
)
from .power_budget import PowerBudget, PowerComponent
from .architecture import (
    ArchitectureComparison,
    conventional_node_budget,
    human_inspired_node_budget,
    compare_architectures,
)
from .battery_life import (
    BatteryLifeProjection,
    BatteryLifePoint,
    project_battery_life,
    battery_life_vs_data_rate,
    DeviceClassPlacement,
    DEVICE_CLASS_PLACEMENTS,
    classify_battery_life,
    LifeBand,
    PERPETUAL_THRESHOLD_SECONDS,
)
from .offload import (
    OffloadStrategy,
    OffloadOption,
    OffloadDecision,
    evaluate_offload_strategies,
    choose_offload_strategy,
)
from .partition import (
    PartitionObjective,
    PartitionPoint,
    PartitionDecision,
    evaluate_split,
    sweep_partitions,
    optimal_partition,
    min_cut_partition,
)
from .feasibility import (
    FeasibilityReport,
    perpetual_feasibility,
    harvesting_headroom_watts,
)
from .designer import (
    ApplicationSpec,
    NodePlan,
    NetworkPlan,
    NetworkDesigner,
)
from .hub_analysis import HubLoadReport, analyse_hub_load

__all__ = [
    "ComputeDevice",
    "leaf_mcu",
    "isa_accelerator",
    "hub_soc",
    "cloud_server",
    "NodeRole",
    "SensorSuite",
    "LeafNodeSpec",
    "HubNodeSpec",
    "ConventionalNodeSpec",
    "PowerBudget",
    "PowerComponent",
    "ArchitectureComparison",
    "conventional_node_budget",
    "human_inspired_node_budget",
    "compare_architectures",
    "BatteryLifeProjection",
    "BatteryLifePoint",
    "project_battery_life",
    "battery_life_vs_data_rate",
    "DeviceClassPlacement",
    "DEVICE_CLASS_PLACEMENTS",
    "classify_battery_life",
    "LifeBand",
    "PERPETUAL_THRESHOLD_SECONDS",
    "OffloadStrategy",
    "OffloadOption",
    "OffloadDecision",
    "evaluate_offload_strategies",
    "choose_offload_strategy",
    "PartitionObjective",
    "PartitionPoint",
    "PartitionDecision",
    "evaluate_split",
    "sweep_partitions",
    "optimal_partition",
    "min_cut_partition",
    "FeasibilityReport",
    "perpetual_feasibility",
    "harvesting_headroom_watts",
    "ApplicationSpec",
    "NodePlan",
    "NetworkPlan",
    "NetworkDesigner",
    "HubLoadReport",
    "analyse_hub_load",
]
