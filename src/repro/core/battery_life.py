"""Battery-life projection versus data rate (the paper's Fig. 3).

Fig. 3 plots the projected battery life (in days) of a human-inspired
wearable node against its data rate, under the stated assumptions:

* 1000 mAh battery,
* Wi-R communication at 100 pJ/bit,
* sensing power taken from a survey of analog front ends as a function of
  data rate,
* computation power treated as negligible to first order,
* devices whose projected life exceeds one year labelled "perpetually
  operable".

The figure then places device classes on that curve: biopotential sensor
patches, smart rings and fitness trackers fall in the perpetual region,
audio-input wearable AI (pins, pocket assistants, ExG nodes) at all-week
battery life, and AI video nodes at all-day battery life.  This module
reproduces the curve, the device-class placements and the banding.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..comm.link import CommTechnology
from ..comm.eqs_hbc import wir_commercial
from ..energy.battery import BatterySpec, battery_life_seconds, coin_cell_high_capacity
from ..sensors.frontend import AFESurveyModel
from .. import units

#: Devices lasting longer than this are "perpetually operable" (one year).
PERPETUAL_THRESHOLD_SECONDS = units.years(1.0)


class LifeBand(enum.Enum):
    """Battery-life bands used by Figs. 2 and 3."""

    SUB_DAY = "sub_day"              # < ~18 hours (headsets, phones)
    ALL_DAY = "all_day"              # ~1 to a few days
    ALL_WEEK = "all_week"            # a few days to a few weeks
    ALL_MONTH = "all_month"          # weeks to a year
    PERPETUAL = "perpetual"          # > 1 year (or net-positive harvesting)


#: Band boundaries in days (upper edge of each band, in order).
_BAND_EDGES_DAYS: tuple[tuple[LifeBand, float], ...] = (
    (LifeBand.SUB_DAY, 0.75),
    (LifeBand.ALL_DAY, 3.5),
    (LifeBand.ALL_WEEK, 30.0),
    (LifeBand.ALL_MONTH, units.to_days(PERPETUAL_THRESHOLD_SECONDS)),
)


def classify_battery_life(life_seconds: float) -> LifeBand:
    """Map a projected battery life to its band."""
    if life_seconds < 0:
        raise ConfigurationError("battery life must be non-negative")
    if math.isinf(life_seconds):
        return LifeBand.PERPETUAL
    life_days = units.to_days(life_seconds)
    for band, upper_days in _BAND_EDGES_DAYS:
        if life_days < upper_days:
            return band
    return LifeBand.PERPETUAL


@dataclass(frozen=True)
class BatteryLifePoint:
    """One point on the battery-life-versus-data-rate curve."""

    data_rate_bps: float
    sensing_power_watts: float
    communication_power_watts: float
    compute_power_watts: float
    total_power_watts: float
    life_seconds: float
    band: LifeBand

    @property
    def life_days(self) -> float:
        """Projected life in days (``inf`` for net-positive harvesting)."""
        if math.isinf(self.life_seconds):
            return math.inf
        return units.to_days(self.life_seconds)

    @property
    def is_perpetual(self) -> bool:
        """Whether the point clears the one-year perpetual threshold."""
        return self.life_seconds > PERPETUAL_THRESHOLD_SECONDS


def project_battery_life(
    data_rate_bps: float,
    technology: CommTechnology | None = None,
    battery: BatterySpec | None = None,
    survey: AFESurveyModel | None = None,
    sensing_power_watts: float | None = None,
    compute_power_watts: float = 0.0,
    harvested_power_watts: float = 0.0,
) -> BatteryLifePoint:
    """Project battery life for a node streaming *data_rate_bps* over Wi-R.

    Defaults follow the paper's Fig. 3 assumptions: Wi-R at 100 pJ/bit, a
    1000 mAh battery, survey-model sensing power, zero computation power
    and no harvesting.  Passing an explicit ``sensing_power_watts``
    overrides the survey model (used for device-class placements).
    """
    if data_rate_bps < 0:
        raise ConfigurationError("data rate must be non-negative")
    if compute_power_watts < 0:
        raise ConfigurationError("compute power must be non-negative")
    technology = technology or wir_commercial()
    battery = battery or coin_cell_high_capacity()
    if sensing_power_watts is None:
        survey = survey or AFESurveyModel()
        sensing_power_watts = survey.sensing_power_watts(data_rate_bps)
    elif sensing_power_watts < 0:
        raise ConfigurationError("sensing power must be non-negative")

    communication_power = data_rate_bps * technology.tx_energy_per_bit()
    communication_power += technology.sleep_power()
    total = sensing_power_watts + communication_power + compute_power_watts
    life = battery_life_seconds(
        battery, total, harvested_power_watts=harvested_power_watts,
    )
    return BatteryLifePoint(
        data_rate_bps=data_rate_bps,
        sensing_power_watts=sensing_power_watts,
        communication_power_watts=communication_power,
        compute_power_watts=compute_power_watts,
        total_power_watts=total,
        life_seconds=life,
        band=classify_battery_life(life),
    )


@dataclass(frozen=True)
class DeviceClassPlacement:
    """A device class placed on the Fig. 3 curve.

    ``sensing_power_watts=None`` means "use the survey model"; explicit
    values model complete commercial sensing subsystems (PPG optical
    chains, microphone arrays, camera modules).
    """

    name: str
    data_rate_bps: float
    sensing_power_watts: float | None
    expected_band: LifeBand


#: The device classes Fig. 3 annotates, with their operating data rates.
DEVICE_CLASS_PLACEMENTS: tuple[DeviceClassPlacement, ...] = (
    DeviceClassPlacement(
        name="biopotential sensor patch (ECG/ExG)",
        data_rate_bps=units.kilobit_per_second(3.0),
        sensing_power_watts=units.microwatt(30.0),
        expected_band=LifeBand.PERPETUAL,
    ),
    DeviceClassPlacement(
        name="smart ring",
        data_rate_bps=units.kilobit_per_second(10.0),
        sensing_power_watts=units.microwatt(200.0),
        expected_band=LifeBand.PERPETUAL,
    ),
    DeviceClassPlacement(
        name="fitness tracker",
        data_rate_bps=units.kilobit_per_second(20.0),
        sensing_power_watts=units.microwatt(250.0),
        expected_band=LifeBand.PERPETUAL,
    ),
    DeviceClassPlacement(
        name="wearable AI audio node (pin / pocket assistant)",
        data_rate_bps=units.kilobit_per_second(256.0),
        sensing_power_watts=units.milliwatt(15.0),
        expected_band=LifeBand.ALL_WEEK,
    ),
    DeviceClassPlacement(
        name="wearable AI video node (camera glasses)",
        data_rate_bps=units.megabit_per_second(10.0),
        sensing_power_watts=units.milliwatt(120.0),
        expected_band=LifeBand.ALL_DAY,
    ),
)


@dataclass(frozen=True)
class BatteryLifeProjection:
    """The full Fig. 3 reproduction: sweep curve plus device placements."""

    curve: tuple[BatteryLifePoint, ...]
    device_points: tuple[tuple[DeviceClassPlacement, BatteryLifePoint], ...]

    def perpetual_max_rate_bps(self) -> float:
        """Largest swept data rate that is still perpetually operable."""
        perpetual_rates = [
            point.data_rate_bps for point in self.curve if point.is_perpetual
        ]
        if not perpetual_rates:
            return 0.0
        return max(perpetual_rates)

    def band_for_rate(self, data_rate_bps: float) -> LifeBand:
        """Band of the closest swept point to *data_rate_bps*."""
        if not self.curve:
            raise ConfigurationError("projection has an empty curve")
        closest = min(
            self.curve, key=lambda p: abs(p.data_rate_bps - data_rate_bps)
        )
        return closest.band

    def as_rows(self) -> list[dict[str, object]]:
        """Rows for the report formatter (device placements)."""
        rows: list[dict[str, object]] = []
        for placement, point in self.device_points:
            rows.append({
                "device_class": placement.name,
                "data_rate_bps": placement.data_rate_bps,
                "total_power_uw": units.to_microwatt(point.total_power_watts),
                "life_days": point.life_days,
                "band": point.band.value,
                "expected_band": placement.expected_band.value,
                "matches_paper": point.band == placement.expected_band,
            })
        return rows


def battery_life_vs_data_rate(
    data_rates_bps: Iterable[float] | None = None,
    technology: CommTechnology | None = None,
    battery: BatterySpec | None = None,
    survey: AFESurveyModel | None = None,
    compute_power_watts: float = 0.0,
    harvested_power_watts: float = 0.0,
    device_classes: Sequence[DeviceClassPlacement] = DEVICE_CLASS_PLACEMENTS,
) -> BatteryLifeProjection:
    """Sweep data rate and project battery life (the Fig. 3 reproduction).

    The default sweep covers 100 bit/s to 100 Mb/s logarithmically, which
    spans every device class the figure annotates.
    """
    if data_rates_bps is None:
        data_rates_bps = np.logspace(2, 8, num=61)
    technology = technology or wir_commercial()
    battery = battery or coin_cell_high_capacity()
    survey = survey or AFESurveyModel()

    curve = tuple(
        project_battery_life(
            float(rate),
            technology=technology,
            battery=battery,
            survey=survey,
            compute_power_watts=compute_power_watts,
            harvested_power_watts=harvested_power_watts,
        )
        for rate in data_rates_bps
    )
    device_points = tuple(
        (
            placement,
            project_battery_life(
                placement.data_rate_bps,
                technology=technology,
                battery=battery,
                survey=survey,
                sensing_power_watts=placement.sensing_power_watts,
                compute_power_watts=compute_power_watts,
                harvested_power_watts=harvested_power_watts,
            ),
        )
        for placement in device_classes
    )
    return BatteryLifeProjection(curve=curve, device_points=device_points)
