"""Perpetual-operation feasibility under energy harvesting.

Section V argues that because indoor harvesting yields 10--200 uW and
human-inspired leaf nodes need only 10s-to-100s of microwatts, many device
classes can drop the battery-charging requirement entirely.  This module
checks that claim for arbitrary node powers and harvesting environments,
and computes how much harvesting headroom (or shortfall) a node has.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..energy.battery import BatterySpec, battery_life_seconds, coin_cell_high_capacity
from ..energy.harvester import (
    EnergyHarvester,
    HarvestingEnvironment,
    total_harvested_power,
)
from .. import units
from .battery_life import PERPETUAL_THRESHOLD_SECONDS


@dataclass(frozen=True)
class FeasibilityReport:
    """Whether a node can run perpetually, and with what margin."""

    node_name: str
    load_power_watts: float
    harvested_power_watts: float
    battery_life_seconds: float
    is_energy_neutral: bool
    is_perpetual: bool

    @property
    def harvesting_margin_watts(self) -> float:
        """Harvested minus load power (negative means a shortfall)."""
        return self.harvested_power_watts - self.load_power_watts

    @property
    def battery_life_days(self) -> float:
        """Projected battery life in days (``inf`` if energy-neutral)."""
        if math.isinf(self.battery_life_seconds):
            return math.inf
        return units.to_days(self.battery_life_seconds)


def harvesting_headroom_watts(
    load_power_watts: float,
    harvesters: Sequence[EnergyHarvester],
    environment: HarvestingEnvironment = HarvestingEnvironment.INDOOR_OFFICE,
) -> float:
    """Harvested power minus load power for a harvester set."""
    if load_power_watts < 0:
        raise ConfigurationError("load power must be non-negative")
    harvested = total_harvested_power(harvesters, environment)
    return harvested - load_power_watts


def perpetual_feasibility(
    node_name: str,
    load_power_watts: float,
    harvesters: Sequence[EnergyHarvester] = (),
    environment: HarvestingEnvironment = HarvestingEnvironment.INDOOR_OFFICE,
    battery: BatterySpec | None = None,
) -> FeasibilityReport:
    """Assess whether a node is perpetually operable.

    Two routes to "perpetual" exist, matching the paper's usage:

    * *energy-neutral*: harvesting meets or exceeds the load, so the node
      never needs charging at all; or
    * *battery-perpetual*: even without full energy neutrality, the
      battery (plus partial harvesting) lasts beyond the one-year
      threshold the paper uses for "perpetually operable".
    """
    if load_power_watts < 0:
        raise ConfigurationError("load power must be non-negative")
    battery = battery or coin_cell_high_capacity()
    harvested = total_harvested_power(harvesters, environment) if harvesters else 0.0
    life = battery_life_seconds(
        battery, load_power_watts, harvested_power_watts=harvested,
    )
    energy_neutral = harvested >= load_power_watts
    return FeasibilityReport(
        node_name=node_name,
        load_power_watts=load_power_watts,
        harvested_power_watts=harvested,
        battery_life_seconds=life,
        is_energy_neutral=energy_neutral,
        is_perpetual=energy_neutral or life > PERPETUAL_THRESHOLD_SECONDS,
    )
