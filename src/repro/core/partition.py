"""DNN partitioning between a leaf node and the on-body hub.

This is the computational heart of the "distributed wearable AI" vision:
given a profiled model (:class:`~repro.nn.profile.ModelProfile`), a leaf
compute device, a hub compute device and a link technology, decide after
which layer to cut the network so that the leaf runs the early layers,
ships the intermediate activation over the link, and the hub runs the
rest.  Split index 0 means "ship the raw input" (full offload); a split
index equal to the number of layers means "run everything locally and ship
only the result".

The optimizer enumerates every split point (the model graphs are chains,
so this is exact and cheap) under one of four objectives; a max-flow /
min-cut formulation over the same chain (built with networkx) is provided
as an independent cross-check of the leaf-energy objective.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import networkx as nx

from ..errors import PartitionError
from ..comm.link import CommTechnology, transfer_cost
from ..nn.profile import ModelProfile
from .compute import ComputeDevice


class PartitionObjective(enum.Enum):
    """What the partitioner minimises."""

    LEAF_ENERGY = "leaf_energy"
    TOTAL_ENERGY = "total_energy"
    LATENCY = "latency"
    ENERGY_DELAY_PRODUCT = "energy_delay_product"


@dataclass(frozen=True)
class PartitionPoint:
    """Costs of cutting the model before layer ``split_index``."""

    split_index: int
    boundary_layer: str
    leaf_macs: int
    hub_macs: int
    transfer_bits: float
    leaf_compute_energy_joules: float
    hub_compute_energy_joules: float
    link_tx_energy_joules: float
    link_rx_energy_joules: float
    leaf_latency_seconds: float
    transfer_latency_seconds: float
    hub_latency_seconds: float

    @property
    def leaf_energy_joules(self) -> float:
        """Energy billed to the leaf node (compute + transmit)."""
        return self.leaf_compute_energy_joules + self.link_tx_energy_joules

    @property
    def hub_energy_joules(self) -> float:
        """Energy billed to the hub (receive + compute)."""
        return self.hub_compute_energy_joules + self.link_rx_energy_joules

    @property
    def total_energy_joules(self) -> float:
        """System energy per inference."""
        return self.leaf_energy_joules + self.hub_energy_joules

    @property
    def latency_seconds(self) -> float:
        """End-to-end inference latency (leaf, link, hub in series)."""
        return (
            self.leaf_latency_seconds
            + self.transfer_latency_seconds
            + self.hub_latency_seconds
        )

    @property
    def energy_delay_product(self) -> float:
        """Leaf energy times end-to-end latency."""
        return self.leaf_energy_joules * self.latency_seconds

    def objective_value(self, objective: PartitionObjective) -> float:
        """Value of *objective* at this split."""
        if objective is PartitionObjective.LEAF_ENERGY:
            return self.leaf_energy_joules
        if objective is PartitionObjective.TOTAL_ENERGY:
            return self.total_energy_joules
        if objective is PartitionObjective.LATENCY:
            return self.latency_seconds
        if objective is PartitionObjective.ENERGY_DELAY_PRODUCT:
            return self.energy_delay_product
        raise PartitionError(f"unknown objective: {objective!r}")


@dataclass(frozen=True)
class PartitionDecision:
    """Result of optimising the split for one model/link/devices tuple."""

    model_name: str
    objective: PartitionObjective
    best: PartitionPoint
    points: tuple[PartitionPoint, ...]
    technology: str

    @property
    def runs_fully_on_leaf(self) -> bool:
        """Whether the optimum keeps the entire model on the leaf."""
        return self.best.hub_macs == 0

    @property
    def runs_fully_on_hub(self) -> bool:
        """Whether the optimum ships the raw input to the hub."""
        return self.best.leaf_macs == 0

    def improvement_over(self, split_index: int) -> float:
        """Objective at *split_index* divided by the optimum (>= 1)."""
        for point in self.points:
            if point.split_index == split_index:
                reference = point.objective_value(self.objective)
                best_value = self.best.objective_value(self.objective)
                if best_value == 0.0:
                    return float("inf") if reference > 0 else 1.0
                return reference / best_value
        raise PartitionError(f"no evaluated split with index {split_index}")


def evaluate_split(
    profile: ModelProfile,
    split_index: int,
    leaf_device: ComputeDevice,
    hub_device: ComputeDevice,
    technology: CommTechnology,
    include_wakeup: bool = False,
) -> PartitionPoint:
    """Cost one candidate split of *profile* across leaf and hub."""
    if not 0 <= split_index <= len(profile.layers):
        raise PartitionError(
            f"split index {split_index} out of range for "
            f"{len(profile.layers)} layers"
        )
    leaf_macs = profile.macs_before(split_index)
    hub_macs = profile.macs_after(split_index)
    transfer_bits = profile.transfer_bits_at(split_index)
    if split_index == 0:
        boundary = "<input>"
    else:
        boundary = profile.layers[split_index - 1].name

    cost = transfer_cost(technology, transfer_bits, include_wakeup=include_wakeup)
    return PartitionPoint(
        split_index=split_index,
        boundary_layer=boundary,
        leaf_macs=leaf_macs,
        hub_macs=hub_macs,
        transfer_bits=transfer_bits,
        leaf_compute_energy_joules=leaf_device.compute_energy_joules(
            leaf_macs, include_wakeup=include_wakeup
        ),
        hub_compute_energy_joules=hub_device.compute_energy_joules(
            hub_macs, include_wakeup=include_wakeup
        ),
        link_tx_energy_joules=cost.tx_energy_joules,
        link_rx_energy_joules=cost.rx_energy_joules,
        leaf_latency_seconds=leaf_device.compute_latency_seconds(
            leaf_macs, include_wakeup=include_wakeup
        ),
        transfer_latency_seconds=cost.latency_seconds,
        hub_latency_seconds=hub_device.compute_latency_seconds(
            hub_macs, include_wakeup=include_wakeup
        ),
    )


def sweep_partitions(
    profile: ModelProfile,
    leaf_device: ComputeDevice,
    hub_device: ComputeDevice,
    technology: CommTechnology,
    include_wakeup: bool = False,
) -> tuple[PartitionPoint, ...]:
    """Evaluate every split point of *profile*."""
    return tuple(
        evaluate_split(
            profile, split, leaf_device, hub_device, technology,
            include_wakeup=include_wakeup,
        )
        for split in profile.split_points()
    )


def optimal_partition(
    profile: ModelProfile,
    leaf_device: ComputeDevice,
    hub_device: ComputeDevice,
    technology: CommTechnology,
    objective: PartitionObjective = PartitionObjective.LEAF_ENERGY,
    include_wakeup: bool = False,
) -> PartitionDecision:
    """Choose the split point that minimises *objective*."""
    points = sweep_partitions(
        profile, leaf_device, hub_device, technology, include_wakeup=include_wakeup,
    )
    if not points:
        raise PartitionError("model has no split points")
    best = min(points, key=lambda point: point.objective_value(objective))
    return PartitionDecision(
        model_name=profile.model_name,
        objective=objective,
        best=best,
        points=points,
        technology=technology.name,
    )


def min_cut_partition(
    profile: ModelProfile,
    leaf_device: ComputeDevice,
    hub_device: ComputeDevice,
    technology: CommTechnology,
) -> int:
    """Leaf-energy-optimal split via a max-flow / min-cut formulation.

    The chain is embedded in a flow network with a source (``"leaf"``) and
    sink (``"hub"``): layer *i* is a node; the edge cut between layer
    ``i-1`` and ``i`` carries the cost of splitting there (leaf compute of
    the prefix plus transmit energy of the activation).  Because the graph
    is a chain, the minimum s-t cut equals the minimum over split points —
    this function exists as an independent check of
    :func:`optimal_partition` and as the extension point for non-chain
    model graphs.

    Returns the optimal split index.
    """
    points = sweep_partitions(profile, leaf_device, hub_device, technology)
    graph = nx.DiGraph()
    infinite = float("inf")
    n_layers = len(profile.layers)
    # Source -> first position and chain positions; cutting the edge into
    # position i corresponds to split index i.
    for point in points:
        cut_cost = point.leaf_energy_joules
        upstream = "leaf" if point.split_index == 0 else f"pos{point.split_index - 1}"
        downstream = (
            "hub" if point.split_index == n_layers else f"pos{point.split_index}"
        )
        graph.add_edge(upstream, downstream, capacity=cut_cost)
        if downstream != "hub":
            # Chain continuity: not cutting here must be free in the cut
            # direction is already encoded by the single path structure.
            pass
    if "leaf" not in graph or "hub" not in graph:
        raise PartitionError("flow network construction failed")
    cut_value, (leaf_side, hub_side) = nx.minimum_cut(graph, "leaf", "hub")
    # Identify which chain edge was cut: the split index whose upstream node
    # is on the leaf side and downstream node on the hub side.
    for point in points:
        upstream = "leaf" if point.split_index == 0 else f"pos{point.split_index - 1}"
        downstream = (
            "hub" if point.split_index == n_layers else f"pos{point.split_index}"
        )
        if upstream in leaf_side and downstream in hub_side:
            return point.split_index
    raise PartitionError(f"min-cut of value {cut_value} did not map to a split point")
