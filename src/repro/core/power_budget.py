"""Per-component power budgets for IoB nodes.

Fig. 1 of the paper contrasts the active-power breakdown of today's IoB
node (sensor ~100s of uW, CPU ~mW, radio ~10s of mW) against a
human-inspired IoB node (sensor 10--50 uW, ISA ~100 uW, Wi-R ~100 uW).  A
:class:`PowerBudget` is simply a named list of :class:`PowerComponent`
entries with helpers for totals, dominant components and ratios between
budgets — enough to regenerate the figure from the underlying models and
to feed the battery-life projections.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .. import units


@dataclass(frozen=True)
class PowerComponent:
    """One contributor to a node's power budget."""

    name: str
    power_watts: float
    category: str = "other"

    def __post_init__(self) -> None:
        if self.power_watts < 0:
            raise ConfigurationError(
                f"component power must be non-negative, got {self.power_watts}"
            )

    @property
    def power_microwatts(self) -> float:
        """Component power in microwatts (reporting convenience)."""
        return units.to_microwatt(self.power_watts)


@dataclass
class PowerBudget:
    """A named collection of power components for one node."""

    node_name: str
    components: list[PowerComponent] = field(default_factory=list)

    def add(self, name: str, power_watts: float,
            category: str = "other") -> "PowerBudget":
        """Append a component and return self (builder style)."""
        self.components.append(
            PowerComponent(name=name, power_watts=power_watts, category=category)
        )
        return self

    def total_watts(self) -> float:
        """Total node power."""
        return sum(component.power_watts for component in self.components)

    def total_microwatts(self) -> float:
        """Total node power in microwatts."""
        return units.to_microwatt(self.total_watts())

    def component_power(self, name: str) -> float:
        """Power of the named component (summing duplicates)."""
        matched = [c.power_watts for c in self.components if c.name == name]
        if not matched:
            raise ConfigurationError(
                f"budget for {self.node_name!r} has no component {name!r}"
            )
        return sum(matched)

    def category_power(self, category: str) -> float:
        """Total power across components in a category."""
        return sum(
            c.power_watts for c in self.components if c.category == category
        )

    def categories(self) -> list[str]:
        """All categories present, in first-seen order."""
        seen: list[str] = []
        for component in self.components:
            if component.category not in seen:
                seen.append(component.category)
        return seen

    def breakdown(self) -> dict[str, float]:
        """Component name -> power in watts."""
        result: dict[str, float] = {}
        for component in self.components:
            result[component.name] = result.get(component.name, 0.0) + component.power_watts
        return result

    def fractions(self) -> dict[str, float]:
        """Component name -> fraction of the total power."""
        total = self.total_watts()
        if total == 0.0:
            return {name: 0.0 for name in self.breakdown()}
        return {name: power / total for name, power in self.breakdown().items()}

    def dominant_component(self) -> PowerComponent:
        """The single largest contributor."""
        if not self.components:
            raise ConfigurationError(f"budget for {self.node_name!r} is empty")
        return max(self.components, key=lambda c: c.power_watts)

    def ratio_over(self, other: "PowerBudget") -> float:
        """This budget's total divided by *other*'s total."""
        other_total = other.total_watts()
        if other_total == 0.0:
            return float("inf")
        return self.total_watts() / other_total

    def as_rows(self) -> list[dict[str, object]]:
        """Rows suitable for the report formatter."""
        rows: list[dict[str, object]] = []
        for component in self.components:
            rows.append({
                "node": self.node_name,
                "component": component.name,
                "category": component.category,
                "power_uw": component.power_microwatts,
            })
        rows.append({
            "node": self.node_name,
            "component": "TOTAL",
            "category": "total",
            "power_uw": self.total_microwatts(),
        })
        return rows
