"""End-to-end body-network designer.

The designer ties every substrate together: given a set of wearable AI
applications (each with a sensing modality, a body placement, a DNN
workload and an inference rate), it

1. profiles each application's model,
2. chooses the offload strategy / partition point for the configured
   leaf-to-hub link,
3. computes the node's streaming data rate, average power, battery life
   and life band,
4. verifies the Wi-R link budget over the actual on-body channel length
   between the node's placement and the hub, and
5. checks that all nodes together fit in a TDMA schedule on the shared
   body bus.

The result is a :class:`NetworkPlan` — the machine-checkable version of
the paper's Fig. 1 (right): a constellation of featherweight leaf nodes
around one wearable brain.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..body.landmarks import BodyLandmark
from ..body.model import BodyModel, default_adult_body
from ..comm.eqs_hbc import EQSHBCTransceiver, WiRLink, wir_leaf_node
from ..comm.link import CommTechnology
from ..comm.mac import TDMASchedule
from ..energy.battery import BatterySpec, coin_cell_high_capacity
from ..isa.pipeline import ISAPipeline
from ..nn.profile import ModelProfile, profile_model
from ..nn.zoo import build_model
from ..sensors.catalog import SensorModality, modality_spec
from ..sensors.frontend import AFESurveyModel
from .. import units
from .battery_life import LifeBand, classify_battery_life
from .compute import ComputeDevice, hub_soc, isa_accelerator
from .offload import OffloadDecision, choose_offload_strategy
from .partition import PartitionObjective
from ..energy.battery import battery_life_seconds


@dataclass(frozen=True)
class ApplicationSpec:
    """One wearable-AI application to be mapped onto a leaf node."""

    name: str
    modality: SensorModality
    placement: BodyLandmark
    model_name: str
    inference_rate_hz: float
    model_kwargs: dict[str, object] = field(default_factory=dict)
    isa_pipeline: ISAPipeline | None = None
    latency_requirement_seconds: float | None = None
    sensing_power_watts: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("application name must be non-empty")
        if self.inference_rate_hz <= 0:
            raise ConfigurationError("inference rate must be positive")
        if (self.latency_requirement_seconds is not None
                and self.latency_requirement_seconds <= 0):
            raise ConfigurationError("latency requirement must be positive")
        if self.sensing_power_watts is not None and self.sensing_power_watts < 0:
            raise ConfigurationError("sensing power must be non-negative")


@dataclass(frozen=True)
class NodePlan:
    """The designer's plan for one leaf node."""

    application: ApplicationSpec
    offload: OffloadDecision
    profile: ModelProfile
    sensing_power_watts: float
    streaming_rate_bps: float
    average_power_watts: float
    battery_life_seconds: float
    life_band: LifeBand
    channel_length_metres: float
    link_margin_db: float
    meets_latency_requirement: bool

    @property
    def battery_life_days(self) -> float:
        """Projected battery life in days."""
        import math

        if math.isinf(self.battery_life_seconds):
            return math.inf
        return units.to_days(self.battery_life_seconds)


@dataclass(frozen=True)
class NetworkPlan:
    """The designer's plan for the whole body network."""

    nodes: tuple[NodePlan, ...]
    hub_placement: BodyLandmark
    technology: str
    total_offered_rate_bps: float
    bus_utilization: float
    schedule_feasible: bool
    hub_compute_power_watts: float

    def node(self, application_name: str) -> NodePlan:
        """Look up the plan for one application by name."""
        for plan in self.nodes:
            if plan.application.name == application_name:
                return plan
        raise ConfigurationError(f"no planned node for {application_name!r}")

    def all_leaves_perpetual_or_better_than(self, band: LifeBand) -> bool:
        """Whether every leaf reaches at least the given life band."""
        order = [LifeBand.SUB_DAY, LifeBand.ALL_DAY, LifeBand.ALL_WEEK,
                 LifeBand.ALL_MONTH, LifeBand.PERPETUAL]
        threshold = order.index(band)
        return all(order.index(plan.life_band) >= threshold for plan in self.nodes)


class NetworkDesigner:
    """Maps a set of applications onto a human-inspired body network."""

    def __init__(
        self,
        hub_placement: BodyLandmark = BodyLandmark.LEFT_POCKET,
        technology: CommTechnology | None = None,
        leaf_device: ComputeDevice | None = None,
        hub_device: ComputeDevice | None = None,
        body: BodyModel | None = None,
        battery: BatterySpec | None = None,
        survey: AFESurveyModel | None = None,
        objective: PartitionObjective = PartitionObjective.LEAF_ENERGY,
        superframe_seconds: float = 0.010,
    ) -> None:
        self.hub_placement = hub_placement
        self.technology = technology or wir_leaf_node()
        self.leaf_device = leaf_device or isa_accelerator()
        self.hub_device = hub_device or hub_soc()
        self.body = body or default_adult_body()
        self.battery = battery or coin_cell_high_capacity()
        self.survey = survey or AFESurveyModel()
        self.objective = objective
        self.superframe_seconds = superframe_seconds

    def plan_node(self, application: ApplicationSpec) -> NodePlan:
        """Plan a single application's leaf node."""
        model = build_model(application.model_name, **application.model_kwargs)
        profile = profile_model(model)
        offload = choose_offload_strategy(
            profile,
            self.leaf_device,
            self.hub_device,
            self.technology,
            application.inference_rate_hz,
            isa_pipeline=application.isa_pipeline,
            objective=self.objective,
        )

        spec = modality_spec(application.modality)
        if application.sensing_power_watts is not None:
            sensing_power = application.sensing_power_watts
        else:
            sensing_power = self.survey.sensing_power_watts(spec.raw_data_rate_bps)

        streaming_rate = offload.chosen.transfer_bits * application.inference_rate_hz
        link_power = self.technology.average_power_at_rate(
            min(streaming_rate, self.technology.data_rate_bps())
        )
        # Leaf average power: sensing + (leaf compute + tx) amortised over time.
        compute_and_tx_power = offload.chosen.leaf_average_power_watts
        average_power = sensing_power + compute_and_tx_power
        # Avoid double counting transmit energy: leaf_average_power already
        # includes transmit energy per inference; add only the link's sleep
        # floor from the duty-cycled estimate.
        average_power += self.technology.sleep_power()
        del link_power

        life = battery_life_seconds(self.battery, average_power)
        band = classify_battery_life(life)

        channel_length = self.body.channel_length(
            application.placement, self.hub_placement
        )
        if isinstance(self.technology, EQSHBCTransceiver):
            link = WiRLink(
                transceiver=self.technology,
                channel_length_metres=channel_length,
            )
            margin = link.link_margin_db()
        else:
            margin = float("inf")

        if application.latency_requirement_seconds is None:
            meets_latency = True
        else:
            meets_latency = (
                offload.chosen.latency_seconds
                <= application.latency_requirement_seconds
            )

        return NodePlan(
            application=application,
            offload=offload,
            profile=profile,
            sensing_power_watts=sensing_power,
            streaming_rate_bps=streaming_rate,
            average_power_watts=average_power,
            battery_life_seconds=life,
            life_band=band,
            channel_length_metres=channel_length,
            link_margin_db=margin,
            meets_latency_requirement=meets_latency,
        )

    def plan(self, applications: list[ApplicationSpec]) -> NetworkPlan:
        """Plan the whole network for a list of applications."""
        if not applications:
            raise ConfigurationError("at least one application is required")
        names = [application.name for application in applications]
        if len(set(names)) != len(names):
            raise ConfigurationError("application names must be unique")

        node_plans = tuple(self.plan_node(application) for application in applications)

        schedule = TDMASchedule(
            link_rate_bps=self.technology.data_rate_bps(),
            superframe_seconds=self.superframe_seconds,
        )
        for plan in node_plans:
            schedule.add_node(plan.application.name, plan.streaming_rate_bps)
        feasible = schedule.is_feasible()

        hub_compute_power = sum(
            plan.offload.chosen.hub_energy_joules * plan.application.inference_rate_hz
            for plan in node_plans
        ) + self.hub_device.idle_power_watts

        return NetworkPlan(
            nodes=node_plans,
            hub_placement=self.hub_placement,
            technology=self.technology.name,
            total_offered_rate_bps=schedule.total_offered_rate_bps(),
            bus_utilization=schedule.utilization(),
            schedule_feasible=feasible,
            hub_compute_power_watts=hub_compute_power,
        )
