"""Offload strategy selection for a leaf-node workload.

The paper's Section V describes the choices a human-inspired leaf node
has: run everything locally (what today's wearables do), ship the raw
stream to the hub, run in-sensor analytics / compression first and ship
the reduced stream, or split a DNN somewhere in the middle (partitioned
inference).  This module costs all four strategies on a common basis —
leaf energy per inference, system energy, latency and sustained leaf
average power — and picks the best one for a given objective.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError, PartitionError
from ..comm.link import CommTechnology, transfer_cost
from ..isa.pipeline import ISAPipeline
from ..nn.profile import ModelProfile
from .compute import ComputeDevice
from .partition import (
    PartitionDecision,
    PartitionObjective,
    optimal_partition,
)


class OffloadStrategy(enum.Enum):
    """Where the inference work happens."""

    LOCAL_ALL = "local_all"
    OFFLOAD_RAW = "offload_raw"
    OFFLOAD_FEATURES = "offload_features"
    PARTITIONED = "partitioned"


@dataclass(frozen=True)
class OffloadOption:
    """Cost of one strategy for one workload."""

    strategy: OffloadStrategy
    leaf_energy_joules: float
    hub_energy_joules: float
    latency_seconds: float
    transfer_bits: float
    leaf_average_power_watts: float
    partition: PartitionDecision | None = None

    @property
    def total_energy_joules(self) -> float:
        """System energy per inference."""
        return self.leaf_energy_joules + self.hub_energy_joules


@dataclass(frozen=True)
class OffloadDecision:
    """The chosen strategy plus every evaluated alternative."""

    chosen: OffloadOption
    options: tuple[OffloadOption, ...]
    objective: PartitionObjective

    def option(self, strategy: OffloadStrategy) -> OffloadOption:
        """Look up the evaluated option for *strategy*."""
        for option in self.options:
            if option.strategy is strategy:
                return option
        raise ConfigurationError(f"strategy {strategy} was not evaluated")

    def leaf_energy_ratio(self, strategy: OffloadStrategy) -> float:
        """Leaf energy of *strategy* divided by the chosen strategy's."""
        chosen_energy = self.chosen.leaf_energy_joules
        if chosen_energy == 0.0:
            return float("inf")
        return self.option(strategy).leaf_energy_joules / chosen_energy


def _objective_value(option: OffloadOption, objective: PartitionObjective) -> float:
    if objective is PartitionObjective.LEAF_ENERGY:
        return option.leaf_energy_joules
    if objective is PartitionObjective.TOTAL_ENERGY:
        return option.total_energy_joules
    if objective is PartitionObjective.LATENCY:
        return option.latency_seconds
    if objective is PartitionObjective.ENERGY_DELAY_PRODUCT:
        return option.leaf_energy_joules * option.latency_seconds
    raise PartitionError(f"unknown objective: {objective!r}")


def evaluate_offload_strategies(
    profile: ModelProfile,
    leaf_device: ComputeDevice,
    hub_device: ComputeDevice,
    technology: CommTechnology,
    inference_rate_hz: float,
    isa_pipeline: ISAPipeline | None = None,
    result_bits: float | None = None,
) -> tuple[OffloadOption, ...]:
    """Cost every applicable strategy for one profiled workload.

    Parameters
    ----------
    profile:
        Profiled model (gives MACs and activation sizes).
    leaf_device / hub_device:
        Compute tiers available on the node and the hub.
    technology:
        Leaf-to-hub link.
    inference_rate_hz:
        How often an inference runs (sets the leaf's average power).
    isa_pipeline:
        Optional feature-extraction/compression front end; enables the
        ``OFFLOAD_FEATURES`` strategy.
    result_bits:
        Size of the final inference result shipped by ``LOCAL_ALL``
        (defaults to the model's output activation size).
    """
    if inference_rate_hz < 0:
        raise ConfigurationError("inference rate must be non-negative")
    if result_bits is None:
        result_bits = profile.output_bits
    if result_bits < 0:
        raise ConfigurationError("result size must be non-negative")

    options: list[OffloadOption] = []
    total_macs = profile.total_macs

    # 1. LOCAL_ALL: the leaf runs the whole model, ships only the result.
    local_cost = transfer_cost(technology, result_bits)
    local_energy = leaf_device.compute_energy_joules(total_macs)
    local_latency = leaf_device.compute_latency_seconds(total_macs)
    options.append(OffloadOption(
        strategy=OffloadStrategy.LOCAL_ALL,
        leaf_energy_joules=local_energy + local_cost.tx_energy_joules,
        hub_energy_joules=local_cost.rx_energy_joules,
        latency_seconds=local_latency + local_cost.latency_seconds,
        transfer_bits=result_bits,
        leaf_average_power_watts=(
            (local_energy + local_cost.tx_energy_joules) * inference_rate_hz
        ),
    ))

    # 2. OFFLOAD_RAW: ship the raw input, hub runs the whole model.
    raw_cost = transfer_cost(technology, profile.input_bits)
    hub_energy = hub_device.compute_energy_joules(total_macs)
    options.append(OffloadOption(
        strategy=OffloadStrategy.OFFLOAD_RAW,
        leaf_energy_joules=raw_cost.tx_energy_joules,
        hub_energy_joules=hub_energy + raw_cost.rx_energy_joules,
        latency_seconds=(
            raw_cost.latency_seconds + hub_device.compute_latency_seconds(total_macs)
        ),
        transfer_bits=profile.input_bits,
        leaf_average_power_watts=raw_cost.tx_energy_joules * inference_rate_hz,
    ))

    # 3. OFFLOAD_FEATURES: ISA reduces the input, hub runs the whole model
    #    on features (hub compute kept equal as a conservative bound).
    if isa_pipeline is not None:
        feature_bits = isa_pipeline.output_rate_bps(profile.input_bits)
        isa_ops = profile.input_bits * sum(
            stage.ops_per_input_bit for stage in isa_pipeline.stages
        )
        isa_energy = leaf_device.compute_energy_joules(isa_ops)
        feature_cost = transfer_cost(technology, feature_bits)
        options.append(OffloadOption(
            strategy=OffloadStrategy.OFFLOAD_FEATURES,
            leaf_energy_joules=isa_energy + feature_cost.tx_energy_joules,
            hub_energy_joules=hub_energy + feature_cost.rx_energy_joules,
            latency_seconds=(
                leaf_device.compute_latency_seconds(isa_ops)
                + feature_cost.latency_seconds
                + hub_device.compute_latency_seconds(total_macs)
            ),
            transfer_bits=feature_bits,
            leaf_average_power_watts=(
                (isa_energy + feature_cost.tx_energy_joules) * inference_rate_hz
            ),
        ))

    # 4. PARTITIONED: optimal layer split.
    decision = optimal_partition(
        profile, leaf_device, hub_device, technology,
        objective=PartitionObjective.LEAF_ENERGY,
    )
    best = decision.best
    options.append(OffloadOption(
        strategy=OffloadStrategy.PARTITIONED,
        leaf_energy_joules=best.leaf_energy_joules,
        hub_energy_joules=best.hub_energy_joules,
        latency_seconds=best.latency_seconds,
        transfer_bits=best.transfer_bits,
        leaf_average_power_watts=best.leaf_energy_joules * inference_rate_hz,
        partition=decision,
    ))
    return tuple(options)


def choose_offload_strategy(
    profile: ModelProfile,
    leaf_device: ComputeDevice,
    hub_device: ComputeDevice,
    technology: CommTechnology,
    inference_rate_hz: float,
    isa_pipeline: ISAPipeline | None = None,
    objective: PartitionObjective = PartitionObjective.LEAF_ENERGY,
) -> OffloadDecision:
    """Evaluate all strategies and pick the best under *objective*."""
    options = evaluate_offload_strategies(
        profile, leaf_device, hub_device, technology, inference_rate_hz,
        isa_pipeline=isa_pipeline,
    )
    chosen = min(options, key=lambda option: _objective_value(option, objective))
    return OffloadDecision(chosen=chosen, options=options, objective=objective)
