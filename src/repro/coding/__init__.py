"""Rate-adaptive source-coding layer.

Models a second-stage entropy coder in each leaf (after the sensor's
ISA pipeline): per-modality compressibility with an inter-sensor
correlation knob, a rate–distortion clamp and an encode-effort energy
model.  See :mod:`repro.coding.model` and ``docs/coding-layer.md``.
"""

from .model import (
    COMPRESSIBILITY,
    DEFAULT_COMPRESSIBILITY,
    CodingSpec,
    ModalityCompressibility,
    compressibility_for,
)

__all__ = [
    "COMPRESSIBILITY",
    "DEFAULT_COMPRESSIBILITY",
    "CodingSpec",
    "ModalityCompressibility",
    "compressibility_for",
]
