"""Rate-adaptive source coding for body-sensor traffic.

Short packets from correlated body sensors are the regime where
low-complexity distributed entropy coders (distributed arithmetic
coding and friends — Fang, arXiv:1010.3150; Fang & Jeong,
arXiv:2101.02336) pay off: every coded bit removed from a packet is a
bit the radio never has to carry, never risks to a packet erasure and
never retransmits.  The price is CPU energy in the leaf's encoder.

This module models that trade with three ingredients:

* a per-modality :class:`ModalityCompressibility` entry — how far a
  second-stage entropy coder can squeeze the stream a sensor's ISA
  pipeline already emits (the catalog's ``compressed_rate_fraction``
  is the *first* stage; the floors here apply on top of it);
* a :class:`CodingSpec` rate–distortion knob — the requested coded
  bits per source bit, clamped at a floor that inter-sensor
  correlation lowers (a Slepian–Wolf-style side-information gain);
* an encode-effort model — energy per *source* bit grows exponentially
  with compression depth, so pushing the rate towards the floor costs
  real ISA energy and an energy-optimal rate exists strictly inside
  the feasible interval once the radio is lossy.

Everything here is a pure function of the spec: no state, no RNG.  A
node with ``coding=None`` never calls into this module, which is how
the scenario/cohort layers keep the coding-off paths bit-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sensors.catalog import SensorModality

__all__ = [
    "COMPRESSIBILITY",
    "DEFAULT_COMPRESSIBILITY",
    "CodingSpec",
    "ModalityCompressibility",
    "compressibility_for",
]


@dataclass(frozen=True)
class ModalityCompressibility:
    """How far one modality's emitted stream can still be compressed.

    ``lossless_floor`` is the achievable coded-bits-per-source-bit with
    no inter-sensor side information (the stream's residual entropy);
    ``distortion_floor`` is the hard lower bound below which the
    distortion contract of the modality would be violated (clinical
    ECG morphology, IMU gesture fidelity, ...); ``correlation_gain``
    is the fraction of the gap between the two floors that perfect
    inter-sensor correlation can unlock.
    """

    lossless_floor: float
    distortion_floor: float
    correlation_gain: float

    def __post_init__(self) -> None:
        if not 0.0 < self.distortion_floor <= self.lossless_floor <= 1.0:
            raise ConfigurationError(
                "floors must satisfy 0 < distortion <= lossless <= 1")
        if not 0.0 <= self.correlation_gain <= 1.0:
            raise ConfigurationError(
                "correlation gain must be in [0, 1]")

    def floor(self, correlation: float) -> float:
        """Achievable rate floor given inter-sensor *correlation*.

        Correlation moves the floor from ``lossless_floor`` (no side
        information) towards ``distortion_floor`` (all the redundancy
        correlation can reach has been removed), linearly in the
        correlation coefficient.
        """
        reachable = (self.lossless_floor - self.distortion_floor) \
            * self.correlation_gain
        return self.lossless_floor - reachable * correlation


#: Residual compressibility of the catalog modalities *after* their
#: ISA/codec first stage.  Slowly varying channels (temperature) keep
#: large headroom; already-whitened streams (audio, video) keep little.
COMPRESSIBILITY: dict[SensorModality, ModalityCompressibility] = {
    SensorModality.TEMPERATURE: ModalityCompressibility(
        lossless_floor=0.30, distortion_floor=0.05, correlation_gain=0.8),
    SensorModality.PPG: ModalityCompressibility(
        lossless_floor=0.50, distortion_floor=0.20, correlation_gain=0.7),
    SensorModality.ECG: ModalityCompressibility(
        lossless_floor=0.45, distortion_floor=0.15, correlation_gain=0.6),
    SensorModality.EMG: ModalityCompressibility(
        lossless_floor=0.65, distortion_floor=0.30, correlation_gain=0.5),
    SensorModality.EEG: ModalityCompressibility(
        lossless_floor=0.60, distortion_floor=0.25, correlation_gain=0.7),
    SensorModality.IMU: ModalityCompressibility(
        lossless_floor=0.55, distortion_floor=0.25, correlation_gain=0.7),
    SensorModality.AUDIO: ModalityCompressibility(
        lossless_floor=0.80, distortion_floor=0.50, correlation_gain=0.3),
    SensorModality.VIDEO_QVGA: ModalityCompressibility(
        lossless_floor=0.85, distortion_floor=0.60, correlation_gain=0.2),
    SensorModality.VIDEO_720P: ModalityCompressibility(
        lossless_floor=0.85, distortion_floor=0.60, correlation_gain=0.2),
}

#: Fallback for rate-only nodes with no declared modality.
DEFAULT_COMPRESSIBILITY = ModalityCompressibility(
    lossless_floor=0.60, distortion_floor=0.30, correlation_gain=0.5)


def compressibility_for(modality: SensorModality | None
                        ) -> ModalityCompressibility:
    """The compressibility entry for *modality* (default when None)."""
    if modality is None:
        return DEFAULT_COMPRESSIBILITY
    return COMPRESSIBILITY.get(modality, DEFAULT_COMPRESSIBILITY)


#: Encode energy per source bit at zero compression depth (a single
#: arithmetic-coder pass over the stream on a sub-threshold ISA core).
DEFAULT_ENERGY_PER_SOURCE_BIT_JOULES = 10e-12

#: Exponential growth of encode effort with compression depth: at the
#: rate floor the encoder spends ``exp(effort) ~ 20x`` the zero-depth
#: energy (context modelling, multiple passes, longer codewords).
DEFAULT_EFFORT_EXPONENT = 3.0


@dataclass(frozen=True)
class CodingSpec:
    """The rate–distortion knob of one leaf population.

    ``rate`` is the *requested* coded bits per source bit in ``(0, 1]``;
    the achievable rate is clamped at the modality's correlation-adjusted
    floor (:meth:`effective_rate`).  ``correlation`` is the inter-sensor
    correlation coefficient the decoder can exploit as side information.
    The two energy knobs parameterise the encode-effort model: energy
    per source bit is

    ``energy_per_source_bit_joules * exp(effort_exponent * depth)``

    where ``depth`` in ``[0, 1]`` measures how far the effective rate
    sits between "no compression" and the achievable floor (in terms of
    the expansion ``1/rate``, the natural axis of an arithmetic coder's
    codeword spectrum).
    """

    rate: float
    correlation: float = 0.0
    energy_per_source_bit_joules: float = DEFAULT_ENERGY_PER_SOURCE_BIT_JOULES
    effort_exponent: float = DEFAULT_EFFORT_EXPONENT

    def __post_init__(self) -> None:
        if not 0.0 < self.rate <= 1.0:
            raise ConfigurationError(
                f"coding rate must be in (0, 1], got {self.rate}")
        if not 0.0 <= self.correlation < 1.0:
            raise ConfigurationError(
                f"correlation must be in [0, 1), got {self.correlation}")
        if self.energy_per_source_bit_joules < 0.0:
            raise ConfigurationError(
                "encode energy per source bit must be non-negative")
        if self.effort_exponent < 0.0:
            raise ConfigurationError(
                "effort exponent must be non-negative")

    def floor(self, modality: SensorModality | None) -> float:
        """Achievable rate floor for *modality* at this correlation."""
        return compressibility_for(modality).floor(self.correlation)

    def effective_rate(self, modality: SensorModality | None) -> float:
        """Requested rate clamped at the achievable floor."""
        return max(self.rate, self.floor(modality))

    def compression_depth(self, modality: SensorModality | None) -> float:
        """Where the effective rate sits between 1.0 and the floor.

        Measured on the expansion axis ``1/rate`` so each extra unit of
        depth removes a comparable share of the remaining redundancy:
        0.0 means no compression, 1.0 means the coder runs at the
        correlation-adjusted floor.
        """
        floor = self.floor(modality)
        if floor >= 1.0:
            return 0.0
        effective = self.effective_rate(modality)
        return (1.0 / effective - 1.0) / (1.0 / floor - 1.0)

    def coded_bits(self, source_bits: float,
                   modality: SensorModality | None) -> float:
        """Coded payload size for a *source_bits*-long packet."""
        return source_bits * self.effective_rate(modality)

    def encode_energy_per_source_bit_joules(
            self, modality: SensorModality | None) -> float:
        """ISA energy the encoder spends per source bit."""
        return self.energy_per_source_bit_joules \
            * math.exp(self.effort_exponent
                       * self.compression_depth(modality))

    def encode_power_watts(self, source_rate_bps: float,
                           modality: SensorModality | None) -> float:
        """Average encoder power for a *source_rate_bps* stream."""
        return source_rate_bps \
            * self.encode_energy_per_source_bit_joules(modality)
