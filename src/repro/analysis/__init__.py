"""Analysis utilities: the commercial-device survey and report formatting."""

from .survey import (
    DeviceCategory,
    WearableDevice,
    WEARABLE_SURVEY,
    devices_by_category,
    estimate_battery_life_seconds,
    survey_rows,
)
from .reporting import format_table, format_quantity, markdown_table

__all__ = [
    "DeviceCategory",
    "WearableDevice",
    "WEARABLE_SURVEY",
    "devices_by_category",
    "estimate_battery_life_seconds",
    "survey_rows",
    "format_table",
    "format_quantity",
    "markdown_table",
]
