"""Survey of commercial wearables: the data behind the paper's Fig. 2.

Fig. 2 groups wearable devices into pre-2024 wearables and the 2024
wearable-AI wave, and annotates each with its typical battery life
(all-week for smart rings and fitness trackers; all-day for earbuds,
smartwatches, AI pins, pocket assistants, necklaces and smart glasses;
under ten hours for smartphones; 3--5 hours for headphones-style audio and
mixed-reality headsets).  Rather than hard-coding the labels, each survey
entry records a representative battery capacity and average platform
power, and the battery life is *recomputed* from those numbers so the
figure's banding emerges from the model (and the claimed label is kept for
cross-checking).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SurveyError
from ..energy.battery import BatterySpec, BatteryChemistry, battery_life_seconds
from ..core.battery_life import LifeBand, classify_battery_life
from .. import units


class DeviceCategory(enum.Enum):
    """Fig. 2's two columns."""

    PRE_2024 = "pre_2024"
    WEARABLE_AI_2024 = "wearable_ai_2024"


@dataclass(frozen=True)
class WearableDevice:
    """One surveyed commercial device class."""

    name: str
    category: DeviceCategory
    battery_capacity_mah: float
    battery_voltage: float
    average_power_watts: float
    claimed_band: LifeBand

    def __post_init__(self) -> None:
        if self.battery_capacity_mah <= 0:
            raise SurveyError("battery capacity must be positive")
        if self.battery_voltage <= 0:
            raise SurveyError("battery voltage must be positive")
        if self.average_power_watts <= 0:
            raise SurveyError("average power must be positive")

    def battery_spec(self) -> BatterySpec:
        """Battery model for this device."""
        return BatterySpec(
            name=f"{self.name} battery",
            capacity_mah=self.battery_capacity_mah,
            chemistry=BatteryChemistry.LITHIUM_POLYMER,
            voltage=self.battery_voltage,
        )


#: Representative capacities and average platform powers for the device
#: classes named in Fig. 2.  Powers are whole-platform averages over a
#: typical usage day (screen, radios, CPU duty cycles folded in).
WEARABLE_SURVEY: tuple[WearableDevice, ...] = (
    WearableDevice("smart ring", DeviceCategory.PRE_2024,
                   battery_capacity_mah=20.0, battery_voltage=3.8,
                   average_power_watts=units.microwatt(450.0),
                   claimed_band=LifeBand.ALL_WEEK),
    WearableDevice("fitness tracker", DeviceCategory.PRE_2024,
                   battery_capacity_mah=100.0, battery_voltage=3.8,
                   average_power_watts=units.milliwatt(2.2),
                   claimed_band=LifeBand.ALL_WEEK),
    WearableDevice("earbuds", DeviceCategory.PRE_2024,
                   battery_capacity_mah=50.0, battery_voltage=3.7,
                   average_power_watts=units.milliwatt(10.0),
                   claimed_band=LifeBand.ALL_DAY),
    WearableDevice("smartwatch", DeviceCategory.PRE_2024,
                   battery_capacity_mah=300.0, battery_voltage=3.85,
                   average_power_watts=units.milliwatt(35.0),
                   claimed_band=LifeBand.ALL_DAY),
    WearableDevice("headphones (over-ear, ANC)", DeviceCategory.PRE_2024,
                   battery_capacity_mah=700.0, battery_voltage=3.7,
                   average_power_watts=units.milliwatt(90.0),
                   claimed_band=LifeBand.ALL_DAY),
    WearableDevice("smartphone", DeviceCategory.PRE_2024,
                   battery_capacity_mah=4000.0, battery_voltage=3.85,
                   average_power_watts=1.8,
                   claimed_band=LifeBand.SUB_DAY),
    WearableDevice("AI pin", DeviceCategory.WEARABLE_AI_2024,
                   battery_capacity_mah=450.0, battery_voltage=3.85,
                   average_power_watts=units.milliwatt(60.0),
                   claimed_band=LifeBand.ALL_DAY),
    WearableDevice("AI pocket assistant", DeviceCategory.WEARABLE_AI_2024,
                   battery_capacity_mah=1000.0, battery_voltage=3.85,
                   average_power_watts=units.milliwatt(150.0),
                   claimed_band=LifeBand.ALL_DAY),
    WearableDevice("AI necklace / pendant", DeviceCategory.WEARABLE_AI_2024,
                   battery_capacity_mah=250.0, battery_voltage=3.7,
                   average_power_watts=units.milliwatt(30.0),
                   claimed_band=LifeBand.ALL_DAY),
    WearableDevice("smart glasses", DeviceCategory.WEARABLE_AI_2024,
                   battery_capacity_mah=160.0, battery_voltage=3.7,
                   average_power_watts=units.milliwatt(25.0),
                   claimed_band=LifeBand.ALL_DAY),
    WearableDevice("mixed-reality headset", DeviceCategory.WEARABLE_AI_2024,
                   battery_capacity_mah=3500.0, battery_voltage=3.85,
                   average_power_watts=3.2,
                   claimed_band=LifeBand.SUB_DAY),
)


def devices_by_category(category: DeviceCategory) -> tuple[WearableDevice, ...]:
    """All surveyed devices in one of Fig. 2's columns."""
    return tuple(d for d in WEARABLE_SURVEY if d.category is category)


def estimate_battery_life_seconds(device: WearableDevice) -> float:
    """Recompute the device's battery life from capacity and average power."""
    return battery_life_seconds(device.battery_spec(), device.average_power_watts)


def survey_rows() -> list[dict[str, object]]:
    """Fig. 2 reproduction rows: modelled life and band versus the claim."""
    rows: list[dict[str, object]] = []
    for device in WEARABLE_SURVEY:
        life = estimate_battery_life_seconds(device)
        band = classify_battery_life(life)
        rows.append({
            "device": device.name,
            "category": device.category.value,
            "capacity_mah": device.battery_capacity_mah,
            "average_power_mw": units.to_milliwatt(device.average_power_watts),
            "life_hours": units.to_hours(life),
            "life_days": units.to_days(life),
            "band": band.value,
            "claimed_band": device.claimed_band.value,
            "matches_claim": band == device.claimed_band,
        })
    return rows
