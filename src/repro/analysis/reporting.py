"""Plain-text and Markdown table formatting for experiment outputs.

The benchmark harness prints "the same rows the paper reports"; these
helpers turn lists of dicts into aligned ASCII or Markdown tables without
pulling in any plotting or tabulation dependency.
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

from ..errors import ConfigurationError


def format_quantity(value: object, precision: int = 3) -> str:
    """Format one cell: floats get engineering-friendly formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}g}"
    return str(value)


def _normalise_rows(rows: Sequence[Mapping[str, object]],
                    columns: Sequence[str] | None) -> tuple[list[str], list[list[str]]]:
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    if columns is None:
        columns = list(rows[0].keys())
    rendered = []
    for row in rows:
        rendered.append([format_quantity(row.get(column, "")) for column in columns])
    return list(columns), rendered


def format_table(rows: Sequence[Mapping[str, object]],
                 columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render rows as an aligned ASCII table."""
    header, body = _normalise_rows(rows, columns)
    widths = [len(column) for column in header]
    for row in body:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Iterable[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(header))
    lines.append("-+-".join("-" * width for width in widths))
    for row in body:
        lines.append(render_row(row))
    return "\n".join(lines)


def markdown_table(rows: Sequence[Mapping[str, object]],
                   columns: Sequence[str] | None = None) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    header, body = _normalise_rows(rows, columns)
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in body:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
