"""Camera-glasses node: MJPEG in-sensor compression plus vision offload.

Image/video devices are the most power-hungry class in the paper (Fig. 3
places them at all-day battery life even with Wi-R).  This example runs
the video path end to end:

1. synthesise a short first-person greyscale clip,
2. compress it with the MJPEG-like in-sensor codec the paper names as the
   canonical video ISA stage, measuring the real compression ratio,
3. partition the tiny MobileNet-style vision model between the glasses
   and the hub over Wi-R and over BLE,
4. compare node battery life for {raw, MJPEG} x {Wi-R, BLE}.

Run with::

    python examples/video_glasses_offload.py
"""

from __future__ import annotations

from repro import units
from repro.analysis.reporting import format_table
from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_commercial
from repro.core.battery_life import classify_battery_life
from repro.core.compute import hub_soc, isa_accelerator
from repro.core.partition import optimal_partition
from repro.energy.battery import battery_life_seconds, coin_cell_high_capacity
from repro.isa.compression import MJPEGLikeCodec
from repro.nn.profile import profile_model
from repro.nn.zoo import mobilenet_tiny
from repro.sensors.video import VideoGenerator


def compress_a_clip() -> float:
    """Generate and MJPEG-compress one second of QVGA-class video."""
    generator = VideoGenerator(width=160, height=120, frame_rate_hz=15.0)
    frames = generator.generate(1.0, rng=0)
    codec = MJPEGLikeCodec(quality=50)
    result = codec.compress_video(frames)
    print(f"compressed {frames.shape[0]} frames of "
          f"{generator.width}x{generator.height} video")
    print(f"  raw rate        : {generator.data_rate_bps() / 1e6:.2f} Mb/s")
    print(f"  compression     : {result.compression_ratio:.1f}:1 "
          f"(RMSE {result.reconstruction_rmse:.1f} grey levels)")
    compressed_rate = generator.data_rate_bps() / result.compression_ratio
    print(f"  compressed rate : {compressed_rate / 1e6:.2f} Mb/s")
    return compressed_rate


def partition_the_vision_model() -> None:
    """Split the visual-wake-words model between glasses and hub."""
    profile = profile_model(mobilenet_tiny())
    rows = []
    for technology in (wir_commercial(), ble_1m_phy()):
        decision = optimal_partition(profile, isa_accelerator(), hub_soc(),
                                     technology)
        best = decision.best
        rows.append({
            "link": technology.name,
            "best_split": best.split_index,
            "boundary": best.boundary_layer,
            "macs_on_hub_%": 100.0 * best.hub_macs / profile.total_macs,
            "transfer_kbits": best.transfer_bits / 1000.0,
            "leaf_energy_uj": best.leaf_energy_joules / units.MICRO,
            "latency_ms": best.latency_seconds * 1000.0,
        })
    print()
    print(format_table(
        rows, title=f"Vision model partition per frame ({profile.total_macs:,} MACs)"
    ))


def battery_comparison(compressed_rate_bps: float) -> None:
    """Battery life of the glasses for raw vs MJPEG over Wi-R vs BLE."""
    camera_power = units.milliwatt(60.0)
    raw_rate = VideoGenerator(width=160, height=120, frame_rate_hz=15.0).data_rate_bps()
    battery = coin_cell_high_capacity()
    rows = []
    for technology in (wir_commercial(), ble_1m_phy()):
        for label, rate in (("raw", raw_rate), ("mjpeg", compressed_rate_bps)):
            feasible = rate <= technology.data_rate_bps()
            if feasible:
                comm_power = technology.average_power_at_rate(rate)
            else:
                comm_power = technology.tx_active_power()
            total = camera_power + comm_power
            life = battery_life_seconds(battery, total)
            rows.append({
                "link": technology.name,
                "stream": label,
                "stream_mbps": rate / 1e6,
                "fits_on_link": feasible,
                "node_power_mw": units.to_milliwatt(total),
                "life_days": units.to_days(life),
                "band": classify_battery_life(life).value,
            })
    print()
    print(format_table(rows, title="Camera-glasses battery life (1000 mAh)"))


def main() -> None:
    compressed_rate = compress_a_clip()
    partition_the_vision_model()
    battery_comparison(compressed_rate)


if __name__ == "__main__":
    main()
