"""Full-body network: eight leaf nodes, one hub, analytical plan + simulation.

This example scales the quickstart up to the full constellation the paper
sketches in Fig. 1 — biopotential patches, an EEG headband, EMG sleeves,
IMUs, a smart ring, an audio pin and a camera node — plans it with the
network designer, and then replays the planned traffic through the
discrete-event body-bus simulator to check latency and delivery.

Run with::

    python examples/body_network_design.py
"""

from __future__ import annotations

from repro import units
from repro.analysis.reporting import format_table
from repro.body.landmarks import BodyLandmark
from repro.core.designer import ApplicationSpec, NetworkDesigner
from repro.isa.pipeline import audio_feature_pipeline, mjpeg_video_pipeline
from repro.netsim.config import NodeConfig
from repro.netsim.simulator import BodyNetworkSimulator
from repro.netsim.traffic import PeriodicSource
from repro.sensors.catalog import SensorModality


def build_applications() -> list[ApplicationSpec]:
    """A whole-body constellation of wearable AI leaf nodes."""
    return [
        ApplicationSpec("chest ECG patch", SensorModality.ECG,
                        BodyLandmark.STERNUM, "ecg_arrhythmia", 1.2,
                        sensing_power_watts=units.microwatt(30.0)),
        ApplicationSpec("EEG headband", SensorModality.EEG,
                        BodyLandmark.FOREHEAD, "ecg_arrhythmia", 0.5,
                        sensing_power_watts=units.microwatt(250.0)),
        ApplicationSpec("left forearm EMG sleeve", SensorModality.EMG,
                        BodyLandmark.LEFT_FOREARM, "imu_har", 2.0,
                        sensing_power_watts=units.microwatt(400.0)),
        ApplicationSpec("right wrist IMU", SensorModality.IMU,
                        BodyLandmark.RIGHT_WRIST, "imu_har", 1.0,
                        sensing_power_watts=units.microwatt(300.0)),
        ApplicationSpec("smart ring PPG", SensorModality.PPG,
                        BodyLandmark.LEFT_INDEX_FINGER, "imu_har", 0.2,
                        sensing_power_watts=units.microwatt(150.0)),
        ApplicationSpec("ankle gait IMU", SensorModality.IMU,
                        BodyLandmark.LEFT_ANKLE, "imu_har", 1.0,
                        sensing_power_watts=units.microwatt(300.0)),
        ApplicationSpec("audio AI pin", SensorModality.AUDIO,
                        BodyLandmark.CHEST, "keyword_spotting", 1.0,
                        isa_pipeline=audio_feature_pipeline(),
                        sensing_power_watts=units.milliwatt(2.0)),
        ApplicationSpec("camera glasses", SensorModality.VIDEO_QVGA,
                        BodyLandmark.RIGHT_EYE, "vision_tiny", 2.0,
                        isa_pipeline=mjpeg_video_pipeline(),
                        sensing_power_watts=units.milliwatt(60.0)),
    ]


def plan_network(applications: list[ApplicationSpec]):
    designer = NetworkDesigner(hub_placement=BodyLandmark.LEFT_POCKET)
    plan = designer.plan(applications)
    rows = []
    for node in plan.nodes:
        rows.append({
            "node": node.application.name,
            "placement": node.application.placement.value,
            "channel_m": node.channel_length_metres,
            "strategy": node.offload.chosen.strategy.value,
            "stream_kbps": node.streaming_rate_bps / 1000.0,
            "power_uw": units.to_microwatt(node.average_power_watts),
            "life_days": node.battery_life_days,
            "band": node.life_band.value,
        })
    print(format_table(rows, title="Planned body network (Wi-R leaf links)"))
    print()
    print(f"bus utilisation {plan.bus_utilization * 100.0:.2f} % | "
          f"schedule feasible: {plan.schedule_feasible} | "
          f"hub compute {plan.hub_compute_power_watts * 1000.0:.0f} mW")
    return designer, plan


def simulate(designer: NetworkDesigner, plan) -> None:
    """Replay the planned traffic through the discrete-event simulator."""
    simulator = BodyNetworkSimulator(designer.technology, rng=0)
    for node in plan.nodes:
        simulator.attach(NodeConfig(
            name=node.application.name,
            source=PeriodicSource.from_rate(max(node.streaming_rate_bps, 64.0)),
            sensing_power_watts=node.sensing_power_watts,
        ))
    result = simulator.run(10.0)
    print()
    print("discrete-event replay of the planned traffic (10 s):")
    print(f"  delivered packets : {result.delivered_packets} "
          f"(dropped {result.dropped_packets})")
    print(f"  mean latency      : {result.mean_latency_seconds * 1000.0:.2f} ms "
          f"(p99 {result.p99_latency_seconds * 1000.0:.2f} ms)")
    print(f"  bus utilisation   : {result.bus_utilization * 100.0:.2f} %")
    print(f"  hub receive energy: {result.hub_rx_energy_joules * 1000.0:.2f} mJ")
    heaviest = max(result.per_node_average_power_watts.items(), key=lambda kv: kv[1])
    lightest = min(result.per_node_average_power_watts.items(), key=lambda kv: kv[1])
    print(f"  heaviest leaf     : {heaviest[0]} at "
          f"{units.to_microwatt(heaviest[1]):.0f} uW")
    print(f"  lightest leaf     : {lightest[0]} at "
          f"{units.to_microwatt(lightest[1]):.0f} uW")


def main() -> None:
    applications = build_applications()
    designer, plan = plan_network(applications)
    simulate(designer, plan)


if __name__ == "__main__":
    main()
