"""Quickstart: design a three-node human-inspired wearable AI network.

This example follows the paper's Fig. 1 (right): featherweight leaf nodes
(an ECG patch, an audio AI pin and a wrist activity tracker) connected to
one on-body hub over Wi-R, with each node's DNN partitioned between leaf
and hub.  It prints, for every node, where the model was split, the node's
average power, its projected battery life and whether it is perpetually
operable — plus the shared-bus utilisation of the whole network.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import units
from repro.analysis.reporting import format_table
from repro.body.landmarks import BodyLandmark
from repro.core.designer import ApplicationSpec, NetworkDesigner
from repro.isa.pipeline import audio_feature_pipeline
from repro.sensors.catalog import SensorModality


def build_applications() -> list[ApplicationSpec]:
    """The three wearable-AI applications this walkthrough maps onto leaves."""
    return [
        ApplicationSpec(
            name="arrhythmia monitor",
            modality=SensorModality.ECG,
            placement=BodyLandmark.STERNUM,
            model_name="ecg_arrhythmia",
            inference_rate_hz=1.2,
            sensing_power_watts=units.microwatt(30.0),
        ),
        ApplicationSpec(
            name="keyword spotter",
            modality=SensorModality.AUDIO,
            placement=BodyLandmark.CHEST,
            model_name="keyword_spotting",
            inference_rate_hz=1.0,
            isa_pipeline=audio_feature_pipeline(),
            sensing_power_watts=units.milliwatt(2.0),
            latency_requirement_seconds=0.5,
        ),
        ApplicationSpec(
            name="activity tracker",
            modality=SensorModality.IMU,
            placement=BodyLandmark.RIGHT_WRIST,
            model_name="imu_har",
            inference_rate_hz=1.0,
            sensing_power_watts=units.microwatt(300.0),
        ),
    ]


def main() -> None:
    designer = NetworkDesigner(hub_placement=BodyLandmark.LEFT_POCKET)
    plan = designer.plan(build_applications())

    rows = []
    for node in plan.nodes:
        best = node.offload.chosen
        rows.append({
            "node": node.application.name,
            "placement": node.application.placement.value,
            "strategy": best.strategy.value,
            "stream_kbps": node.streaming_rate_bps / 1000.0,
            "leaf_power_uw": units.to_microwatt(node.average_power_watts),
            "battery_life_days": node.battery_life_days,
            "band": node.life_band.value,
            "latency_ok": node.meets_latency_requirement,
            "link_margin_db": node.link_margin_db,
        })
    print(format_table(rows, title="Human-inspired wearable AI network plan"))
    print()
    print(f"hub placement          : {plan.hub_placement.value}")
    print(f"body link              : {plan.technology}")
    print(f"total offered rate     : {plan.total_offered_rate_bps / 1000.0:.1f} kb/s")
    print(f"body-bus utilisation   : {plan.bus_utilization * 100.0:.2f} %")
    print(f"TDMA schedule feasible : {plan.schedule_feasible}")
    print(f"hub compute power      : {plan.hub_compute_power_watts * 1000.0:.1f} mW "
          "(the one daily-charged device)")


if __name__ == "__main__":
    main()
