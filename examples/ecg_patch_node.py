"""ECG patch leaf node: from raw biopotential signal to perpetual operation.

The paper's flagship device class is the biopotential sensor patch that
Fig. 3 places in the "perpetually operable" region.  This example walks the
whole stack for that node:

1. synthesise a realistic single-lead ECG (PQRST morphology),
2. run the in-sensor analytics stage (R-peak detection -> heart rate),
3. profile the arrhythmia CNN and partition it between the patch and the
   on-body hub over Wi-R versus BLE,
4. project battery life on the 1000 mAh cell of Fig. 3, and
5. check perpetual operation against indoor energy harvesting.

Run with::

    python examples/ecg_patch_node.py
"""

from __future__ import annotations

from repro import units
from repro.analysis.reporting import format_table
from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_leaf_node
from repro.core.battery_life import project_battery_life
from repro.core.compute import hub_soc, isa_accelerator, leaf_mcu
from repro.core.feasibility import perpetual_feasibility
from repro.core.partition import optimal_partition
from repro.energy.harvester import indoor_photovoltaic, thermoelectric_body
from repro.isa.features import detect_r_peaks, heart_rate_from_peaks
from repro.nn.profile import profile_model
from repro.nn.zoo import ecg_arrhythmia_cnn
from repro.sensors.biopotential import ECGGenerator


def sense_and_extract() -> tuple[float, float]:
    """Generate 60 s of ECG and run the ISA stage (R-peak detection)."""
    generator = ECGGenerator(heart_rate_bpm=72.0)
    signal = generator.generate(60.0, rng=0)
    peaks = detect_r_peaks(signal, generator.sample_rate_hz)
    heart_rate = heart_rate_from_peaks(peaks, generator.sample_rate_hz)
    raw_rate_bps = generator.data_rate_bps(bits_per_sample=12)
    print(f"sensed 60 s of ECG at {raw_rate_bps / 1000.0:.1f} kb/s, "
          f"detected {len(peaks)} beats, heart rate ~{heart_rate:.0f} bpm")
    return raw_rate_bps, heart_rate


def partition_the_classifier() -> None:
    """Where should the arrhythmia CNN run: patch, hub, or split?"""
    profile = profile_model(ecg_arrhythmia_cnn())
    rows = []
    for technology in (wir_leaf_node(), ble_1m_phy()):
        decision = optimal_partition(profile, isa_accelerator(), hub_soc(),
                                     technology)
        local_energy = leaf_mcu().compute_energy_joules(profile.total_macs)
        best = decision.best
        rows.append({
            "link": technology.name,
            "best_split": best.split_index,
            "boundary": best.boundary_layer,
            "macs_on_hub_%": 100.0 * best.hub_macs / profile.total_macs,
            "transfer_bits": best.transfer_bits,
            "leaf_energy_uj": best.leaf_energy_joules / units.MICRO,
            "vs_local_mcu_x": local_energy / best.leaf_energy_joules,
            "latency_ms": best.latency_seconds * 1000.0,
        })
    print()
    print(format_table(rows, title="Arrhythmia CNN partition per beat "
                                   f"({profile.total_macs:,} MACs)"))


def project_the_battery(raw_rate_bps: float) -> float:
    """Fig. 3 projection for this patch on the 1000 mAh coin cell."""
    point = project_battery_life(raw_rate_bps,
                                 sensing_power_watts=units.microwatt(30.0))
    print()
    print("battery projection (1000 mAh, 100 pJ/bit Wi-R):")
    print(f"  sensing power       : {units.to_microwatt(point.sensing_power_watts):.1f} uW")
    print(f"  communication power : {units.to_microwatt(point.communication_power_watts):.2f} uW")
    print(f"  projected life      : {point.life_days:.0f} days "
          f"({point.band.value})")
    return point.total_power_watts


def check_perpetual(load_power_watts: float) -> None:
    """Does indoor harvesting make the patch charging-free?"""
    report = perpetual_feasibility(
        "ECG patch", load_power_watts,
        harvesters=[indoor_photovoltaic(), thermoelectric_body()],
    )
    print()
    print("perpetual-operation check (indoor PV + body TEG):")
    print(f"  harvested power : {units.to_microwatt(report.harvested_power_watts):.0f} uW")
    print(f"  node load       : {units.to_microwatt(report.load_power_watts):.1f} uW")
    print(f"  energy neutral  : {report.is_energy_neutral}")
    print(f"  perpetual       : {report.is_perpetual}")


def main() -> None:
    raw_rate_bps, _ = sense_and_extract()
    partition_the_classifier()
    total_power = project_the_battery(raw_rate_bps)
    check_perpetual(total_power)


if __name__ == "__main__":
    main()
