"""Train, quantise and deploy an IMU activity-recognition model.

The previous examples treat the DNNs as fixed workloads; this one closes
the loop for the wrist-worn activity tracker:

1. build a labelled dataset of synthetic IMU windows (five activities),
2. train the ``imu_har`` MLP with the built-in SGD trainer,
3. quantise the trained weights to int8 (the in-sensor deployment format)
   and measure the accuracy cost,
4. decide where the model should run (leaf vs hub) over Wi-R and over
   BLE, and report the leaf's energy per classification either way.

Run with::

    python examples/activity_recognition_training.py
"""

from __future__ import annotations

import numpy as np

from repro import units
from repro.analysis.reporting import format_table
from repro.comm.ble import ble_1m_phy
from repro.comm.eqs_hbc import wir_leaf_node
from repro.core.compute import hub_soc, isa_accelerator
from repro.core.offload import choose_offload_strategy
from repro.nn.profile import profile_model
from repro.nn.quantize import quantize_model_weights
from repro.nn.train import accuracy, make_imu_har_dataset, train_imu_har_classifier


def train_and_quantise():
    """Train the HAR MLP and measure float vs int8 accuracy."""
    model, history = train_imu_har_classifier(windows_per_class=20, epochs=40,
                                              seed=0)
    features, labels, class_names = make_imu_har_dataset(windows_per_class=20,
                                                         rng=0)
    # Hold-out set drawn from a different random stream.
    test_features, test_labels, _ = make_imu_har_dataset(windows_per_class=8,
                                                         rng=99)
    float_accuracy = accuracy(model, test_features, test_labels)
    quantize_model_weights(model, bits=8)
    int8_accuracy = accuracy(model, test_features, test_labels)

    print(f"classes            : {', '.join(class_names)}")
    print(f"training windows   : {features.shape[0]} "
          f"({features.shape[1]} features each)")
    print(f"final train loss   : {history.final_loss:.3f}")
    print(f"train accuracy     : {history.final_accuracy * 100.0:.1f} %")
    print(f"held-out accuracy  : {float_accuracy * 100.0:.1f} % (float), "
          f"{int8_accuracy * 100.0:.1f} % (int8)")
    print(f"chance level       : {100.0 / len(class_names):.1f} %")
    return model


def deployment_decision(model) -> None:
    """Where should each classification run, and what does it cost the leaf?"""
    profile = profile_model(model)
    rows = []
    for technology in (wir_leaf_node(), ble_1m_phy()):
        decision = choose_offload_strategy(
            profile, isa_accelerator(), hub_soc(), technology,
            inference_rate_hz=1.0,
        )
        chosen = decision.chosen
        rows.append({
            "link": technology.name,
            "strategy": chosen.strategy.value,
            "transfer_bits": chosen.transfer_bits,
            "leaf_energy_nj": chosen.leaf_energy_joules / units.NANO,
            "latency_ms": chosen.latency_seconds * 1000.0,
            "leaf_power_uw_at_1hz": units.to_microwatt(
                chosen.leaf_average_power_watts
            ),
        })
    print()
    print(format_table(rows, title=f"Deployment of the trained HAR model "
                                   f"({profile.total_macs:,} MACs, "
                                   f"{profile.total_params:,} params)"))


def main() -> None:
    np.set_printoptions(precision=3, suppress=True)
    model = train_and_quantise()
    deployment_decision(model)


if __name__ == "__main__":
    main()
