"""Regenerate every reproduced figure/table (E1-E11) and print the rows.

This is the one-shot driver behind EXPERIMENTS.md: it runs every
experiment module and prints its table, so the paper-versus-measured
comparison can be refreshed after any model change.

Run with::

    python examples/reproduce_figures.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.experiments import (
    charging_burden,
    claims,
    fig1_power_breakdown,
    fig2_battery_survey,
    fig3_battery_projection,
    isa_ablation,
    network_scaling,
    partitioned_inference,
    perpetual,
    quantization_ablation,
    termination_ablation,
)


def banner(title: str) -> None:
    print()
    print("#" * 78)
    print(f"# {title}")
    print("#" * 78)


def main() -> None:
    banner("E1 / Fig. 1 — active-power breakdown")
    result1 = fig1_power_breakdown.run()
    print(format_table(result1.rows()))
    print("power reduction factors:", {
        name: round(value, 1) for name, value in result1.reduction_factors().items()
    })

    banner("E2 / Fig. 2 — battery life of commercial wearables")
    result2 = fig2_battery_survey.run()
    print(format_table(result2.rows))
    print(f"band agreement with the paper: {result2.agreement_fraction * 100.0:.0f} %")

    banner("E3 / Fig. 3 — projected battery life vs data rate (Wi-R)")
    result3 = fig3_battery_projection.run()
    print(format_table(result3.device_rows()))
    print(f"perpetual region extends to "
          f"{result3.perpetual_rate_limit_bps() / 1000.0:.0f} kb/s")

    banner("E4 — quantitative claims (Wi-R vs BLE vs RF)")
    result4 = claims.run()
    print(format_table(result4.rows()))
    print(format_table(result4.security_rows, title="physical security"))

    banner("E5 — partitioned DNN inference")
    result5 = partitioned_inference.run()
    print(format_table(result5.rows()))

    banner("E6 — perpetual operation with indoor harvesting")
    result6 = perpetual.run()
    print(format_table(result6.rows()))

    banner("E7 — ISA ablation ({Wi-R, BLE} x {raw, ISA})")
    result7 = isa_ablation.run()
    print(format_table(result7.rows()))

    banner("E8 — body-bus scaling")
    result8 = network_scaling.run(simulated_seconds=1.0)
    print(format_table(result8.rows()))
    print(f"max feasible 64 kb/s leaves on one hub: {result8.max_feasible_nodes()}")

    banner("E9 — EQS receiver-termination ablation")
    result9 = termination_ablation.run()
    print(format_table(result9.rows()))
    print(f"whole-body gain flatness: {result9.whole_body_flatness_db:.1f} dB")

    banner("E10 — activation-precision / partition ablation")
    result10 = quantization_ablation.run()
    print(format_table(result10.rows()))

    banner("E11 — charging burden vs number of wearables")
    result11 = charging_burden.run()
    print(format_table(result11.rows()))
    print(f"incremental burden ratio at 10 wearables: "
          f"{result11.incremental_burden_ratio_at(10):.1f}x")


if __name__ == "__main__":
    main()
