"""Regenerate every reproduced figure/table (E1-E15) and print the rows.

This is the one-shot driver behind EXPERIMENTS.md: it walks the central
experiment registry (:mod:`repro.runner`) — the same code path the CLI,
the benchmarks and the tests use — runs every registered experiment and
prints its table plus summary lines, so the paper-versus-measured
comparison can be refreshed after any model change.

Run with::

    python examples/reproduce_figures.py
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.runner import all_specs


def banner(title: str) -> None:
    print()
    print("#" * 78)
    print(f"# {title}")
    print("#" * 78)


def main() -> None:
    for spec in all_specs():
        banner(f"{spec.eid} / {spec.id} — {spec.title}")
        result = spec.execute()
        print(format_table(spec.extract_rows(result)))
        for line in spec.summary_lines(result):
            print(line)


if __name__ == "__main__":
    main()
