"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables via the
corresponding :mod:`repro.experiments` driver, prints the reproduced rows
(the same rows/series the paper reports) and asserts the shape checks
documented in DESIGN.md, while pytest-benchmark records the runtime.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table


def emit(title: str, rows: list[dict[str, object]],
         columns: list[str] | None = None) -> None:
    """Print a reproduced table under a banner (visible with ``-s``)."""
    print()
    print("=" * 78)
    print(format_table(rows, columns=columns, title=title))
    print("=" * 78)
