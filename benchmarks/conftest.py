"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables via the
corresponding :mod:`repro.experiments` driver, prints the reproduced rows
(the same rows/series the paper reports) and asserts the shape checks
documented in DESIGN.md, while pytest-benchmark records the runtime.
Run with ``pytest benchmarks/ --benchmark-only``.

Setting ``REPRO_BENCH_SYNTHETIC_SLOWDOWN`` (e.g. ``2.0``) inflates the
wall time of every discrete-event run by that factor without touching
product code — the dry-run lever that proves the CI benchmark-regression
gate actually fails on a slowdown (see docs/cohort-engine.md).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.reporting import format_table
from repro.netsim.events import EventQueue


@pytest.fixture(autouse=True)
def synthetic_slowdown(monkeypatch):
    """Optionally slow the DES hot path for benchmark-gate dry runs."""
    factor = float(os.environ.get("REPRO_BENCH_SYNTHETIC_SLOWDOWN", "0") or 0.0)
    if factor > 1.0:
        real_run_until = EventQueue.run_until

        def slowed(self, end_time):
            started = time.perf_counter()
            result = real_run_until(self, end_time)
            time.sleep((factor - 1.0) * (time.perf_counter() - started))
            return result

        monkeypatch.setattr(EventQueue, "run_until", slowed)
    yield


def emit(title: str, rows: list[dict[str, object]],
         columns: list[str] | None = None) -> None:
    """Print a reproduced table under a banner (visible with ``-s``)."""
    print()
    print("=" * 78)
    print(format_table(rows, columns=columns, title=title))
    print("=" * 78)
