"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's figures/tables via the
corresponding :mod:`repro.experiments` driver, prints the reproduced rows
(the same rows/series the paper reports) and asserts the shape checks
documented in DESIGN.md, while pytest-benchmark records the runtime.
Run with ``pytest benchmarks/ --benchmark-only``.

Setting ``REPRO_BENCH_SYNTHETIC_SLOWDOWN`` (e.g. ``2.0``) inflates the
wall time of every discrete-event run by that factor without touching
product code — the dry-run lever that proves the CI benchmark-regression
gate actually fails on a slowdown (see docs/cohort-engine.md).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.analysis.reporting import format_table
from repro.netsim.simulator import BodyNetworkSimulator


@pytest.fixture(autouse=True)
def synthetic_slowdown(monkeypatch):
    """Optionally slow the DES hot path for benchmark-gate dry runs.

    Wraps ``BodyNetworkSimulator.run`` — the batched kernel's single
    entry point — rather than ``EventQueue.run_until``: the merged
    three-stream loop drives the calendar queue directly, so only a
    fraction of kernel time flows through ``run_until`` now.
    """
    factor = float(os.environ.get("REPRO_BENCH_SYNTHETIC_SLOWDOWN", "0") or 0.0)
    if factor > 1.0:
        real_run = BodyNetworkSimulator.run

        def slowed(self, *args, **kwargs):
            started = time.perf_counter()
            result = real_run(self, *args, **kwargs)
            time.sleep((factor - 1.0) * (time.perf_counter() - started))
            return result

        monkeypatch.setattr(BodyNetworkSimulator, "run", slowed)
    yield


def emit(title: str, rows: list[dict[str, object]],
         columns: list[str] | None = None) -> None:
    """Print a reproduced table under a banner (visible with ``-s``)."""
    print()
    print("=" * 78)
    print(format_table(rows, columns=columns, title=title))
    print("=" * 78)
