"""E9 benchmark (ablation) — EQS receiver termination (high-Z vs 50 ohm)."""

from __future__ import annotations

from conftest import emit

from repro import units
from repro.runner import resolve


def test_bench_termination_ablation(benchmark):
    result = benchmark(resolve("termination").execute)

    emit("EQS termination ablation — channel gain and required TX swing",
         result.rows())

    # Shape checks: the high-impedance termination the paper prescribes is
    # always better, dramatically so at the low end of the EQS band, and
    # keeps the required transmit swing at CMOS levels across the body.
    assert result.min_penalty_db() > 0.0
    low_band = result.at(units.kilohertz(100.0), 1.0)
    top_band = result.at(units.megahertz(30.0), 1.0)
    assert low_band.penalty_db > top_band.penalty_db + 20.0
    assert all(point.required_swing_high_z_volts < 3.3 for point in result.points)
    assert result.whole_body_flatness_db < 6.0
