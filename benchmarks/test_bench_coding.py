"""Source-coding benchmarks: the coded DES path and the E17 sweep.

Two timings guard the coding layer:

* a 1-hour ``coded_ward`` run — the lossy BLE ward with rate-0.7 coded
  pump/SpO2 telemetry, so every hot-path table (shortened frames, the
  lower per-frame erasure probability, the per-node encode-power post)
  is exercised for a full simulated hour.  Alongside the timing it
  asserts the layer's contract: the coded body beats the uncoded
  ``noisy_ward`` on leaf power while the encoder stays a minority
  share of the budget.
* E17 ``coding`` — the default rate sweep for the BLE EEG headband
  (eight DES runs, each cross-checked against the cohort closed form),
  which must keep locating a strictly interior energy-optimal rate.
"""

from __future__ import annotations

from conftest import emit

from repro import units
from repro.experiments import coding
from repro.scenarios import get_scenario


def run_coded_ward_hour():
    coded = get_scenario("coded_ward").run(seed=0,
                                           duration_seconds=units.hours(1.0))
    plain = get_scenario("noisy_ward").run(seed=0,
                                           duration_seconds=units.hours(1.0))
    return coded, plain


def test_bench_coded_ward_lossy_hour(benchmark):
    coded, plain = benchmark.pedantic(run_coded_ward_hour, rounds=1,
                                      iterations=1)

    emit("coding — coded_ward vs noisy_ward, 1 simulated hour",
         [coded.row(), plain.row()])

    sim = coded.simulated
    assert sim.coding_enabled
    assert sim.bit_reduction_factor > 1.2
    assert 0.0 < sim.encode_energy_fraction < 0.5
    # The point of the layer: compression beats the lossy radio.
    assert sim.total_leaf_power_watts \
        < plain.simulated.total_leaf_power_watts
    assert sim.delivered_fraction >= plain.simulated.delivered_fraction


def run_coding_experiment():
    return coding.run()


def test_bench_coding_rate_sweep(benchmark):
    result = benchmark.pedantic(run_coding_experiment, rounds=1,
                                iterations=1)

    emit("E17 — energy per delivered source bit vs coding rate",
         result.rows())

    # The experiment's own acceptance bounds: the optimum is interior,
    # it saves real energy, and the closed form tracks every point.
    assert result.optimal_is_interior()
    assert result.savings_fraction() > 0.05
    assert result.max_leaf_power_rel_error() < 0.02
