"""E12 benchmark (extension) — MQS-HBC body-assisted implant communication."""

from __future__ import annotations

from conftest import emit

from repro import units
from repro.comm.mqs_hbc import mqs_implant_link
from repro.experiments import implant_extension
from repro.runner import resolve


def test_bench_implant_extension(benchmark):
    result = benchmark(resolve("implant").execute)

    emit("Implant extension — MQS-HBC vs BLE for implanted leaf nodes",
         result.rows())

    # Shape checks: the MQS link closes through tissue, keeps every implant
    # in the multi-year battery regime, and beats a BLE implant radio.
    for name, _rate, _sensing, _depth in implant_extension.IMPLANT_CLASSES:
        case = result.case(name, mqs_implant_link().name)
        assert case.link_closes
        assert case.life_years > 3.0
        assert result.life_advantage(name) > 1.5
    assert result.relay_to_hub_power_watts < units.microwatt(100.0)
