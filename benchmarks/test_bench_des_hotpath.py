"""DES hot-path benchmarks: the simulator kernel under sustained load.

Two timings guard the discrete-event hot path:

* ``dense_50_leaf`` — the 1-hour, 50-leaf TDMA stress scenario
  (~175k delivered packets).  It runs past the latency accumulator's
  exact window, so this benchmark also asserts the streaming/bounded
  memory contract: raw sample retention stays at zero after the spill
  while count, mean and percentiles keep working.
* event-queue churn — schedule/cancel pressure on the
  :class:`~repro.netsim.events.EventQueue`, guarding the lazy-compaction
  bound (cancelled events can never exceed half the heap).
"""

from __future__ import annotations

from conftest import emit

from repro.netsim.events import EventQueue
from repro.scenarios import get_scenario


def run_dense_hour():
    spec = get_scenario("dense_50_leaf")
    simulator = spec.build(seed=0)
    result = simulator.run(spec.duration_seconds)
    return simulator, result


def test_bench_dense_50_leaf_hour(benchmark):
    simulator, result = benchmark.pedantic(run_dense_hour, rounds=1,
                                           iterations=1)

    emit("DES hot path — dense_50_leaf, 1 simulated hour",
         [{"delivered": result.delivered_packets,
           "dropped": result.dropped_packets,
           "mean_latency_ms": result.mean_latency_seconds * 1e3,
           "p99_latency_ms": result.p99_latency_seconds * 1e3,
           "bus_utilization": result.bus_utilization}])

    # Throughput shape: ~50 leaves x ~1 pkt/s x 3600 s.
    assert result.delivered_packets > 100_000
    assert result.delivered_fraction > 0.95
    # Bounded-memory contract: the run spilled out of the exact window
    # and holds no raw samples, yet the statistics are still live.
    accumulator = simulator.bus.stats.latency
    assert not accumulator.is_exact
    assert accumulator.retained_samples == 0
    assert accumulator.count == result.delivered_packets
    assert 0.0 < result.mean_latency_seconds < result.p99_latency_seconds


def churn_queue(events: int = 20_000) -> int:
    queue = EventQueue()
    handles = [queue.schedule_at(float(index), lambda: None)
               for index in range(events)]
    # Cancel every other event; lazy compaction must keep the heap from
    # carrying more cancelled entries than live ones.
    for handle in handles[::2]:
        handle.cancel()
    fired = 0
    while queue.step():
        fired += 1
    return fired


def test_bench_event_queue_churn(benchmark):
    fired = benchmark(churn_queue)
    assert fired == 10_000
