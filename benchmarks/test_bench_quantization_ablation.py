"""E10 benchmark (ablation) — activation precision vs partition point."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def test_bench_quantization_ablation(benchmark):
    result = benchmark(resolve("quantization").execute)

    emit("Activation-precision ablation — optimal partition per width",
         result.rows())

    # Shape checks: Wi-R keeps offloading (and stays cheaper than BLE) at
    # every precision; BLE's optimum computes locally regardless.
    for workload in ("keyword_spotting", "ecg_arrhythmia", "vision_tiny"):
        wir_series = result.series(workload, "Wi-R (EQS-HBC)")
        ble_series = result.series(workload, "BLE 1M PHY")
        for wir_point, ble_point in zip(wir_series, ble_series):
            assert wir_point.leaf_energy_joules < ble_point.leaf_energy_joules
    for point in result.series("keyword_spotting", "BLE 1M PHY"):
        assert point.hub_mac_fraction < 0.5
    assert result.series("keyword_spotting", "Wi-R (EQS-HBC)")[-1].hub_mac_fraction > 0.5
