"""Reliability-layer benchmarks: the lossy DES path under sustained load.

Two timings guard the erasure/ARQ machinery:

* a 1-hour posture-cycling lossy run — ``commute_walk`` stretched to an
  hour, so the body cycles sitting → walking → standing → sitting with
  posture-swapped erasure probabilities while stop-and-wait ARQ recovers
  every corrupted frame.  Alongside the timing it asserts the
  acceptance contract: flat memory (streaming ledgers retain zero
  entries, the latency accumulator spills and holds no raw samples) and
  *bounded retransmission overhead* (the attempt factor stays near the
  closed-form expectation instead of snowballing).
* E16 ``reliability`` — the link-margin sweep (six lossy DES runs from
  96 % erasures down to a clean link, each cross-checked against the
  truncated-geometric closed forms).
"""

from __future__ import annotations

from conftest import emit

from repro import units
from repro.experiments import reliability
from repro.scenarios import get_scenario


def run_commute_hour():
    spec = get_scenario("commute_walk")
    simulator = spec.build(seed=0, duration_seconds=units.hours(1.0),
                           latency_exact_capacity=4096)
    result = simulator.run(units.hours(1.0))
    return spec, simulator, result


def test_bench_commute_walk_lossy_hour(benchmark):
    spec, simulator, result = benchmark.pedantic(run_commute_hour, rounds=1,
                                                 iterations=1)

    emit("reliability — commute_walk, 1 simulated lossy hour",
         [{"delivered": result.delivered_packets,
           "erased": result.erased_attempts,
           "retx": result.retransmissions,
           "lost": result.lost_packets,
           "attempts_per_pkt": result.attempts_per_delivered,
           "retx_energy_uj": result.retransmission_energy_joules * 1e6,
           "mean_latency_ms": result.mean_latency_seconds * 1e3}])

    # The posture cycle actually bites: erasures happened and ARQ
    # recovered essentially all of them.
    assert result.erased_attempts > 100
    assert result.retransmissions > 100
    assert result.delivered_fraction > 0.99
    # Bounded retransmission overhead: the sitting segments erase ~18 %
    # of frames, so the whole-run attempt factor must sit well under the
    # retry limit's worst case — near the time-averaged closed form.
    profile = spec.reliability_profile()
    expected_attempts = max(attempts for _, attempts in profile.values())
    assert 1.0 < result.attempts_per_delivered < expected_attempts + 0.1
    # Flat memory over the lossy hour: streaming ledgers retain nothing,
    # and the latency accumulator spilled out of its exact window.
    for node in simulator.nodes.values():
        assert node.ledger.retained_entries == 0
    assert simulator.hub_ledger.retained_entries == 0
    accumulator = simulator.bus.stats.latency
    assert not accumulator.is_exact
    assert accumulator.retained_samples == 0
    assert accumulator.count == result.delivered_packets


def run_reliability_experiment():
    return reliability.run()


def test_bench_reliability_margin_sweep(benchmark):
    result = benchmark.pedantic(run_reliability_experiment, rounds=1,
                                iterations=1)

    emit("E16 — link margin vs delivery and retransmission energy",
         result.rows())

    # The experiment's own acceptance bound: sampled delivery tracks the
    # closed form across the sweep, and margin buys delivery.
    assert result.max_delivery_abs_error() < 0.05
    fractions = result.delivered_fractions()
    assert fractions[0] < 0.3 and fractions[-1] == 1.0
