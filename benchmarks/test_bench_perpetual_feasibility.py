"""E6 benchmark — perpetual operation under indoor energy harvesting."""

from __future__ import annotations

from conftest import emit

from repro import units
from repro.runner import resolve


def test_bench_perpetual_feasibility(benchmark):
    result = benchmark(resolve("perpetual").execute)

    emit("Perpetual-operation feasibility vs harvested power (10-200 uW indoor)",
         result.rows())

    # Shape checks (DESIGN.md E6): the classes the paper lists become
    # perpetual within the indoor harvesting range; video nodes do not.
    perpetual_at_100uw = " ".join(
        result.perpetual_classes(units.microwatt(100.0))
    ).lower()
    for keyword in ("biopotential", "ring", "fitness"):
        assert keyword in perpetual_at_100uw
    for level in result.harvest_levels_watts:
        assert not any("video" in name for name in result.perpetual_classes(level))

    # A realistic indoor harvester stack lands inside the paper's range.
    assert units.microwatt(10.0) <= result.reference_harvester_power_watts \
        <= units.microwatt(500.0)
