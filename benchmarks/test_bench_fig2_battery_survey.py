"""E2 benchmark — Fig. 2: battery life of current wearable devices."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def test_bench_fig2_battery_survey(benchmark):
    result = benchmark(resolve("fig2").execute)

    emit("Fig. 2 — battery life of commercial wearables (modelled vs claimed band)",
         result.rows,
         columns=["device", "category", "capacity_mah", "average_power_mw",
                  "life_hours", "life_days", "band", "claimed_band",
                  "matches_claim"])

    # Shape check (DESIGN.md E2): every surveyed device class lands in the
    # battery-life band the paper's figure claims for it.
    assert result.agreement_fraction == 1.0
    assert result.device_count >= 10
