"""Multi-body environment benchmark: a packed gym hour.

The shared-RF environment layer co-schedules N bodies by pre-scheduling
interference swaps and then running each body's unmodified kernel once.
Its cost contract is linearity: a room of N bodies must cost about N
standalone runs — the epoch plumbing (geometry, schedule drain, swap
closures) has to stay off the per-packet hot path.  This benchmark
times a 10-body gym hour against one standalone body of the same
scenario and gates the ratio.
"""

from __future__ import annotations

import time

from conftest import emit

from repro.scenarios import BodyPlacement, EnvironmentSpec, get_scenario

BODIES = 10
SIMULATED_SECONDS = 3600.0

#: The environment may cost at most this factor over N standalone
#: bodies (swap scheduling + timing noise headroom on a linear bound).
LINEARITY_SLACK = 2.0


def run_gym_hour():
    spec = get_scenario("barefoot_yoga")
    started = time.perf_counter()
    solo = spec.run(seed=0, duration_seconds=SIMULATED_SECONDS)
    solo_seconds = time.perf_counter() - started

    environment = EnvironmentSpec(
        name="bench_gym",
        description="10 yoga bodies sharing one floor for an hour",
        bodies=(BodyPlacement(scenario="barefoot_yoga", count=BODIES,
                              name="yogi"),),
        spacing_metres=1.5,
        duration_seconds=SIMULATED_SECONDS,
    )
    started = time.perf_counter()
    crowded = environment.run(seed=0)
    crowd_seconds = time.perf_counter() - started
    return solo, crowded, solo_seconds, crowd_seconds


def test_bench_multibody_gym_hour(benchmark):
    solo, crowded, solo_seconds, crowd_seconds = benchmark.pedantic(
        run_gym_hour, rounds=1, iterations=1)

    emit("Multi-body gym — 10 bodies, 1 simulated hour",
         [{"bodies": 1, "wall_s": round(solo_seconds, 3),
           "delivered": solo.simulated.delivered_packets,
           "erased": solo.simulated.erased_attempts},
          {"bodies": BODIES, "wall_s": round(crowd_seconds, 3),
           "delivered": crowded.simulated.delivered_packets,
           "erased": sum(result.erased_attempts
                         for result in crowded.simulated.body_results)}])

    # Every body ran the full hour and delivered traffic.
    assert len(crowded.simulated.body_results) == BODIES
    for result in crowded.simulated.body_results:
        assert result.duration_seconds == SIMULATED_SECONDS
        assert result.delivered_packets > 0
    # The shared room hurts: aggregate erasures exceed N isolated runs.
    crowd_erasures = sum(result.erased_attempts
                         for result in crowded.simulated.body_results)
    assert crowd_erasures > BODIES * solo.simulated.erased_attempts
    # Linearity gate: the environment costs ~N standalone bodies, not
    # N^2 (per-packet interference evaluation would blow this bound).
    assert crowd_seconds <= LINEARITY_SLACK * BODIES * solo_seconds, (
        f"10-body hour took {crowd_seconds:.2f}s vs "
        f"{solo_seconds:.2f}s solo")
