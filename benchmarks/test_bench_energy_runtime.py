"""Energy-runtime benchmarks: the closed energy loop under sustained load.

Two timings guard the battery-aware simulation path:

* ``week_wear`` — the 1-hour dense body where every leaf carries a
  1/168-scaled cell (a week of drain per simulated hour), one node
  browns out and the IMU pods throttle on their low-battery crossing.
  Alongside the timing it asserts the acceptance contract: >= 1
  brownout, and *flat ledger memory* — every per-node ledger and the
  hub ledger retain zero entries however many packets and energy ticks
  the hour posts.
* E15 ``lifetime`` — the DES-vs-closed-form validation loop (several
  battery-constrained runs to brownout plus the harvesting sweep).
"""

from __future__ import annotations

from conftest import emit

from repro.experiments import lifetime
from repro.scenarios import get_scenario


def run_week_wear_hour():
    spec = get_scenario("week_wear")
    simulator = spec.build(seed=0)
    result = simulator.run(spec.duration_seconds)
    return simulator, result


def test_bench_week_wear_battery_hour(benchmark):
    simulator, result = benchmark.pedantic(run_week_wear_hour, rounds=1,
                                           iterations=1)

    emit("energy runtime — week_wear, 1 simulated hour on scaled cells",
         [{"delivered": result.delivered_packets,
           "dead_nodes": result.dead_node_count,
           "first_death_s": result.first_death_seconds,
           "min_soc": min(result.per_node_state_of_charge.values()),
           "harvested_j": result.harvested_joules,
           "events": len(result.energy_events)}])

    # Acceptance: a dense finite-battery scenario shows >= 1 brownout.
    assert result.dead_node_count >= 1
    assert result.first_death_seconds < result.duration_seconds
    # Low-battery adaptation fired too (the IMU pods throttle).
    assert any(event.kind == "low_battery"
               for event in result.energy_events)
    # Flat ledger memory over the simulated hour: streaming mode holds
    # running totals only — zero retained entries on every node and the
    # hub, despite tens of thousands of postings.
    for node in simulator.nodes.values():
        assert node.ledger.retained_entries == 0
        assert node.ledger.posted_count > 0
    assert simulator.hub_ledger.retained_entries == 0
    assert simulator.hub_ledger.posted_count > result.delivered_packets - 1
    # The energy loop must not distort traffic for surviving nodes.
    assert result.delivered_fraction > 0.95


def run_lifetime_experiment():
    return lifetime.run()


def test_bench_lifetime_validation(benchmark):
    result = benchmark.pedantic(run_lifetime_experiment, rounds=1,
                                iterations=1)

    emit("E15 — closed-loop lifetime: DES brownout vs closed form",
         result.rows())

    # The experiment's own acceptance bound: every Fig. 3 operating
    # point within the stated tolerance, perpetual points alive.
    assert result.all_within_tolerance()
    assert result.max_rel_error() <= 0.05
