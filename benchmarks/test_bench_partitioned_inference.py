"""E5 benchmark — partitioned DNN inference across the leaf-hub link."""

from __future__ import annotations

from conftest import emit

from repro import units
from repro.runner import resolve


def test_bench_partitioned_inference(benchmark):
    result = benchmark(resolve("partition").execute)

    emit("Partitioned inference — optimal split per workload and link",
         result.rows())

    wir_name = "Wi-R (EQS-HBC)"
    ble_name = "BLE 1M PHY"
    for workload in ("keyword_spotting", "ecg_arrhythmia", "vision_tiny"):
        over_wir = result.for_workload(workload, wir_name)
        over_ble = result.for_workload(workload, ble_name)
        # Shape checks (DESIGN.md E5): Wi-R pushes the optimum toward the hub
        # and cuts the leaf's energy; BLE pushes compute back onto the leaf.
        assert over_wir.offload_fraction >= over_ble.offload_fraction
        assert over_wir.best_leaf_energy_joules < over_ble.best_leaf_energy_joules
        assert over_wir.leaf_energy_reduction >= 50.0

    # Always-on audio/biopotential leaves stay in the microwatt class over Wi-R.
    for workload in ("keyword_spotting", "ecg_arrhythmia"):
        over_wir = result.for_workload(workload, wir_name)
        assert over_wir.leaf_average_power_watts < units.microwatt(100.0)
