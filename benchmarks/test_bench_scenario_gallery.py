"""E13 benchmark (extension) — the scenario gallery across MAC policies."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def run_gallery():
    return resolve("gallery").execute(duration_scale=0.02)


def test_bench_scenario_gallery(benchmark):
    result = benchmark(run_gallery)

    emit("Scenario gallery — every registered scenario, 2% duration",
         result.rows())

    # Shape checks: the gallery covers >= 6 scenarios, all three
    # arbitration policies and at least three link technologies, and
    # every scenario delivers its traffic.
    assert len(result.results) >= 6
    assert {r.arbitration for r in result.results} == {"fifo", "tdma",
                                                       "polling"}
    technologies = {key for r in result.results for key in r.technologies}
    assert len(technologies) >= 3
    for scenario_result in result.results:
        assert scenario_result.simulated.delivered_packets > 0
        assert scenario_result.simulated.delivered_fraction > 0.9
