"""Shard-codec benchmarks: throughput, compression ratio, flat memory.

Three properties of the binary cohort pipeline are gated here:

* **Throughput** — encoding and decoding a 100k-member shard frame runs
  at MB/s-scale, so the codec never dominates a cohort run.
* **Compression** — the binary artifact for a 100k cohort is at least
  5x smaller than the equivalent JSON spelling of the same aggregates
  (it is typically well past 10x against per-member JSON rows).
* **Flat memory** — streaming a ~1M-member synthetic cohort through
  encoded frames leaves peak RSS flat: the merge retains sketches and
  counters, never members.
"""

from __future__ import annotations

import dataclasses
import json
import math
import resource
import time

from conftest import emit

from repro.cohort import (
    CohortAccumulator,
    MemberMetrics,
    ShardFrame,
    decode_shard,
    encode_shard,
    read_summary,
)

MEMBERS_100K = 100_000


def synthetic_member(index: int) -> MemberMetrics:
    """Deterministic member row: cheap to generate, structured like a run."""
    phase = (index % 997) / 997.0
    return MemberMetrics(
        index=index,
        scenario=("office", "gym", "commute")[index % 3],
        source="analytic" if index % 7 else "des",
        arbitration=("fifo", "tdma", "polling")[index % 3],
        node_count=3 + index % 5,
        duration_seconds=60.0,
        delivered_packets=500 + index % 211,
        delivered_fraction=0.9 + 0.1 * phase,
        mean_latency_seconds=1e-3 * (1.0 + phase),
        p99_latency_seconds=5e-3 * (1.0 + phase),
        bus_utilization=0.05 + 0.4 * phase,
        leaf_power_watts=1e-4 * (1.0 + 9.0 * phase),
        hub_power_watts=1e-3 * (1.0 + phase),
        leaf_energy_joules=6e-3 * (1.0 + 9.0 * phase),
        hub_energy_joules=6e-2 * (1.0 + phase),
        alive_fraction=1.0,
        first_death_seconds=math.inf,
    )


def build_100k_shard(keep_members: bool = False) -> ShardFrame:
    accumulator = CohortAccumulator(keep_members=keep_members)
    for index in range(MEMBERS_100K):
        accumulator.add(synthetic_member(index))
    return ShardFrame(shard_index=0, start=0, stop=MEMBERS_100K,
                      accumulator=accumulator)


def json_size_of_members(frame: ShardFrame) -> int:
    """The JSON artifact spelling of the same 100k member rows.

    ``write_artifact`` writes ``indent=1`` JSON; one row per member with
    every key repeated is what landing this data in the JSON artifact
    would have cost — the format the columnar members section replaces.
    """
    rows = [dataclasses.asdict(member)
            for member in frame.accumulator.members]
    for row in rows:
        if row["first_death_seconds"] == math.inf:
            row["first_death_seconds"] = "inf"  # sanitize() spelling
    return len(json.dumps({"rows": rows}, indent=1).encode("utf-8"))


def test_bench_codec_100k_encode_decode(benchmark):
    frame = build_100k_shard(keep_members=True)

    def encode_and_decode():
        blob = encode_shard(frame)
        return blob, decode_shard(blob)

    blob, decoded = benchmark.pedantic(encode_and_decode, rounds=3,
                                       iterations=1)

    started = time.perf_counter()
    encode_shard(frame)
    encode_seconds = time.perf_counter() - started
    started = time.perf_counter()
    decode_shard(blob)
    decode_seconds = time.perf_counter() - started
    summary = read_summary(blob)
    megabytes = summary.raw_bytes / 1e6
    json_bytes = json_size_of_members(frame)

    # The same aggregates with members dropped: what a default
    # (keep_members=False) cohort run ships per shard.
    frame.accumulator.keep_members = False
    slim_bytes = len(encode_shard(frame))
    frame.accumulator.keep_members = True

    emit("shard codec — 100k-member frame", [{
        "members": MEMBERS_100K,
        "frame_bytes": len(blob),
        "aggregates_only_bytes": slim_bytes,
        "json_bytes": json_bytes,
        "ratio_vs_json": round(json_bytes / len(blob), 1),
        "encode_MB_s": round(megabytes / encode_seconds, 1),
        "decode_MB_s": round(megabytes / decode_seconds, 1),
    }])

    assert decoded.accumulator.population == MEMBERS_100K
    # Acceptance: the binary artifact beats the JSON spelling of the
    # same member rows >= 5x (typically well past 10x).
    assert json_bytes >= 5 * len(blob)
    # Without members the frame is KB-scale however large the cohort.
    assert slim_bytes < 64 * 1024
    # The footer answers overview queries without touching columns.
    assert summary.population == MEMBERS_100K
    assert summary.metrics["leaf_power_watts"].count == MEMBERS_100K


def test_bench_codec_100k_streaming_merge(benchmark):
    shards = 8
    per_shard = MEMBERS_100K // shards
    frames = []
    for shard in range(shards):
        accumulator = CohortAccumulator()
        start = shard * per_shard
        for index in range(start, start + per_shard):
            accumulator.add(synthetic_member(index))
        frames.append(encode_shard(ShardFrame(
            shard_index=shard, start=start, stop=start + per_shard,
            accumulator=accumulator)))

    def merge_all():
        merged = CohortAccumulator()
        for blob in frames:
            merged.merge_encoded(blob)
        return merged

    merged = benchmark.pedantic(merge_all, rounds=3, iterations=1)

    emit("shard codec — merge 8 encoded frames (100k members)",
         [merged.overview()])

    assert merged.population == MEMBERS_100K
    assert merged.by_source["des"] == math.ceil(MEMBERS_100K / 7)


def test_bench_codec_1m_flat_memory(benchmark):
    """Peak RSS stays flat while a ~1M-member cohort streams through.

    Members are generated, folded shard-by-shard into encoded frames and
    merged immediately — the exact shape of ``run_cohort`` — so the only
    retained state is sketches plus counters.  The assertion bounds the
    RSS growth of the aggregation phase to far below what materialising
    one million member rows (~200 MB) would cost.
    """
    population = 1_000_000
    shards = 20
    per_shard = population // shards

    def stream_cohort():
        merged = CohortAccumulator()
        total_bytes = 0
        for shard in range(shards):
            accumulator = CohortAccumulator()
            start = shard * per_shard
            for index in range(start, start + per_shard):
                accumulator.add(synthetic_member(index))
            blob = encode_shard(ShardFrame(
                shard_index=shard, start=start, stop=start + per_shard,
                accumulator=accumulator))
            total_bytes += len(blob)
            merged.merge_encoded(blob)
        return merged, total_bytes

    rss_before_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    (merged, total_bytes) = benchmark.pedantic(stream_cohort, rounds=1,
                                               iterations=1)
    rss_after_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    growth_mib = (rss_after_kib - rss_before_kib) / 1024.0

    emit("shard codec — 1M members streamed through encoded frames", [{
        "population": merged.population,
        "encoded_bytes": total_bytes,
        "bytes_per_member": round(total_bytes / merged.population, 2),
        "peak_rss_growth_mib": round(growth_mib, 1),
    }])

    assert merged.population == population
    # Flat memory: the streaming aggregation must not grow peak RSS by
    # anything near the ~200 MB a materialised member list would take.
    # One shard's exact windows (8 metrics x 65536 float64) plus codec
    # buffers legitimately cost a few tens of MB, transiently.
    assert growth_mib < 120.0
    # And every metric accumulator ends bounded, not member-sized.
    for accumulator in merged.metrics.values():
        assert accumulator.retained_samples <= accumulator.exact_capacity
