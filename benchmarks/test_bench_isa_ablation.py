"""E7 benchmark (ablation) — in-sensor analytics vs link technology."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def test_bench_isa_ablation(benchmark):
    result = benchmark(resolve("isa").execute)

    emit("ISA ablation — {Wi-R, BLE} x {raw, ISA-reduced} per node class",
         result.rows())

    wir_name = "Wi-R (EQS-HBC)"
    ble_name = "BLE 1M PHY"
    # Shape checks (DESIGN.md E7): over Wi-R, compression is marginal (which
    # is why the paper can neglect ISA power); over BLE it is a 2x+ lever,
    # and raw video does not fit on BLE at all.
    for node in ("ECG patch", "audio AI node"):
        assert result.isa_life_gain(node, wir_name) < 1.2
        assert result.isa_life_gain(node, ble_name) > 2.0
    assert not result.cell("video node (QVGA)", ble_name, False).link_feasible
    assert result.cell("video node (QVGA)", wir_name, True).link_feasible
