"""E3 benchmark — Fig. 3: projected battery life vs data rate with Wi-R."""

from __future__ import annotations

from conftest import emit

from repro import units
from repro.runner import resolve


def test_bench_fig3_battery_projection(benchmark):
    result = benchmark(resolve("fig3").execute)

    emit("Fig. 3 — battery life vs data rate (1000 mAh, 100 pJ/bit Wi-R): curve",
         result.curve_rows()[::6])
    emit("Fig. 3 — device-class placements",
         result.device_rows())

    # Shape checks (DESIGN.md E3): the three bands the paper annotates.
    assert result.bands_match_paper()
    # Perpetual region covers biopotential patches, rings, fitness trackers.
    assert result.perpetual_rate_limit_bps() >= units.kilobit_per_second(10.0)
    # Wi-R's advantage over the BLE counterfactual grows with data rate.
    assert result.wir_life_advantage_at(units.kilobit_per_second(300.0)) > \
        result.wir_life_advantage_at(units.kilobit_per_second(1.0))
