"""E1 benchmark — Fig. 1: active-power breakdown of IoB node architectures."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def test_bench_fig1_power_breakdown(benchmark):
    result = benchmark(resolve("fig1").execute)

    emit("Fig. 1 — active power per component (uW), today's vs human-inspired",
         result.rows())

    reductions = result.reduction_factors()
    # Shape checks (DESIGN.md E1): microwatt-class sensing nodes gain >= 50x;
    # the camera node is sensor-dominated and gains only modestly.
    assert reductions["ECG patch"] >= 50.0
    assert reductions["audio AI pin"] >= 50.0
    assert reductions["camera glasses"] > 1.0

    ecg = result.comparisons["ECG patch"]
    assert ecg.conventional.dominant_component().name == "radio"
    assert ecg.human_inspired.total_watts() < 1e-3
