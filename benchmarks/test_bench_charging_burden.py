"""E11 benchmark — charging burden vs number of wearables worn."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def test_bench_charging_burden(benchmark):
    result = benchmark(resolve("charging").execute)

    emit("Charging burden — charge events per week vs wearables worn",
         result.rows())

    # Shape checks: today's architecture scales linearly with the device
    # count, the human-inspired one stays nearly flat, and beyond the
    # already-charged hub the burden gap approaches an order of magnitude
    # at a ten-device constellation (the paper's market argument).
    one = result.at(1)
    ten = result.at(10)
    assert ten.conventional_events_per_week > 5.0 * one.conventional_events_per_week
    assert ten.human_inspired_events_per_week <= 2.0 * one.human_inspired_events_per_week
    assert result.incremental_burden_ratio_at(10) >= 5.0
