"""Cohort-engine benchmarks: population-scale throughput and flat memory.

Two timings guard the cohort hot path:

* the 10k-member analytic cohort — the headline acceptance target
  (seconds, not hours): sampling 10 000 wearers, evaluating them through
  the vectorised steady-state fast path, cross-validating a sampled
  subset on the DES, and streaming everything into bounded accumulators.
* a sharded DES cohort — the reference path under shard merge, asserting
  that the packet-level latency distribution survives aggregation.
"""

from __future__ import annotations

from conftest import emit

from repro.cohort import CohortSpec, run_cohort


def run_cohort_10k_analytic():
    spec = CohortSpec(population=10_000, seed=0)
    return run_cohort(spec, fast_path="analytic", shard_count=8,
                      parallel=1, validate_stride=2500)


def test_bench_cohort_10k_analytic(benchmark):
    result = benchmark.pedantic(run_cohort_10k_analytic, rounds=1,
                                iterations=1)

    emit("cohort hot path — 10k members, analytic fast path",
         [result.overview()])

    assert result.accumulator.population == 10_000
    # The acceptance bound: a 10k cohort is a seconds-scale workload.
    assert result.elapsed_seconds < 60.0
    # Flat memory: every metric accumulator is bounded by its exact
    # window regardless of population; no per-member result list exists.
    for accumulator in result.accumulator.metrics.values():
        assert accumulator.retained_samples <= accumulator.exact_capacity
    # The sampled DES cross-check keeps the fast path honest.
    errors = result.max_validation_errors()
    assert errors["leaf_power_rel_error"] < 0.10
    assert errors["delivered_fraction_abs_error"] < 0.05
    assert errors["mean_latency_factor"] < 3.0


def run_cohort_des_sharded():
    spec = CohortSpec(population=60, seed=1, member_duration_seconds=30.0)
    return run_cohort(spec, fast_path="des", shard_count=4, parallel=1)


def test_bench_cohort_des_sharded(benchmark):
    result = benchmark.pedantic(run_cohort_des_sharded, rounds=1,
                                iterations=1)

    emit("cohort reference path — 60 members on the DES, 4 shards",
         [result.overview()])

    assert result.accumulator.population == 60
    assert result.accumulator.by_source == {"des": 60}
    # Shard-merged packet statistics stay live across the merge.
    packets = result.accumulator.packet_latency
    assert packets.count == result.accumulator.delivered_packets
    assert packets.percentile(99.0) > packets.percentile(50.0) > 0.0
