"""E8 benchmark (ablation) — how many leaf nodes one Wi-R hub supports."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def run_scaling():
    return resolve("scaling").execute(node_counts=(1, 2, 4, 8, 16, 32),
                                      simulated_seconds=1.0)


def test_bench_network_scaling(benchmark):
    result = benchmark(run_scaling)

    emit("Body-bus scaling — 64 kb/s leaves sharing one Wi-R hub",
         result.rows())

    # Shape checks (DESIGN.md E8): tens of audio-feature-class leaves fit;
    # utilisation and latency grow monotonically with the population.
    assert result.max_feasible_nodes() >= 16
    utilizations = [point.tdma_utilization for point in result.points]
    assert utilizations == sorted(utilizations)
    for point in result.points:
        if point.tdma_feasible and point.simulated is not None:
            assert point.delivered_fraction > 0.95
