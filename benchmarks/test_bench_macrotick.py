"""Macro-tick hybrid kernel: speedup floors and agreement envelope.

The hybrid fast path must earn its complexity: a >=25x wall-clock
improvement on the 8-hour sleep_night body (a long, quiescent overnight
run — the macro-tick engine's home turf) and >=10x on the E15 closed-
loop lifetime sweep (battery endgames force exact chunks, so the floor
is lower).  Both floors are asserted against an exact-kernel run timed
in the same process, alongside the documented agreement envelope —
a fast-but-wrong kernel must fail here, not in a notebook.
"""

from __future__ import annotations

import dataclasses
import time

from conftest import emit

from repro.experiments import lifetime
from repro.netsim import macrotick
from repro.scenarios import get_scenario

#: Wall-clock floors the tentpole promises (see ROADMAP.md).
SLEEP_NIGHT_MIN_SPEEDUP = 25.0
LIFETIME_MIN_SPEEDUP = 10.0

#: 8 simulated hours of the overnight scenario.
SLEEP_NIGHT_SECONDS = 8.0 * 3600.0


def run_sleep_night_hybrid():
    spec = get_scenario("sleep_night")
    simulator = spec.build(seed=0)
    return simulator.run(SLEEP_NIGHT_SECONDS, fast_path="hybrid")


def test_bench_hybrid_sleep_night_8h(benchmark):
    # Three rounds, best-of: the floor asserts the kernel's capability,
    # and a single measured round is at the mercy of whatever GC pause
    # or cache eviction the preceding benchmark left behind.
    hybrid = benchmark.pedantic(run_sleep_night_hybrid, rounds=3,
                                iterations=1, warmup_rounds=1)

    spec = get_scenario("sleep_night")
    started = time.perf_counter()
    exact = spec.build(seed=0).run(SLEEP_NIGHT_SECONDS)
    exact_seconds = time.perf_counter() - started
    hybrid_seconds = benchmark.stats.stats.min
    speedup = exact_seconds / hybrid_seconds

    emit("macro-tick hybrid — sleep_night, 8 simulated hours",
         [{"path": "exact", "wall_s": exact_seconds,
           "delivered": exact.delivered_packets,
           "mean_latency_ms": exact.mean_latency_seconds * 1e3,
           "leaf_power_uw": exact.total_leaf_power_watts * 1e6},
          {"path": "hybrid", "wall_s": hybrid_seconds,
           "delivered": hybrid.delivered_packets,
           "mean_latency_ms": hybrid.mean_latency_seconds * 1e3,
           "leaf_power_uw": hybrid.total_leaf_power_watts * 1e6}])

    assert speedup >= SLEEP_NIGHT_MIN_SPEEDUP, (
        f"hybrid sleep_night speedup {speedup:.1f}x below the "
        f"{SLEEP_NIGHT_MIN_SPEEDUP:.0f}x floor")
    # The documented agreement envelope, asserted on the same pair of
    # runs the speedup was measured on.
    assert abs(hybrid.total_leaf_power_watts - exact.total_leaf_power_watts) \
        <= macrotick.POWER_REL_TOL * exact.total_leaf_power_watts
    assert abs(hybrid.hub_average_power_watts
               - exact.hub_average_power_watts) \
        <= macrotick.POWER_REL_TOL * exact.hub_average_power_watts
    assert abs(hybrid.delivered_fraction - exact.delivered_fraction) \
        <= macrotick.DELIVERED_ABS_TOL
    ratio = hybrid.mean_latency_seconds / exact.mean_latency_seconds
    assert 1.0 / macrotick.MEAN_LATENCY_FACTOR < ratio \
        < macrotick.MEAN_LATENCY_FACTOR
    p99 = hybrid.p99_latency_seconds / exact.p99_latency_seconds
    assert 1.0 / macrotick.P99_LATENCY_FACTOR < p99 \
        < macrotick.P99_LATENCY_FACTOR


def run_lifetime_hybrid():
    return lifetime.run(fast_path="hybrid")


def test_bench_hybrid_lifetime_sweep(benchmark):
    hybrid = benchmark.pedantic(run_lifetime_hybrid, rounds=3, iterations=1,
                                warmup_rounds=1)

    started = time.perf_counter()
    exact = lifetime.run()
    exact_seconds = time.perf_counter() - started
    hybrid_seconds = benchmark.stats.stats.min
    speedup = exact_seconds / hybrid_seconds

    emit("macro-tick hybrid — E15 closed-loop lifetime sweep",
         [{"path": "exact", "wall_s": exact_seconds,
           "max_rel_error": exact.max_rel_error()},
          {"path": "hybrid", "wall_s": hybrid_seconds,
           "max_rel_error": hybrid.max_rel_error()}])

    assert speedup >= LIFETIME_MIN_SPEEDUP, (
        f"hybrid lifetime speedup {speedup:.1f}x below the "
        f"{LIFETIME_MIN_SPEEDUP:.0f}x floor")
    # The sweep's own acceptance: every DES brownout (hybrid kernel
    # included) agrees with the closed-form projection.
    assert hybrid.all_within_tolerance()
    assert exact.all_within_tolerance()
    # The hybrid sweep covers the same operating points, point for point.
    for exact_point, hybrid_point in zip(exact.points, hybrid.points):
        assert dataclasses.replace(
            exact_point, des_first_death_seconds=0.0,
            final_state_of_charge=0.0, delivered_before_death=0,
        ) == dataclasses.replace(
            hybrid_point, des_first_death_seconds=0.0,
            final_state_of_charge=0.0, delivered_before_death=0)
