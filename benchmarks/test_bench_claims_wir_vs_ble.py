"""E4 benchmark — the paper's quantitative Wi-R / BLE / RF claims table."""

from __future__ import annotations

from conftest import emit

from repro.runner import resolve


def test_bench_claims_wir_vs_ble(benchmark):
    result = benchmark(resolve("claims").execute)

    emit("Claims table — paper statement vs model measurement", result.rows())
    emit("Link technology comparison", result.technology_rows)
    emit("Physical security (leakage range)", result.security_rows)

    # Shape checks (DESIGN.md E4).
    assert result.all_hold
    assert result.check("Wi-R data rate vs BLE").measured_value >= 10.0
    assert result.check("BLE communication power vs Wi-R").measured_value >= 20.0
    assert result.check("RF radiation range").measured_value >= 5.0
    assert result.check("On-body channel length").measured_value <= 2.5
